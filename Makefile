# Convenience targets for the reproduction.

PY ?= python

.PHONY: install test test-fast diff-test bench bench-full bench-trajectory quick examples figures lab lab-compare check deepcheck lint sanitize-lab chaos-smoke fleet-smoke clean

LAB_DIR ?= lab-runs/latest
LAB_JOBS ?= 4

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/ -q

# Everything except the multi-second lab/chaos integration tests.
test-fast:
	$(PY) -m pytest tests/ -q -m "not slow"

# Fast-vs-reference engine equivalence: the differential replay harness
# plus the hypothesis property suite (see docs/MODEL.md).  The
# dataplane-diff step then replays one trace (and one fleet cell)
# scalar-vs-batched end to end as a standalone smoke on top of the
# marked tests in tests/test_dataplane_diff.py.
diff-test:
	$(PY) -m pytest tests/ -q -m differential
	$(PY) -c "from repro.cachesim.diff import run_dataplane_differential, run_fleet_differential; \
	from repro.net.chain import simple_forwarding_chain; \
	r = run_dataplane_differential(simple_forwarding_chain, n_packets=400); \
	assert r.equal, r.detail; \
	f = run_fleet_differential(n_servers=2, n_tenants=2, requests=800, warmup=200, n_keys=512); \
	assert f.equal, f.detail; \
	from repro.faults.plan import plan_for_class; \
	h = run_fleet_differential(n_servers=3, n_tenants=2, requests=800, warmup=200, n_keys=512, \
	plan=plan_for_class('fleet-gray', seed=7, intensity=6.0), \
	healing={'replication': 2, 'detector_enabled': True}); \
	assert h.equal, h.detail; \
	print('dataplane-diff: scalar == batched on', r.n_packets, 'packets +', f.n_packets, '+', h.n_packets, 'fleet requests')"

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q -s

# Closer to the paper's sample counts (10x samples; much slower).
bench-full:
	REPRO_BENCH_SCALE=10 $(PY) -m pytest benchmarks/ --benchmark-only -q -s

# Persisted perf trajectory: measure the declared suite, write the next
# BENCH_NNNN.json, and gate it against the previous artifact (see
# docs/BENCH.md).  BENCH_SCALE/BENCH_ARGS tune sizing, e.g.
#   make bench-trajectory BENCH_SCALE=full BENCH_ARGS="--samples 5"
BENCH_SCALE ?= smoke
BENCH_ARGS ?=
bench-trajectory:
	$(PY) -m repro bench run --scale $(BENCH_SCALE) $(BENCH_ARGS)
	$(PY) -m repro bench compare

quick:
	$(PY) examples/quickstart.py

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/reverse_engineer_hash.py
	$(PY) examples/cache_isolation.py
	$(PY) examples/hot_data_migration.py
	$(PY) examples/nfv_service_chain.py
	$(PY) examples/kvs_slice_aware.py

figures:
	$(PY) -m repro fig 5
	$(PY) -m repro fig 6 --ops 4000
	$(PY) -m repro fig 16
	$(PY) -m repro table 1
	$(PY) -m repro table 2
	$(PY) -m repro table 4

# Run the whole experiment matrix (reduced scale) into $(LAB_DIR).
lab:
	$(PY) -m repro lab run --all --jobs $(LAB_JOBS) --out $(LAB_DIR)

# Diff the latest lab run against the checked-in golden baselines.
lab-compare:
	$(PY) -m repro lab compare $(LAB_DIR) tests/golden

# Static analysis of simulation invariants (see docs/CHECKS.md).
check:
	$(PY) -m repro check

# Whole-program hot-path & seed-flow analysis, gated against the
# committed baseline, plus the ranked vectorization worklist (see
# docs/CHECKS.md, "Deep checks").  No explicit paths: the default
# invocation's relative paths are what the baseline is keyed on.
deepcheck:
	$(PY) -m repro deepcheck report --baseline .deepcheck-baseline.json
	$(PY) -m repro deepcheck worklist --top 15

# check + ruff + mypy (ruff/mypy are optional extras: pip install -e .[lint]).
lint: check
	$(PY) -m ruff check src
	$(PY) -m mypy

# Full reduced-scale matrix under the runtime CacheSanitizer; the
# compare step proves sanitizing never perturbs results.
sanitize-lab:
	RF_SANITIZE=1 $(PY) -m repro lab run --all --jobs $(LAB_JOBS) --scale reduced --out $(LAB_DIR)
	$(PY) -m repro lab compare $(LAB_DIR) tests/golden

# Chaos experiments under the sanitizer, then bit-identical replay of
# each artifact from its persisted fault plan (see docs/FAULTS.md).
CHAOS_DIR ?= lab-runs/chaos
chaos-smoke:
	RF_SANITIZE=1 $(PY) -m repro lab run chaos-tail degradation-knee --jobs $(LAB_JOBS) --scale reduced --out $(CHAOS_DIR)
	$(PY) -m repro chaos replay $(CHAOS_DIR)/chaos-tail.json
	$(PY) -m repro chaos replay $(CHAOS_DIR)/degradation-knee.json

FLEET_DIR ?= lab-runs/fleet

fleet-smoke:
	RF_SANITIZE=1 $(PY) -m repro lab run fleet-scale fleet-failover fleet-availability fleet-durability --jobs $(LAB_JOBS) --scale reduced --out $(FLEET_DIR)
	$(PY) -m repro fleet replay $(FLEET_DIR)/fleet-failover.json
	$(PY) -m repro fleet replay $(FLEET_DIR)/fleet-availability.json
	$(PY) -m repro fleet replay $(FLEET_DIR)/fleet-durability.json
	$(PY) -m repro lab compare $(FLEET_DIR) tests/golden

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
