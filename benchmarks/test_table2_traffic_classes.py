"""Benchmark: Table 2 — traffic classes used in the evaluation."""

import numpy as np

from repro.experiments.tables import format_table2
from repro.net.trace import CAMPUS_MIX, CampusTraceGenerator, TABLE2_CLASSES


def test_table2_traffic_classes(benchmark):
    def build():
        gen = CampusTraceGenerator(seed=0)
        return gen.sizes(50_000)

    sizes = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(format_table2())
    assert len(TABLE2_CLASSES) == 8
    # The generated mix matches the paper's campus-trace fractions.
    assert abs(np.mean(sizes < 100) - 0.269) < 0.01
    assert abs(np.mean((sizes >= 100) & (sizes <= 500)) - 0.118) < 0.01
