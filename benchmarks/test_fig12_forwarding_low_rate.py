"""Benchmark: Fig. 12 — 64 B @ 1000 pps, simple forwarding."""

from conftest import scale

from repro.experiments.fig12_low_rate import format_fig12, run_fig12


def test_fig12_forwarding_low_rate(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig12(packets_per_run=scale(2000), runs=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig12(result))
    imp = result.cachedirector.improvement_over(result.dpdk)
    # CacheDirector wins at every percentile (the paper's direction;
    # see EXPERIMENTS.md for the magnitude discussion).
    for q in (75, 90, 95, 99):
        assert imp[f"p{q}_abs"] >= 0.0
    benchmark.extra_info["improvement"] = imp
