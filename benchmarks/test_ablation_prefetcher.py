"""Ablation benchmark: H/W prefetching vs slice-aware layout (§8)."""

from conftest import scale

from repro.experiments.ablations import (
    format_prefetcher_ablation,
    run_prefetcher_ablation,
)


def test_ablation_prefetcher(benchmark):
    result = benchmark.pedantic(
        lambda: run_prefetcher_ablation(n_lines=8192, n_ops=scale(5000)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_prefetcher_ablation(result))
    # §8: prefetchers are built for contiguous access — they speed up
    # sequential scans of normal allocations...
    assert result.speedup("sequential", "normal") > 30.0
    # ...but can do nothing for scattered slice-aware layouts or for
    # random access patterns.
    assert abs(result.speedup("sequential", "slice")) < 5.0
    assert abs(result.speedup("random", "normal")) < 5.0
    assert abs(result.speedup("random", "slice")) < 5.0
    benchmark.extra_info["cycles"] = result.cycles
