"""Ablation benchmark: LLC replacement policy vs scan churn."""

from conftest import at_full_scale, scale

from repro.experiments.ablations import (
    format_replacement_ablation,
    run_replacement_ablation,
)


def test_ablation_replacement(benchmark):
    results = benchmark.pedantic(
        lambda: run_replacement_ablation(rounds=scale(4)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_replacement_ablation(results))
    # RRIP-family policies (what Intel ships) protect the re-referenced
    # hot set against the one-touch scan; true LRU lets the scan flush
    # it.  Hot-access cost must order brrip <= srrip < lru.
    # The strict srrip < lru separation needs enough scan rounds to
    # actually flush LRU's hot set; below full scale only the
    # non-strict ordering is required.
    if at_full_scale():
        assert results["srrip"]["hot_cycles"] < results["lru"]["hot_cycles"]
    else:
        assert results["srrip"]["hot_cycles"] <= results["lru"]["hot_cycles"]
    assert results["brrip"]["hot_cycles"] <= results["srrip"]["hot_cycles"]
    benchmark.extra_info["hot_cycles"] = {
        k: v["hot_cycles"] for k, v in results.items()
    }
