"""Extension benchmark: values larger than 64 B (§8)."""

from conftest import scale

from repro.experiments.ablations import (
    format_value_size_ablation,
    run_value_size_ablation,
)


def test_ablation_value_size(benchmark):
    results = benchmark.pedantic(
        lambda: run_value_size_ablation(
            value_sizes=(64, 128, 256),
            n_keys=1 << 17,
            warmup=scale(20_000),
            measured=scale(5_000),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_value_size_ablation(results))
    # More lines per value -> fewer transactions per second.
    assert results[256]["normal"] < results[128]["normal"] < results[64]["normal"]
    # Scattered multi-line values preserve slice-local placement and
    # must not collapse against the contiguous baseline.
    for size in (64, 128, 256):
        ratio = results[size]["slice"] / results[size]["normal"]
        assert ratio > 0.85
    benchmark.extra_info["tps"] = {str(k): v for k, v in results.items()}
