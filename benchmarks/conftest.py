"""Shared fixtures for the benchmark suite.

The Fig. 13 / Fig. 14 / Table 3 benchmarks share the same expensive
100 Gbps runs; session-scoped fixtures compute each once.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE`` — multiplies sample counts (default 1.0;
  the paper-scale runs use ~10).
"""

import os
import warnings

import pytest


def _parse_scale(warn: bool) -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        factor = float(raw)
    except ValueError:
        if warn:
            warnings.warn(
                f"ignoring non-numeric REPRO_BENCH_SCALE={raw!r}; using 1.0",
                stacklevel=3,
            )
        return 1.0
    if factor <= 0:
        if warn:
            warnings.warn(
                f"ignoring non-positive REPRO_BENCH_SCALE={raw!r}; using 1.0",
                stacklevel=3,
            )
        return 1.0
    return factor


def scale(value: int, minimum: int = 1) -> int:
    """Apply the REPRO_BENCH_SCALE factor to a sample count.

    A non-numeric or non-positive value falls back to 1.0 with a
    warning instead of crashing the whole session at collection time.
    """
    return max(minimum, int(value * _parse_scale(warn=True)))


def at_full_scale() -> bool:
    """True when sample counts are at least the defaults.

    Magnitude assertions (throughput ceilings, knee positions) only
    hold with enough simulated traffic; smoke runs below 1.0 keep the
    pipelines exercised but skip those checks.
    """
    return _parse_scale(warn=False) >= 1.0


@pytest.fixture(scope="session")
def fig13_results():
    from repro.experiments.fig13_forwarding import run_fig13

    return run_fig13(
        n_bulk_packets=scale(200_000),
        micro_packets=scale(2500),
        runs=2,
    )


@pytest.fixture(scope="session")
def fig14_results():
    from repro.experiments.fig14_service_chain import run_fig14

    return run_fig14(
        n_bulk_packets=scale(200_000),
        micro_packets=scale(2500),
        runs=2,
    )
