"""Shared fixtures for the benchmark suite.

The Fig. 13 / Fig. 14 / Table 3 benchmarks share the same expensive
100 Gbps runs; session-scoped fixtures compute each once.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE`` — multiplies sample counts (default 1.0;
  the paper-scale runs use ~10).
"""

import os

import pytest


def scale(value: int, minimum: int = 1) -> int:
    """Apply the REPRO_BENCH_SCALE factor to a sample count."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(minimum, int(value * factor))


@pytest.fixture(scope="session")
def fig13_results():
    from repro.experiments.fig13_forwarding import run_fig13

    return run_fig13(
        n_bulk_packets=scale(200_000),
        micro_packets=scale(2500),
        runs=2,
    )


@pytest.fixture(scope="session")
def fig14_results():
    from repro.experiments.fig14_service_chain import run_fig14

    return run_fig14(
        n_bulk_packets=scale(200_000),
        micro_packets=scale(2500),
        runs=2,
    )
