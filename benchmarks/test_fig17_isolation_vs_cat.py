"""Benchmark: Fig. 17 — slice isolation vs Intel CAT (noisy neighbour)."""

from conftest import scale

from repro.experiments.fig17_isolation import format_fig17, run_fig17


def test_fig17_isolation_vs_cat(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig17(n_ops=scale(3000), neighbour_bytes=32 << 20),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig17(result))
    # Paper: slice isolation beats 2-way CAT by ~11.5 % (read) and
    # ~11.8 % (write) despite owning ~5 % of the LLC vs CAT's ~18 %.
    assert result.slice_vs_cat_pct("read") > 5.0
    assert result.slice_vs_cat_pct("write") > 5.0
    # Isolation (either kind) beats no isolation under the neighbour.
    assert result.read_seconds["slice-isolated"] < result.read_seconds["nocat"]
    benchmark.extra_info["read_pct_vs_cat"] = result.slice_vs_cat_pct("read")
    benchmark.extra_info["write_pct_vs_cat"] = result.slice_vs_cat_pct("write")
