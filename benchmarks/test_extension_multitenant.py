"""Extension benchmark: multi-tenant slice partitioning (§7)."""

from conftest import scale

from repro.experiments.multitenant import (
    format_multitenant,
    run_multitenant_experiment,
)


def test_extension_multitenant(benchmark):
    results = benchmark.pedantic(
        lambda: run_multitenant_experiment(n_ops=scale(2500)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_multitenant(results))
    # The polite tenant (tenant 0, cache-sized working set) does best
    # under slice partitioning: spatial isolation from the noisy
    # tenants *plus* minimum NUCA distance.
    polite = {policy: r.tenant_cycles[0] for policy, r in results.items()}
    assert polite["slice"] < polite["shared"]
    assert polite["slice"] < polite["cat"]
    # No policy should materially hurt aggregate performance.
    assert results["slice"].mean <= results["shared"].mean * 1.05
    benchmark.extra_info["polite_tenant_cycles"] = polite
