"""Extension benchmark: §6 — CacheDirector ported to Skylake."""

from conftest import scale

from repro.experiments.skylake_port import format_skylake_port, run_skylake_port


def test_extension_skylake_port(benchmark):
    results = benchmark.pedantic(
        lambda: run_skylake_port(micro_packets=scale(2000)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_skylake_port(results))
    # §6: "CacheDirector is still expected to be beneficial" on the
    # mesh/victim-cache machine — positive saving on both.
    assert results["haswell"].saving_cycles > 0
    assert results["skylake"].saving_cycles > 0
    # The steered header line arrives via DDIO into the LLC on both
    # machines (the §6 point that non-inclusiveness does not affect
    # DDIO), so the saving scales with each machine's NUCA spread.
    benchmark.extra_info["saving_cycles"] = {
        k: r.saving_cycles for k, r in results.items()
    }
