"""Benchmark: Table 3 — throughput + improvement at 100 Gbps offered."""

from conftest import at_full_scale

from repro.experiments.tables import format_table3, table3_rows


def test_table3_throughput(benchmark, fig13_results, fig14_results):
    rows = benchmark.pedantic(
        lambda: table3_rows(fig13_results, fig14_results), rounds=1, iterations=1
    )
    print()
    print(format_table3(rows))
    forwarding, chain = rows
    # Paper: 76.58 and 75.94 Gbps — both pinned just above 75 Gbps by
    # the NIC/PCIe path, forwarding slightly ahead of the chain; and
    # CacheDirector adds a small positive throughput improvement.
    # The absolute ceiling and the chain-vs-forwarding ordering both
    # need the queues saturated, i.e. full-scale bulk traffic.
    if at_full_scale():
        assert 60.0 < chain.throughput_gbps <= forwarding.throughput_gbps < 90.0
    assert forwarding.improvement_mbps > 0
    assert chain.improvement_mbps > 0
    benchmark.extra_info["rows"] = [
        (r.scenario, r.throughput_gbps, r.improvement_mbps) for r in rows
    ]
