"""Benchmark: Fig. 8 — emulated KVS TPS for slice-aware vs normal values."""

from conftest import scale

from repro.experiments.fig08_kvs import format_fig08, run_fig08


def test_fig08_kvs_tps(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig08(
            warmup_requests=scale(100_000),
            measured_requests=scale(12_000),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig08(result))
    # Shape: for the uniform workload placement matters little on pure
    # GETs (paper: 6.81 vs 6.70 MTPS, +1.7%), a bit more as SETs mix
    # in (paper 50% GET: +3.5%) — the write-drain NUCA saving.
    assert abs(result.delta_pct("uniform", "100% GET")) < 4.0
    for mix in ("95% GET", "50% GET"):
        assert -4.0 < result.delta_pct("uniform", mix) < 8.0
    # Uniform is far slower than skewed (DRAM-bound).
    assert (
        result.tps[("skewed", "normal", "100% GET")]
        > 1.2 * result.tps[("uniform", "normal", "100% GET")]
    )
    # Skewed SET-carrying mixes gain from slice-aware placement; the
    # pure-GET mix trades capacity for latency and must at minimum not
    # lose beyond the NUCA bound (EXPERIMENTS.md discusses the gap to
    # the paper's +12.2%).
    assert result.delta_pct("skewed", "50% GET") > 0.0
    assert result.delta_pct("skewed", "100% GET") > -8.0
    benchmark.extra_info["tps"] = {
        "/".join(k): v for k, v in result.tps.items()
    }
