"""Benchmark: Figs. 1 & 14 — Router-NAPT-LB @ 100 Gbps, FlowDirector."""

from conftest import at_full_scale

from repro.experiments.fig14_service_chain import format_fig14


def test_fig14_service_chain_100g(benchmark, fig14_results):
    results = benchmark.pedantic(lambda: fig14_results, rounds=1, iterations=1)
    print()
    print(format_fig14(results))
    base = results["dpdk"]
    cd = results["cachedirector"]
    imp = cd.summary.improvement_over(base.summary)
    for q in (75, 90, 95, 99):
        assert imp[f"p{q}_abs"] > 0.0
    # The stateful chain is more memory-intensive than forwarding, so
    # its absolute mean improvement is at least comparable.
    assert imp["mean_abs"] > 0.0
    # ~76 Gbps ceiling needs full-scale bulk traffic to saturate queues.
    if at_full_scale():
        assert 60.0 < base.achieved_gbps < 90.0
    benchmark.extra_info["achieved_gbps"] = base.achieved_gbps
    benchmark.extra_info["improvement_us"] = {q: imp[f"p{q}_abs"] for q in (75, 90, 95, 99)}
