"""Extension benchmark: queueing amplification of CacheDirector's gain."""

import numpy as np
from conftest import at_full_scale, scale

from repro.experiments.load_sensitivity import (
    format_load_sensitivity,
    run_load_sensitivity,
)


def test_extension_load_sensitivity(benchmark):
    points = benchmark.pedantic(
        lambda: run_load_sensitivity(
            n_bulk_packets=scale(120_000), micro_packets=scale(2000)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_load_sensitivity(points))
    # CacheDirector never loses at any load.
    for p in points:
        assert p.improvement_us >= -0.5
    # §5.3's queueing amplification peaks in the knee region: the gain
    # there exceeds the uncongested region's.  Past saturation the
    # ring cap pins the tail and the gain collapses to
    # ring_depth x Δservice — also visible in the sweep.
    gains = [p.improvement_us for p in points]
    knee_gain = max(gains)
    assert knee_gain > gains[0]            # amplified vs light load
    # Locating the knee strictly inside the sweep needs saturated
    # queues at the top loads, i.e. full-scale bulk traffic.
    if at_full_scale():
        assert points[gains.index(knee_gain)].offered_gbps < points[-1].offered_gbps
    benchmark.extra_info["gains_us"] = {
        p.offered_gbps: p.improvement_us for p in points
    }
