"""Benchmark: Table 1 — cache specification of the Haswell model."""

from repro.experiments.tables import format_table1, table1_rows


def test_table1_cache_spec(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    print()
    print(format_table1())
    assert rows[0] == ("LLC-Slice", "2.5MB", 20, 2048, "16-6")
    assert rows[1] == ("L2", "256kB", 8, 512, "14-6")
    assert rows[2] == ("L1", "32kB", 8, 64, "11-6")
