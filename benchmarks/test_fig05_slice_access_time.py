"""Benchmark: Fig. 5 — per-slice access time from core 0 (Haswell)."""

from conftest import scale

from repro.experiments.fig05_access_time import format_profile, run_fig05


def test_fig05_slice_access_time(benchmark):
    profile = benchmark.pedantic(
        lambda: run_fig05(runs=scale(5)), rounds=1, iterations=1
    )
    print()
    print(format_profile(profile, "Fig. 5 — access time per slice, core 0 (Haswell)"))
    # Paper shapes: own slice cheapest, bimodal reads, ~20-cycle
    # spread, flat writes.
    assert profile.fastest_slice() == 0
    evens = [profile.read_cycles[s] for s in (0, 2, 4, 6)]
    odds = [profile.read_cycles[s] for s in (1, 3, 5, 7)]
    assert max(evens) < min(odds)
    assert 15 <= profile.read_spread() <= 30
    assert max(profile.write_cycles) - min(profile.write_cycles) < 1
    benchmark.extra_info["read_cycles"] = profile.read_cycles
    benchmark.extra_info["read_spread"] = profile.read_spread()
