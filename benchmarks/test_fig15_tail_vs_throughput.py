"""Benchmark: Fig. 15 — 99th-percentile latency vs throughput knee."""

from conftest import scale

from repro.experiments.fig15_knee import format_fig15, run_fig15

BENCH_LOADS = [5.0, 15.0, 25.0, 37.0, 50.0, 65.0, 80.0, 100.0]


def test_fig15_tail_vs_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig15(
            loads_gbps=BENCH_LOADS,
            n_bulk_packets=scale(120_000),
            micro_packets=scale(2000),
            runs=1,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig15(result))
    base = result.dpdk
    cd = result.cachedirector
    # Tail latency grows with load on both curves...
    assert base.tail_latency_us[-1] > base.tail_latency_us[0]
    # ...with a knee: above-knee growth rate dwarfs below-knee slope.
    low_slope = base.fit.linear_coeffs[1]
    assert base.fit.predict(base.fit.knee * 1.6) - base.fit.predict(
        base.fit.knee
    ) > 3 * low_slope * base.fit.knee * 0.6
    # The fits explain the data (paper reports R^2 ~0.99).
    assert base.fit.r2_quadratic > 0.8
    assert cd.fit.r2_quadratic > 0.8
    # CacheDirector is at or below the baseline at the highest loads
    # (the knee shifts right: same load, lower tail).
    assert cd.tail_latency_us[-1] <= base.tail_latency_us[-1]
    benchmark.extra_info["dpdk_points"] = list(
        zip(base.throughputs_gbps, base.tail_latency_us)
    )
    benchmark.extra_info["cd_points"] = list(
        zip(cd.throughputs_gbps, cd.tail_latency_us)
    )
