"""Ablation benchmark: RX header-placement strategies (§4.2)."""

from conftest import scale

from repro.experiments.ablations import (
    format_rx_strategies,
    run_rx_strategy_comparison,
)


def test_ablation_rx_strategies(benchmark):
    results = benchmark.pedantic(
        lambda: run_rx_strategy_comparison(n_packets=scale(8000)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rx_strategies(results))
    # Stock DPDK leaves header placement to chance.
    assert results["fixed"].match_fraction < 0.30
    # Both CacheDirector designs place (essentially) every header.
    assert results["dynamic-headroom"].match_fraction > 0.99
    assert results["sorted-pools"].match_fraction > 0.95
    # The trade-off the paper describes: dynamic headroom provisions
    # worst-case data room; sorted pools keep the stock footprint.
    assert (
        results["dynamic-headroom"].data_room_bytes
        > results["sorted-pools"].data_room_bytes
    )
    benchmark.extra_info["match"] = {
        k: r.match_fraction for k, r in results.items()
    }
