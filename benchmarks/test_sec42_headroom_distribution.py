"""Benchmark: §4.2 — dynamic headroom distribution through CacheDirector."""

from conftest import scale

from repro.experiments.headroom import format_headroom, run_headroom_experiment


def test_sec42_headroom_distribution(benchmark):
    result = benchmark.pedantic(
        lambda: run_headroom_experiment(n_packets=scale(8000)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_headroom(result))
    # Paper: median 256 B, 95 % < 512 B, max 832 B.  Our XOR-hash
    # displacement is bounded by 7 lines past the 128 B base: the
    # distribution must be tight and bounded.
    assert 128 <= result.median <= 448
    assert result.p95 <= 576
    assert result.max <= 576
    benchmark.extra_info["median"] = result.median
    benchmark.extra_info["p95"] = result.p95
    benchmark.extra_info["max"] = result.max
