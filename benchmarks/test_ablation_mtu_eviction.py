"""Extension benchmark: MTU frames vs DDIO eviction (§8)."""

from repro.experiments.ablations import (
    format_mtu_eviction,
    run_mtu_eviction_experiment,
)


def test_ablation_mtu_eviction(benchmark):
    def run():
        return (
            run_mtu_eviction_experiment(queue_depth=64, packet_size=1500),
            run_mtu_eviction_experiment(queue_depth=768, packet_size=1500),
            run_mtu_eviction_experiment(queue_depth=768, packet_size=64),
        )

    shallow, deep, small = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("[queue depth 64, 1500 B]")
    print(format_mtu_eviction(shallow))
    print("[queue depth 768, 1500 B]")
    print(format_mtu_eviction(deep))
    print("[queue depth 768, 64 B]")
    print(format_mtu_eviction(small))
    # §8: full-MTU DDIO churn under deep queues evicts enqueued
    # headers before the core polls them; small packets do not.
    assert deep.eviction_fraction >= shallow.eviction_fraction
    assert deep.eviction_fraction > small.eviction_fraction
    assert deep.mean_read_cycles > shallow.mean_read_cycles
    benchmark.extra_info["deep_eviction"] = deep.eviction_fraction
