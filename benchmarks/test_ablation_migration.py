"""Extension benchmark: hot-set drift and monitored migration (§8)."""

from conftest import at_full_scale, scale

from repro.experiments.ablations import (
    format_migration_experiment,
    run_migration_experiment,
)


def test_ablation_migration(benchmark):
    def run():
        fast_drift = run_migration_experiment(ops_per_phase=scale(40_000))
        slow_drift = run_migration_experiment(ops_per_phase=scale(160_000))
        return fast_drift, slow_drift

    fast_drift, slow_drift = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("[fast drift: 40k ops/phase]")
    print(format_migration_experiment(fast_drift))
    print("[slow drift: 160k ops/phase]")
    print(format_migration_experiment(slow_drift))
    # Slice placement helps in both regimes.
    assert fast_drift.static_slice < fast_drift.normal
    # Migration must amortise its copies: it gains on slow drift
    # relative to fast drift (the §8 trade-off), and on slow drift it
    # is at least competitive with static placement.  Both need phases
    # long enough for the monitor to promote, so full scale only.
    assert slow_drift.migrating < slow_drift.normal
    if at_full_scale():
        assert slow_drift.migration_gain_pct() > fast_drift.migration_gain_pct() - 0.5
        assert slow_drift.migration_gain_pct() > -2.0
    benchmark.extra_info["fast_gain_pct"] = fast_drift.migration_gain_pct()
    benchmark.extra_info["slow_gain_pct"] = slow_drift.migration_gain_pct()
