"""Benchmark: Table 4 — preferable slices per core on the Gold 6134."""

from repro.cachesim.machines import (
    SKYLAKE_GOLD_6134,
    SKYLAKE_PRIMARY_SLICES,
    SKYLAKE_SECONDARY_SLICES,
)
from repro.core.profiles import derive_preference_table
from repro.experiments.tables import format_table4


def test_table4_preferable_slices(benchmark):
    table = benchmark.pedantic(
        lambda: derive_preference_table(SKYLAKE_GOLD_6134.interconnect_factory()),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table4())
    for core, primary in SKYLAKE_PRIMARY_SLICES.items():
        assert table[core][0] == primary
    for core, secondaries in SKYLAKE_SECONDARY_SLICES.items():
        assert set(table[core][1]) == set(secondaries)
