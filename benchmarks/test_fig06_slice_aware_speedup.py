"""Benchmark: Fig. 6 — per-slice speedup of slice-aware allocation."""

from conftest import scale

from repro.experiments.fig06_speedup import format_fig06, run_fig06


def test_fig06_slice_aware_speedup(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig06(n_ops=scale(2500)), rounds=1, iterations=1
    )
    print()
    print(format_fig06(result))
    reads = result.read_speedup_pct
    writes = result.write_speedup_pct
    # Paper Fig. 6: close slices gain (up to ~+15-20 %), far slices
    # lose; the pattern is bimodal on the ring.
    assert reads[0] > 10.0
    assert min(reads) < -10.0
    assert min(reads[s] for s in (0, 2, 4, 6)) > max(reads[s] for s in (1, 3, 5, 7))
    assert writes[0] > 5.0
    assert writes[5] < -5.0
    benchmark.extra_info["read_speedup_pct"] = reads
    benchmark.extra_info["write_speedup_pct"] = writes
