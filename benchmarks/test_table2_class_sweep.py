"""Benchmark: low-rate latency across the Table 2 traffic classes."""

from conftest import scale

from repro.experiments.traffic_classes import (
    format_traffic_classes,
    run_traffic_class_sweep,
)


def test_table2_class_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: run_traffic_class_sweep(packets_per_class=scale(1200)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_traffic_classes(points))
    # §5.1: "all other traffic sets show the same behavior, but with
    # different latency values".
    for point in points:
        assert point.improvement_p99_us() >= 0.0  # CD never loses
    p99s = [p.dpdk[99] for p in points]
    assert p99s == sorted(p99s)  # larger frames, higher latency
    benchmark.extra_info["p99_us"] = {p.packet_size: p.dpdk[99] for p in points}
