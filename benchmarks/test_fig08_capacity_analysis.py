"""Benchmark: the Fig. 8 capacity analysis, computed from first principles.

Uses Mattson reuse distances on the actual Zipf(0.99) request stream
to compute the best possible LRU hit rate for (a) one slice's worth of
value lines and (b) the whole LLC's worth — the arithmetic behind
EXPERIMENTS.md's discussion of the pure-GET headline.

The horizon matters: early in a run few distinct keys have been seen
and both capacities hit alike; the capacity gap opens as the stream
approaches steady state (the paper's sustained-load measurement).
"""

import numpy as np
from conftest import at_full_scale, scale

from repro.kvs.workload import ZipfKeys
from repro.stats.reuse import hit_rate_at, reuse_distances

N_KEYS = 1 << 24       # the paper's key space
SLICE_LINES = 40_960   # 2.5 MB slice / 64 B
LLC_LINES = 327_680    # 20 MB LLC / 64 B
DRAM_CYCLES = 190
NUCA_SAVING = 11       # avg LLC-latency saving of slice-0 placement


def test_fig08_capacity_analysis(benchmark):
    def run():
        horizons = (scale(150_000), scale(1_200_000))
        keys = ZipfKeys(N_KEYS, 0.99, seed=0).keys(horizons[-1])
        out = {}
        for horizon in horizons:
            distances = reuse_distances(keys[:horizon])
            out[horizon] = {
                "slice": hit_rate_at(distances, SLICE_LINES),
                "llc": hit_rate_at(distances, LLC_LINES),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Fig. 8 capacity analysis (Zipf 0.99 over 2^24 keys, LRU bound)")
    print("horizon   | slice hit | LLC hit |  gap  | DRAM cost | NUCA gain")
    gaps = []
    for horizon, rates in results.items():
        gap = rates["llc"] - rates["slice"]
        gaps.append(gap)
        print(
            f"{horizon:>9} | {rates['slice']:>9.3f} | {rates['llc']:>7.3f} "
            f"| {gap:>5.3f} | {gap * DRAM_CYCLES:>7.1f} c | "
            f"{rates['slice'] * NUCA_SAVING:>7.1f} c"
        )
    print(
        "=> the capacity gap opens with the horizon; at the paper's "
        "sustained loads (10^8+ requests) the extra DRAM cost of "
        "one-slice placement outgrows the NUCA saving, so the +12.2% "
        "pure-GET headline needs near-equal hit rates (EXPERIMENTS.md)."
    )
    # Quantitative core: the gap grows materially with the horizon —
    # the 0.04 magnitude needs the full-scale reuse horizons.
    assert gaps[-1] > gaps[0]
    if at_full_scale():
        assert gaps[-1] > 0.04
    benchmark.extra_info["gaps"] = gaps
