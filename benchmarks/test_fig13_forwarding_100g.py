"""Benchmark: Fig. 13 — forwarding, mixed sizes @ 100 Gbps, RSS."""

from conftest import at_full_scale

from repro.experiments.fig13_forwarding import format_fig13


def test_fig13_forwarding_100g(benchmark, fig13_results):
    results = benchmark.pedantic(lambda: fig13_results, rounds=1, iterations=1)
    print()
    print(format_fig13(results))
    base = results["dpdk"]
    cd = results["cachedirector"]
    # CacheDirector reduces every reported percentile and the mean.
    imp = cd.summary.improvement_over(base.summary)
    for q in (75, 90, 95, 99):
        assert imp[f"p{q}_abs"] > 0.0
    assert imp["mean_abs"] > 0.0
    # Throughput ceiling near the paper's ~76 Gbps, CacheDirector a
    # little higher (Table 3's 'improvement' column).  The ceiling only
    # emerges with full-scale bulk traffic (queues must saturate).
    if at_full_scale():
        assert 60.0 < base.achieved_gbps < 90.0
    assert cd.achieved_gbps > base.achieved_gbps
    benchmark.extra_info["achieved_gbps"] = base.achieved_gbps
    benchmark.extra_info["improvement_us"] = {q: imp[f"p{q}_abs"] for q in (75, 90, 95, 99)}
