"""Benchmark: Fig. 16 — per-slice access time from core 0 (Skylake)."""

from conftest import scale

from repro.experiments.fig05_access_time import format_profile, run_fig16


def test_fig16_skylake_access_time(benchmark):
    profile = benchmark.pedantic(
        lambda: run_fig16(runs=scale(3)), rounds=1, iterations=1
    )
    print()
    print(format_profile(profile, "Fig. 16 — access time per slice, core 0 (Skylake)"))
    assert profile.n_slices == 18
    # Table 4: core 0's primary slice is S0, secondaries S2 and S6.
    ordered = sorted(range(18), key=profile.read_cycles.__getitem__)
    assert ordered[0] == 0
    assert set(ordered[1:3]) == {2, 6}
    benchmark.extra_info["read_cycles"] = profile.read_cycles
