"""Ablation benchmark: DDIO way count (§5's '10 % limit' footnote)."""

from conftest import scale

from repro.experiments.ablations import format_ddio_ablation, run_ddio_ways_ablation


def test_ablation_ddio_ways(benchmark):
    results = benchmark.pedantic(
        lambda: run_ddio_ways_ablation(
            ways_options=(0, 2, 4, 8), micro_packets=scale(1200)
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_ddio_ablation(results))
    # Without DDIO every packet read hits DRAM: clearly slower.
    assert results[0] > results[2] * 1.03
    # More I/O ways never hurt packet processing materially.
    assert results[8] <= results[2] * 1.05
    benchmark.extra_info["cycles"] = results
