"""Benchmark: Fig. 4 — reverse-engineering the hash via polling."""

from repro.experiments.fig04_hash_recovery import format_fig04, run_fig04


def test_fig04_hash_recovery(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig04(verify_addresses=256), rounds=1, iterations=1
    )
    print()
    print(format_fig04(result))
    assert result.ground_truth_match
    assert result.match_fraction == 1.0
    benchmark.extra_info["match_fraction"] = result.match_fraction
    benchmark.extra_info["addresses_polled"] = result.addresses_polled
