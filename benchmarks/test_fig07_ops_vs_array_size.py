"""Benchmark: Fig. 7 — system OPS vs per-core array size (8 cores)."""

from conftest import scale

from repro.experiments.fig07_ops_sweep import format_fig07, run_fig07

#: Reduced sweep keeping one point per regime boundary; set
#: REPRO_BENCH_SCALE and/or edit to the full PAPER_SIZES for the 13-point run.
BENCH_SIZES = [
    64 * 1024,      # L2
    256 * 1024,     # L2 boundary
    1 << 20,        # slice regime
    2 << 20,        # slice boundary
    4 << 20,        # LLC regime (slice-aware overflows its slice)
    16 << 20,       # LLC boundary
    64 << 20,       # DRAM
]


def test_fig07_ops_vs_array_size(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig07(sizes=BENCH_SIZES, n_ops=scale(700)),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_fig07(result))
    reads_normal = result.normal_mops["read"]
    reads_slice = result.slice_mops["read"]
    # L2 regime: tie (within 5 %).
    assert abs(reads_slice[0] - reads_normal[0]) / reads_normal[0] < 0.05
    # Slice regime (1-2 MB): slice-aware wins clearly.
    assert reads_slice[2] > reads_normal[2] * 1.10
    assert reads_slice[3] > reads_normal[3] * 1.10
    # DRAM regime: convergence (within 10 %).
    assert abs(reads_slice[-1] - reads_normal[-1]) / reads_normal[-1] < 0.10
    # Monotone collapse from cache speed to DRAM speed.
    assert reads_normal[0] > reads_normal[-1]
    benchmark.extra_info["read_normal_mops"] = reads_normal
    benchmark.extra_info["read_slice_mops"] = reads_slice
