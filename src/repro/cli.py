"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro profile --machine haswell
    python -m repro recover-hash
    python -m repro fig 6 --ops 4000
    python -m repro fig 14 --offered 100
    python -m repro table 4
    python -m repro headroom --packets 10000
    python -m repro ablation prefetcher

Every subcommand prints the same rows/series the paper's figure or
table reports (see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cachesim.machines import HASWELL_E5_2667V3, SKYLAKE_GOLD_6134

MACHINES = {
    "haswell": HASWELL_E5_2667V3,
    "skylake": SKYLAKE_GOLD_6134,
}


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.fig05_access_time import format_profile, run_fig05

    spec = MACHINES[args.machine]
    profile = run_fig05(spec=spec, core=args.core, runs=args.runs)
    print(
        format_profile(
            profile, f"Per-slice access time, core {args.core} ({spec.name})"
        )
    )
    return 0


def _cmd_recover_hash(args: argparse.Namespace) -> int:
    from repro.experiments.fig04_hash_recovery import format_fig04, run_fig04

    result = run_fig04(verify_addresses=args.verify)
    print(format_fig04(result))
    return 0 if result.ground_truth_match else 1


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    if args.number == 1:
        print(tables.format_table1())
    elif args.number == 2:
        print(tables.format_table2())
    elif args.number == 4:
        print(tables.format_table4())
    else:
        print(
            "Table 3 is computed from the Fig. 13/14 runs: "
            "use `python -m repro fig 13` and `fig 14`, or the "
            "benchmark suite.",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    number = args.number
    if number == 4:
        return _cmd_recover_hash(args)
    if number in (5, 16):
        from repro.experiments.fig05_access_time import (
            format_profile,
            run_fig05,
            run_fig16,
        )

        profile = run_fig16(runs=args.runs) if number == 16 else run_fig05(runs=args.runs)
        print(format_profile(profile, f"Fig. {number}"))
        return 0
    if number == 6:
        from repro.experiments.fig06_speedup import format_fig06, run_fig06

        print(format_fig06(run_fig06(n_ops=args.ops)))
        return 0
    if number == 7:
        from repro.experiments.fig07_ops_sweep import format_fig07, run_fig07

        print(format_fig07(run_fig07(n_ops=max(200, args.ops // 4))))
        return 0
    if number == 8:
        from repro.experiments.fig08_kvs import format_fig08, run_fig08

        print(
            format_fig08(
                run_fig08(
                    warmup_requests=args.warmup,
                    measured_requests=args.ops,
                )
            )
        )
        return 0
    if number == 12:
        from repro.experiments.fig12_low_rate import format_fig12, run_fig12

        print(format_fig12(run_fig12(packets_per_run=args.ops, runs=args.runs)))
        return 0
    if number in (1, 13, 14):
        if number == 13:
            from repro.experiments.fig13_forwarding import format_fig13 as fmt
            from repro.experiments.fig13_forwarding import run_fig13 as run
        else:
            from repro.experiments.fig14_service_chain import format_fig14 as fmt
            from repro.experiments.fig14_service_chain import run_fig14 as run
        print(
            fmt(
                run(
                    offered_gbps=args.offered,
                    n_bulk_packets=args.bulk,
                    micro_packets=args.micro,
                    runs=args.runs,
                )
            )
        )
        return 0
    if number == 15:
        from repro.experiments.fig15_knee import format_fig15, run_fig15

        print(
            format_fig15(
                run_fig15(n_bulk_packets=args.bulk, micro_packets=args.micro)
            )
        )
        return 0
    if number == 17:
        from repro.experiments.fig17_isolation import format_fig17, run_fig17

        print(format_fig17(run_fig17(n_ops=args.ops)))
        return 0
    print(f"no driver for figure {number}", file=sys.stderr)
    return 2


def _cmd_headroom(args: argparse.Namespace) -> int:
    from repro.experiments.headroom import format_headroom, run_headroom_experiment

    print(format_headroom(run_headroom_experiment(n_packets=args.packets)))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    name = args.which
    if name == "ddio":
        print(ablations.format_ddio_ablation(ablations.run_ddio_ways_ablation()))
    elif name == "prefetcher":
        print(
            ablations.format_prefetcher_ablation(ablations.run_prefetcher_ablation())
        )
    elif name == "replacement":
        print(
            ablations.format_replacement_ablation(
                ablations.run_replacement_ablation()
            )
        )
    elif name == "migration":
        print(
            ablations.format_migration_experiment(
                ablations.run_migration_experiment()
            )
        )
    elif name == "value-size":
        print(
            ablations.format_value_size_ablation(ablations.run_value_size_ablation())
        )
    elif name == "mtu":
        print(ablations.format_mtu_eviction(ablations.run_mtu_eviction_experiment()))
    elif name == "rx-strategies":
        print(
            ablations.format_rx_strategies(ablations.run_rx_strategy_comparison())
        )
    elif name == "multitenant":
        from repro.experiments.multitenant import (
            format_multitenant,
            run_multitenant_experiment,
        )

        print(format_multitenant(run_multitenant_experiment()))
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Make the Most out of Last Level Cache in "
            "Intel Processors' (EuroSys '19) — run any paper experiment."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="per-slice access latency (Figs. 5/16)")
    p.add_argument("--machine", choices=sorted(MACHINES), default="haswell")
    p.add_argument("--core", type=int, default=0)
    p.add_argument("--runs", type=int, default=5)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("recover-hash", help="reverse-engineer the hash (Fig. 4)")
    p.add_argument("--verify", type=int, default=256, help="verification sweep size")
    p.set_defaults(func=_cmd_recover_hash)

    p = sub.add_parser("table", help="print a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4))
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("fig", help="run a paper figure's experiment")
    p.add_argument("number", type=int, choices=(1, 4, 5, 6, 7, 8, 12, 13, 14, 15, 16, 17))
    p.add_argument("--ops", type=int, default=3000, help="ops/packets per run")
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--warmup", type=int, default=60_000, help="KVS warm-up requests")
    p.add_argument("--offered", type=float, default=100.0, help="offered load (Gbps)")
    p.add_argument("--bulk", type=int, default=150_000, help="bulk packets per run")
    p.add_argument("--micro", type=int, default=2500, help="microsim packets")
    p.add_argument("--verify", type=int, default=256)
    p.set_defaults(func=_cmd_fig)

    p = sub.add_parser("headroom", help="dynamic headroom distribution (§4.2)")
    p.add_argument("--packets", type=int, default=8000)
    p.set_defaults(func=_cmd_headroom)

    p = sub.add_parser("ablation", help="run a design ablation")
    p.add_argument(
        "which",
        choices=(
            "ddio",
            "prefetcher",
            "replacement",
            "migration",
            "value-size",
            "mtu",
            "rx-strategies",
            "multitenant",
        ),
    )
    p.set_defaults(func=_cmd_ablation)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — fine.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
