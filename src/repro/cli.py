"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro profile --machine haswell
    python -m repro recover-hash
    python -m repro fig 6 --ops 4000 --seed 7
    python -m repro fig 14 --offered 100 --json
    python -m repro table 3
    python -m repro headroom --packets 10000
    python -m repro ablation prefetcher --json
    python -m repro lab run --all --jobs 4 --out lab-runs/nightly
    python -m repro lab compare lab-runs/nightly tests/golden

Every subcommand prints the same rows/series the paper's figure or
table reports (see EXPERIMENTS.md for the mapping); ``--json`` emits
the same payload the lab's run artifacts store.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro.cachesim.machines import HASWELL_E5_2667V3, SKYLAKE_GOLD_6134

MACHINES = {
    "haswell": HASWELL_E5_2667V3,
    "skylake": SKYLAKE_GOLD_6134,
}


def _emit_json(payload: Any) -> int:
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.fig05_access_time import (
        format_profile,
        profile_to_dict,
        run_fig05,
    )

    spec = MACHINES[args.machine]
    profile = run_fig05(spec=spec, core=args.core, runs=args.runs, seed=args.seed)
    if args.json:
        return _emit_json(profile_to_dict(profile))
    print(
        format_profile(
            profile, f"Per-slice access time, core {args.core} ({spec.name})"
        )
    )
    return 0


def _cmd_recover_hash(args: argparse.Namespace) -> int:
    from repro.experiments.fig04_hash_recovery import (
        fig04_to_dict,
        format_fig04,
        run_fig04,
    )

    result = run_fig04(verify_addresses=args.verify, seed=args.seed)
    status = 0 if result.ground_truth_match else 1
    if args.json:
        _emit_json(fig04_to_dict(result))
        return status
    print(format_fig04(result))
    return status


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    if args.number == 1:
        if args.json:
            return _emit_json(tables.table1_to_dict(tables.run_table1()))
        print(tables.format_table1())
    elif args.number == 2:
        if args.json:
            return _emit_json(tables.table2_to_dict(tables.run_table2()))
        print(tables.format_table2())
    elif args.number == 3:
        rows = tables.run_table3(
            n_bulk_packets=args.bulk,
            micro_packets=args.micro,
            runs=args.runs,
            seed=args.seed,
            dataplane=args.dataplane,
        )
        if args.json:
            payload = tables.table3_to_dict(rows)
            # Provenance: record non-default charging mode only, so
            # scalar artifacts stay byte-identical to prior goldens.
            if args.dataplane != "scalar":
                payload["dataplane"] = args.dataplane
            return _emit_json(payload)
        print(tables.format_table3(rows))
    else:
        if args.json:
            return _emit_json(tables.table4_to_dict(tables.run_table4()))
        print(tables.format_table4())
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    number = args.number
    seed = args.seed
    if number == 4:
        return _cmd_recover_hash(args)
    if number in (5, 16):
        from repro.experiments.fig05_access_time import (
            format_profile,
            profile_to_dict,
            run_fig05,
            run_fig16,
        )

        profile = (
            run_fig16(runs=args.runs, seed=seed)
            if number == 16
            else run_fig05(runs=args.runs, seed=seed)
        )
        if args.json:
            return _emit_json(profile_to_dict(profile))
        print(format_profile(profile, f"Fig. {number}"))
        return 0
    if number == 6:
        from repro.experiments.fig06_speedup import (
            fig06_to_dict,
            format_fig06,
            run_fig06,
        )

        result = run_fig06(n_ops=args.ops, seed=seed)
        if args.json:
            return _emit_json(fig06_to_dict(result))
        print(format_fig06(result))
        return 0
    if number == 7:
        from repro.experiments.fig07_ops_sweep import (
            fig07_to_dict,
            format_fig07,
            run_fig07,
        )

        result = run_fig07(n_ops=max(200, args.ops // 4), seed=seed)
        if args.json:
            return _emit_json(fig07_to_dict(result))
        print(format_fig07(result))
        return 0
    if number == 8:
        from repro.experiments.fig08_kvs import fig08_to_dict, format_fig08, run_fig08

        result = run_fig08(
            warmup_requests=args.warmup,
            measured_requests=args.ops,
            seed=seed,
        )
        if args.json:
            return _emit_json(fig08_to_dict(result))
        print(format_fig08(result))
        return 0
    if number == 12:
        from repro.experiments.fig12_low_rate import (
            fig12_to_dict,
            format_fig12,
            run_fig12,
        )

        result = run_fig12(packets_per_run=args.ops, runs=args.runs, seed=seed)
        if args.json:
            return _emit_json(fig12_to_dict(result))
        print(format_fig12(result))
        return 0
    if number in (1, 13, 14):
        from repro.experiments.nfv_common import comparison_to_dict

        if number == 13:
            from repro.experiments.fig13_forwarding import format_fig13 as fmt
            from repro.experiments.fig13_forwarding import run_fig13 as run
        else:
            from repro.experiments.fig14_service_chain import format_fig14 as fmt
            from repro.experiments.fig14_service_chain import run_fig14 as run
        results = run(
            offered_gbps=args.offered,
            n_bulk_packets=args.bulk,
            micro_packets=args.micro,
            runs=args.runs,
            seed=seed,
            dataplane=args.dataplane,
        )
        if args.json:
            payload = comparison_to_dict(results)
            # Provenance: record non-default charging mode only, so
            # scalar artifacts stay byte-identical to prior goldens.
            if args.dataplane != "scalar":
                payload["dataplane"] = args.dataplane
            return _emit_json(payload)
        print(fmt(results))
        return 0
    if number == 15:
        from repro.experiments.fig15_knee import (
            fig15_to_dict,
            format_fig15,
            run_fig15,
        )

        result = run_fig15(
            n_bulk_packets=args.bulk, micro_packets=args.micro, seed=seed
        )
        if args.json:
            return _emit_json(fig15_to_dict(result))
        print(format_fig15(result))
        return 0
    if number == 17:
        from repro.experiments.fig17_isolation import (
            fig17_to_dict,
            format_fig17,
            run_fig17,
        )

        result = run_fig17(n_ops=args.ops, seed=seed)
        if args.json:
            return _emit_json(fig17_to_dict(result))
        print(format_fig17(result))
        return 0
    print(f"no driver for figure {number}", file=sys.stderr)
    return 2


def _cmd_headroom(args: argparse.Namespace) -> int:
    from repro.experiments.headroom import (
        format_headroom,
        headroom_to_dict,
        run_headroom_experiment,
    )

    result = run_headroom_experiment(n_packets=args.packets, seed=args.seed)
    if args.json:
        return _emit_json(headroom_to_dict(result))
    print(format_headroom(result))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from repro.experiments import ablations

    name = args.which
    seed = args.seed
    if name == "ddio":
        result = ablations.run_ddio_ways_ablation(seed=seed)
        serializer, formatter = (
            ablations.ddio_ablation_to_dict,
            ablations.format_ddio_ablation,
        )
    elif name == "prefetcher":
        result = ablations.run_prefetcher_ablation(seed=seed)
        serializer, formatter = (
            ablations.prefetcher_ablation_to_dict,
            ablations.format_prefetcher_ablation,
        )
    elif name == "replacement":
        result = ablations.run_replacement_ablation(seed=seed)
        serializer, formatter = (
            ablations.replacement_ablation_to_dict,
            ablations.format_replacement_ablation,
        )
    elif name == "migration":
        result = ablations.run_migration_experiment(seed=seed)
        serializer, formatter = (
            ablations.migration_experiment_to_dict,
            ablations.format_migration_experiment,
        )
    elif name == "value-size":
        result = ablations.run_value_size_ablation(seed=seed)
        serializer, formatter = (
            ablations.value_size_ablation_to_dict,
            ablations.format_value_size_ablation,
        )
    elif name == "mtu":
        result = ablations.run_mtu_eviction_experiment(seed=seed)
        serializer, formatter = (
            ablations.mtu_eviction_to_dict,
            ablations.format_mtu_eviction,
        )
    elif name == "rx-strategies":
        result = ablations.run_rx_strategy_comparison(seed=seed)
        serializer, formatter = (
            ablations.rx_strategies_to_dict,
            ablations.format_rx_strategies,
        )
    elif name == "multitenant":
        from repro.experiments.multitenant import (
            format_multitenant,
            multitenant_to_dict,
            run_multitenant_experiment,
        )

        result = run_multitenant_experiment(seed=seed)
        serializer, formatter = multitenant_to_dict, format_multitenant
    else:  # pragma: no cover - argparse restricts choices
        return 2
    if args.json:
        return _emit_json(serializer(result))
    print(formatter(result))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.chaos_command == "tail":
        from repro.experiments.chaos import (
            chaos_tail_to_dict,
            format_chaos_tail,
            run_chaos_tail,
        )

        result = run_chaos_tail(
            chain=args.chain,
            classes=args.classes or None,
            offered_gbps=args.offered,
            n_bulk_packets=args.bulk,
            micro_packets=args.micro,
            runs=args.runs,
            seed=args.seed,
            intensity=args.intensity,
        )
        if args.json:
            return _emit_json(chaos_tail_to_dict(result))
        print(format_chaos_tail(result))
        return 0
    if args.chaos_command == "knee":
        from repro.experiments.chaos import (
            degradation_knee_to_dict,
            format_degradation_knee,
            run_degradation_knee,
        )

        result = run_degradation_knee(
            fault_class=args.fault_class,
            chain=args.chain,
            offered_gbps=args.offered,
            intensities=args.intensities or None,
            n_bulk_packets=args.bulk,
            micro_packets=args.micro,
            seed=args.seed,
        )
        if args.json:
            return _emit_json(degradation_knee_to_dict(result))
        print(format_degradation_knee(result))
        return 0
    return _cmd_chaos_replay(args)


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    """Re-run a persisted chaos artifact from its own fault plans.

    The replay feeds the artifact's persisted FaultPlan JSON back into
    the experiment (``plans`` override) at the artifact's parameters
    and seed, then requires the reproduced payload to be bit-identical.
    """
    from pathlib import Path

    from repro.experiments.chaos import (
        chaos_tail_to_dict,
        degradation_knee_to_dict,
        run_chaos_tail,
        run_degradation_knee,
    )

    artifact = json.loads(Path(args.artifact).read_text())
    name = artifact.get("name")
    persisted = artifact["result"]
    kwargs = dict(artifact.get("params") or {})
    if artifact.get("seed") is not None:
        kwargs.setdefault("seed", artifact["seed"])
    kwargs["plans"] = persisted["plans"]
    if name == "chaos-tail":
        replayed = chaos_tail_to_dict(run_chaos_tail(**kwargs))
    elif name == "degradation-knee":
        replayed = degradation_knee_to_dict(run_degradation_knee(**kwargs))
    else:
        print(
            f"chaos replay: {args.artifact} is a {name!r} artifact, "
            "not chaos-tail/degradation-knee",
            file=sys.stderr,
        )
        return 2
    original = json.dumps(persisted, sort_keys=True)
    reproduced = json.dumps(replayed, sort_keys=True)
    if original == reproduced:
        print(f"replay of {name} from {args.artifact}: bit-identical")
        return 0
    print(
        f"replay of {name} from {args.artifact}: MISMATCH "
        f"({len(original)} vs {len(reproduced)} canonical bytes)",
        file=sys.stderr,
    )
    for key in sorted(set(persisted) | set(replayed)):
        a = json.dumps(persisted.get(key), sort_keys=True)
        b = json.dumps(replayed.get(key), sort_keys=True)
        if a != b:
            print(f"  differs at top-level key {key!r}", file=sys.stderr)
    return 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "scale":
        from repro.experiments.fleet import (
            fleet_scale_to_dict,
            format_fleet_scale,
            run_fleet_scale,
        )

        result = run_fleet_scale(
            server_counts=args.servers or None,
            tenant_counts=args.tenants or None,
            requests=args.requests,
            warmup=args.warmup,
            n_keys=args.keys,
            offered_mrps=args.offered,
            epoch_requests=args.epoch,
            seed=args.seed,
            dataplane=args.dataplane,
        )
        if args.json:
            return _emit_json(fleet_scale_to_dict(result))
        print(format_fleet_scale(result))
        return 0
    if args.fleet_command == "failover":
        from repro.experiments.fleet import (
            fleet_failover_to_dict,
            format_fleet_failover,
            run_fleet_failover,
        )

        result = run_fleet_failover(
            intensities=args.intensities or None,
            n_servers=args.servers,
            n_tenants=args.tenants,
            requests=args.requests,
            warmup=args.warmup,
            n_keys=args.keys,
            offered_mrps=args.offered,
            epoch_requests=args.epoch,
            seed=args.seed,
        )
        if args.json:
            return _emit_json(fleet_failover_to_dict(result))
        print(format_fleet_failover(result))
        return 0
    if args.fleet_command == "availability":
        from repro.experiments.fleet import (
            fleet_availability_to_dict,
            format_fleet_availability,
            run_fleet_availability,
        )

        result = run_fleet_availability(
            intensities=args.intensities or None,
            n_servers=args.servers,
            n_tenants=args.tenants,
            requests=args.requests,
            warmup=args.warmup,
            n_keys=args.keys,
            offered_mrps=args.offered,
            epoch_requests=args.epoch,
            seed=args.seed,
        )
        if args.json:
            return _emit_json(fleet_availability_to_dict(result))
        print(format_fleet_availability(result))
        return 0
    if args.fleet_command == "durability":
        from repro.experiments.fleet import (
            fleet_durability_to_dict,
            format_fleet_durability,
            run_fleet_durability,
        )

        result = run_fleet_durability(
            replications=args.replications or None,
            intensities=args.intensities or None,
            n_servers=args.servers,
            n_tenants=args.tenants,
            requests=args.requests,
            warmup=args.warmup,
            n_keys=args.keys,
            offered_mrps=args.offered,
            epoch_requests=args.epoch,
            seed=args.seed,
        )
        if args.json:
            return _emit_json(fleet_durability_to_dict(result))
        print(format_fleet_durability(result))
        return 0
    return _cmd_fleet_replay(args)


def _cmd_fleet_replay(args: argparse.Namespace) -> int:
    """Re-run a persisted fleet artifact from its own plans.

    Same contract as ``repro chaos replay``: the artifact's persisted
    fault plans are fed back (``plans`` override) at the artifact's
    parameters and seed, and the reproduced payload must be
    bit-identical.  Handles ``fleet-failover``, ``fleet-availability``
    and ``fleet-durability`` artifacts.
    """
    from pathlib import Path

    from repro.experiments.fleet import (
        fleet_availability_to_dict,
        fleet_durability_to_dict,
        fleet_failover_to_dict,
        run_fleet_availability,
        run_fleet_durability,
        run_fleet_failover,
    )

    replayable = {
        "fleet-failover": (run_fleet_failover, fleet_failover_to_dict),
        "fleet-availability": (
            run_fleet_availability,
            fleet_availability_to_dict,
        ),
        "fleet-durability": (
            run_fleet_durability,
            fleet_durability_to_dict,
        ),
    }
    artifact = json.loads(Path(args.artifact).read_text())
    name = artifact.get("name")
    if name not in replayable:
        print(
            f"fleet replay: {args.artifact} is a {name!r} artifact, "
            f"not one of {sorted(replayable)}",
            file=sys.stderr,
        )
        return 2
    runner, serializer = replayable[name]
    persisted = artifact["result"]
    kwargs = dict(artifact.get("params") or {})
    if artifact.get("seed") is not None:
        kwargs.setdefault("seed", artifact["seed"])
    kwargs["plans"] = persisted["plans"]
    replayed = serializer(runner(**kwargs))
    original = json.dumps(persisted, sort_keys=True)
    reproduced = json.dumps(replayed, sort_keys=True)
    if original == reproduced:
        print(f"replay of {name} from {args.artifact}: bit-identical")
        return 0
    print(
        f"replay of {name} from {args.artifact}: MISMATCH "
        f"({len(original)} vs {len(reproduced)} canonical bytes)",
        file=sys.stderr,
    )
    for key in sorted(set(persisted) | set(replayed)):
        a = json.dumps(persisted.get(key), sort_keys=True)
        b = json.dumps(replayed.get(key), sort_keys=True)
        if a != b:
            print(f"  differs at top-level key {key!r}", file=sys.stderr)
    return 1


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.simcheck import RULES, format_result, run_simcheck

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    if args.paths:
        paths = [Path(p) for p in args.paths]
        root = Path.cwd()
    else:
        # Default to the installed repro package itself, so `repro
        # check` works from any working directory.
        pkg = Path(__file__).resolve().parent
        paths = [pkg]
        root = pkg.parent
    select = (
        {c.strip() for c in args.select.split(",") if c.strip()}
        if args.select
        else None
    )
    exclude = (
        {c.strip() for c in args.exclude_rules.split(",") if c.strip()}
        if args.exclude_rules
        else None
    )
    result = run_simcheck(paths, root=root, select=select, exclude=exclude)
    mode = "json" if args.json else ("github" if args.github else "text")
    print(format_result(result, mode))
    return 1 if result.active else 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Make the Most out of Last Level Cache in "
            "Intel Processors' (EuroSys '19) — run any paper experiment."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("profile", help="per-slice access latency (Figs. 5/16)")
    p.add_argument("--machine", choices=sorted(MACHINES), default="haswell")
    p.add_argument("--core", type=int, default=0)
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="emit the JSON payload")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("recover-hash", help="reverse-engineer the hash (Fig. 4)")
    p.add_argument("--verify", type=int, default=256, help="verification sweep size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="emit the JSON payload")
    p.set_defaults(func=_cmd_recover_hash)

    p = sub.add_parser("table", help="print a paper table")
    p.add_argument("number", type=int, choices=(1, 2, 3, 4))
    p.add_argument(
        "--bulk", type=int, default=20_000, help="table 3: bulk packets per arm"
    )
    p.add_argument(
        "--micro", type=int, default=500, help="table 3: microsim packets"
    )
    p.add_argument("--runs", type=int, default=1, help="table 3: runs per arm")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--dataplane",
        choices=("scalar", "batched"),
        default="scalar",
        help="table 3: microsim charging mode (identical results)",
    )
    p.add_argument("--json", action="store_true", help="emit the JSON payload")
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("fig", help="run a paper figure's experiment")
    p.add_argument("number", type=int, choices=(1, 4, 5, 6, 7, 8, 12, 13, 14, 15, 16, 17))
    p.add_argument("--ops", type=int, default=3000, help="ops/packets per run")
    p.add_argument("--runs", type=int, default=2)
    p.add_argument("--warmup", type=int, default=60_000, help="KVS warm-up requests")
    p.add_argument("--offered", type=float, default=100.0, help="offered load (Gbps)")
    p.add_argument("--bulk", type=int, default=150_000, help="bulk packets per run")
    p.add_argument("--micro", type=int, default=2500, help="microsim packets")
    p.add_argument("--verify", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--dataplane",
        choices=("scalar", "batched"),
        default="scalar",
        help="figs 1/13/14: microsim charging mode (identical results)",
    )
    p.add_argument("--json", action="store_true", help="emit the JSON payload")
    p.set_defaults(func=_cmd_fig)

    p = sub.add_parser("headroom", help="dynamic headroom distribution (§4.2)")
    p.add_argument("--packets", type=int, default=8000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="emit the JSON payload")
    p.set_defaults(func=_cmd_headroom)

    p = sub.add_parser("ablation", help="run a design ablation")
    p.add_argument(
        "which",
        choices=(
            "ddio",
            "prefetcher",
            "replacement",
            "migration",
            "value-size",
            "mtu",
            "rx-strategies",
            "multitenant",
        ),
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true", help="emit the JSON payload")
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser(
        "chaos", help="fault-injection experiments (tail/knee/replay)"
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)

    q = chaos_sub.add_parser("tail", help="tail latency per fault class")
    q.add_argument("--chain", choices=("forwarding", "stateful"), default="forwarding")
    q.add_argument("--classes", nargs="*", default=None, help="fault classes")
    q.add_argument("--offered", type=float, default=100.0, help="offered load (Gbps)")
    q.add_argument("--bulk", type=int, default=60_000, help="bulk packets per run")
    q.add_argument("--micro", type=int, default=1500, help="microsim packets")
    q.add_argument("--runs", type=int, default=2)
    q.add_argument("--intensity", type=float, default=1.0, help="rate multiplier")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--json", action="store_true", help="emit the JSON payload")
    q.set_defaults(func=_cmd_chaos)

    q = chaos_sub.add_parser("knee", help="goodput vs fault intensity")
    q.add_argument("--fault-class", default="mixed", dest="fault_class")
    q.add_argument("--chain", choices=("forwarding", "stateful"), default="stateful")
    q.add_argument("--offered", type=float, default=40.0, help="offered load (Gbps)")
    q.add_argument(
        "--intensities", nargs="*", type=float, default=None, help="sweep grid"
    )
    q.add_argument("--bulk", type=int, default=60_000, help="bulk packets per run")
    q.add_argument("--micro", type=int, default=1500, help="microsim packets")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--json", action="store_true", help="emit the JSON payload")
    q.set_defaults(func=_cmd_chaos)

    q = chaos_sub.add_parser(
        "replay", help="re-run a persisted chaos artifact; verify bit-identity"
    )
    q.add_argument("artifact", help="chaos-tail.json / degradation-knee.json")
    q.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "fleet",
        help=(
            "cluster-scale serving simulation "
            "(scale/failover/availability/durability/replay)"
        ),
    )
    fleet_sub = p.add_subparsers(dest="fleet_command", required=True)

    q = fleet_sub.add_parser("scale", help="goodput/tails vs servers × tenants")
    q.add_argument("--servers", nargs="*", type=int, default=None, help="server grid")
    q.add_argument("--tenants", nargs="*", type=int, default=None, help="tenant grid")
    q.add_argument("--requests", type=int, default=20_000, help="requests per cell")
    q.add_argument("--warmup", type=int, default=4_000, help="warmup requests")
    q.add_argument("--keys", type=int, default=1 << 12, help="keys per tenant")
    q.add_argument("--offered", type=float, default=16.0, help="offered load (Mrps)")
    q.add_argument("--epoch", type=int, default=2_000, help="requests per epoch")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument(
        "--dataplane",
        choices=("scalar", "batched"),
        default="scalar",
        help="per-server charging mode (identical results)",
    )
    q.add_argument("--json", action="store_true", help="emit the JSON payload")
    q.set_defaults(func=_cmd_fleet)

    q = fleet_sub.add_parser(
        "failover", help="tail inflation/recovery under server kills"
    )
    q.add_argument(
        "--intensities", nargs="*", type=float, default=None, help="sweep grid"
    )
    q.add_argument("--servers", type=int, default=4, help="fleet size")
    q.add_argument("--tenants", type=int, default=4, help="tenants")
    q.add_argument("--requests", type=int, default=20_000, help="requests per point")
    q.add_argument("--warmup", type=int, default=4_000, help="warmup requests")
    q.add_argument("--keys", type=int, default=1 << 12, help="keys per tenant")
    q.add_argument("--offered", type=float, default=16.0, help="offered load (Mrps)")
    q.add_argument("--epoch", type=int, default=2_000, help="requests per epoch")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--json", action="store_true", help="emit the JSON payload")
    q.set_defaults(func=_cmd_fleet)

    q = fleet_sub.add_parser(
        "availability",
        help="unavailability/recovery under kill+stall chaos (self-healing)",
    )
    q.add_argument(
        "--intensities", nargs="*", type=float, default=None, help="sweep grid"
    )
    q.add_argument("--servers", type=int, default=6, help="fleet size")
    q.add_argument("--tenants", type=int, default=4, help="tenants")
    q.add_argument("--requests", type=int, default=20_000, help="requests per point")
    q.add_argument("--warmup", type=int, default=4_000, help="warmup requests")
    q.add_argument("--keys", type=int, default=1 << 12, help="keys per tenant")
    q.add_argument("--offered", type=float, default=16.0, help="offered load (Mrps)")
    q.add_argument("--epoch", type=int, default=1_000, help="requests per epoch")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--json", action="store_true", help="emit the JSON payload")
    q.set_defaults(func=_cmd_fleet)

    q = fleet_sub.add_parser(
        "durability",
        help="lost keys vs replication factor × permanent-kill intensity",
    )
    q.add_argument(
        "--replications", nargs="*", type=int, default=None, help="R values"
    )
    q.add_argument(
        "--intensities", nargs="*", type=float, default=None, help="sweep grid"
    )
    q.add_argument("--servers", type=int, default=5, help="fleet size")
    q.add_argument("--tenants", type=int, default=2, help="tenants")
    q.add_argument("--requests", type=int, default=20_000, help="requests per point")
    q.add_argument("--warmup", type=int, default=4_000, help="warmup requests")
    q.add_argument("--keys", type=int, default=1 << 12, help="keys per tenant")
    q.add_argument("--offered", type=float, default=16.0, help="offered load (Mrps)")
    q.add_argument("--epoch", type=int, default=2_000, help="requests per epoch")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--json", action="store_true", help="emit the JSON payload")
    q.set_defaults(func=_cmd_fleet)

    q = fleet_sub.add_parser(
        "replay",
        help=(
            "re-run a persisted fleet-failover/availability/durability "
            "artifact; verify bit-identity"
        ),
    )
    q.add_argument("artifact", help="fleet-*.json artifact")
    q.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "check", help="static analysis of simulation invariants (simcheck)"
    )
    p.add_argument(
        "paths", nargs="*", help="files or directories (default: the repro package)"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--github", action="store_true", help="GitHub Actions annotations"
    )
    p.add_argument(
        "--select",
        "--rules",
        dest="select",
        default=None,
        help="comma-separated rule codes to run",
    )
    p.add_argument(
        "--exclude-rules",
        dest="exclude_rules",
        default=None,
        help="comma-separated rule codes to skip",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    p.set_defaults(func=_cmd_check)

    from repro.analysis.deepcheck.cli import add_deepcheck_parser

    add_deepcheck_parser(sub)

    from repro.lab.cli import add_lab_parser

    add_lab_parser(sub)

    from repro.bench.cli import add_bench_parser

    add_bench_parser(sub)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — fine.
        try:
            sys.stdout.close()
        except OSError:
            # Closing a broken pipe may itself fail; nothing to do.
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
