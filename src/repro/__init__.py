"""repro — a reproduction of *Make the Most out of Last Level Cache in
Intel Processors* (Farshin, Roozbeh, Maguire Jr., Kostić; EuroSys '19).

Slice-aware memory management and CacheDirector, rebuilt on a
cycle-level simulation of Intel's sliced, NUCA last-level cache.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.cachesim` — the cache-hierarchy simulator substrate.
* :mod:`repro.mem` — simulated hugepages and slice-filtered allocation.
* :mod:`repro.core` — the paper's contribution: placement API,
  profiling, hash reverse-engineering, CacheDirector, isolation,
  monitoring/migration.
* :mod:`repro.dpdk` — the DPDK-like packet I/O substrate.
* :mod:`repro.net` — packets, network functions, the latency harness.
* :mod:`repro.kvs` — the emulated key-value store.
* :mod:`repro.stats` — percentiles, curve fitting, reuse distances.
* :mod:`repro.experiments` — one driver per paper figure/table.
* :mod:`repro.cli` — ``python -m repro`` command-line front end.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
