"""Fig. 6 — slice-aware vs normal allocation speedup per target slice (§3).

Core 0 performs random accesses over a 1.375 MB working set (half a
slice plus the L2, exactly the paper's sizing) allocated either
normally (contiguous — lines spread over all slices) or slice-aware to
each target slice in turn.  The per-slice average speedup over the
normal baseline reproduces Fig. 6: positive for the slices close to
core 0, negative for the far ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cachesim.machines import HASWELL_E5_2667V3, MachineSpec
from repro.core.slice_aware import SliceAwareContext
from repro.mem.address import CACHE_LINE
from repro.mem.slice_array import SliceLocalArray


@dataclass
class SliceSpeedupResult:
    """Per-slice average speedup for read and write workloads."""

    read_speedup_pct: List[float]
    write_speedup_pct: List[float]
    normal_read_cycles: float
    normal_write_cycles: float


def _run_workload(hierarchy, core: int, line_addresses, n_ops: int, write: bool, rng) -> int:
    """Random single-line accesses over a buffer; returns total cycles."""
    indices = rng.integers(0, len(line_addresses), size=n_ops)
    total = 0
    if write:
        for i in indices:
            total += hierarchy.write(core, line_addresses[i], 1)
    else:
        for i in indices:
            total += hierarchy.read(core, line_addresses[i], 1)
    return total


def run_fig06(
    spec: MachineSpec = HASWELL_E5_2667V3,
    core: int = 0,
    working_set_bytes: int = None,
    n_ops: int = 10_000,
    seed: int = 0,
) -> SliceSpeedupResult:
    """Measure Fig. 6's per-slice speedups.

    Args:
        spec: machine model.
        core: accessing core (paper uses core 0).
        working_set_bytes: buffer size; defaults to half a slice plus
            the L2 size, the paper's 1.375 MB on Haswell.
        n_ops: random accesses per run (paper: 10 000).
        seed: RNG seed.
    """
    if working_set_bytes is None:
        working_set_bytes = spec.llc_slice_bytes // 2 + spec.l2_bytes
    n_lines = working_set_bytes // CACHE_LINE
    rng = np.random.default_rng(seed)

    def fresh_context() -> SliceAwareContext:
        return SliceAwareContext(spec, seed=seed)

    def measure(lines: List[int], write: bool) -> int:
        ctx = fresh_context()
        hierarchy = ctx.hierarchy
        # Warm the full working set (the paper repeats the experiment
        # 100 times over the same buffer, so measurements are steady
        # state), then warm with the same operation type: sustained
        # writes leave a dirty steady state whose eviction drains
        # Fig. 6b measures.
        for address in lines:
            if write:
                hierarchy.write(core, address, 1)
            else:
                hierarchy.read(core, address, 1)
        _run_workload(ctx.hierarchy, core, lines, n_ops, write, np.random.default_rng(seed))
        return _run_workload(
            ctx.hierarchy, core, lines, n_ops, write, np.random.default_rng(seed + 1)
        )

    # Baseline: contiguous allocation.
    context = fresh_context()
    normal = context.allocate_normal(working_set_bytes)
    normal_lines = [normal.base + i * CACHE_LINE for i in range(n_lines)]
    normal_read = measure(normal_lines, write=False)
    normal_write = measure(normal_lines, write=True)

    read_speedups: List[float] = []
    write_speedups: List[float] = []
    context = fresh_context()  # geometry only; fresh machines built per run
    block_lines = context.hash.n_slices  # full density: every target line
    page = context.address_space.mmap_auto(
        spec.n_slices * n_lines * block_lines * CACHE_LINE
    )
    for target in range(spec.n_slices):
        array = SliceLocalArray(
            base_phys=page.phys + target * n_lines * block_lines * CACHE_LINE,
            n_lines=n_lines,
            slice_hash=context.hash,
            target_slice=target,
            block_lines=block_lines,
        )
        lines = [array.line_address(i) for i in range(n_lines)]
        read = measure(lines, write=False)
        write = measure(lines, write=True)
        read_speedups.append((normal_read - read) / normal_read * 100.0)
        write_speedups.append((normal_write - write) / normal_write * 100.0)
    return SliceSpeedupResult(
        read_speedup_pct=read_speedups,
        write_speedup_pct=write_speedups,
        normal_read_cycles=normal_read,
        normal_write_cycles=normal_write,
    )


def format_fig06(result: SliceSpeedupResult) -> str:
    """Render the Fig. 6 bars."""
    lines = ["Fig. 6 — avg speedup of slice-aware vs normal allocation (core 0)"]
    lines.append("slice | read speedup % | write speedup %")
    for s, (r, w) in enumerate(zip(result.read_speedup_pct, result.write_speedup_pct)):
        lines.append(f"{s:>5} | {r:>13.1f} | {w:>14.1f}")
    return "\n".join(lines)
def fig06_to_dict(result: SliceSpeedupResult) -> dict:
    """JSON-ready form of the per-slice speedups (lab/CLI ``--json``)."""
    return {
        "read_speedup_pct": [float(v) for v in result.read_speedup_pct],
        "write_speedup_pct": [float(v) for v in result.write_speedup_pct],
        "normal_read_cycles": float(result.normal_read_cycles),
        "normal_write_cycles": float(result.normal_write_cycles),
    }
