"""Tables 1–4 of the paper.

* Table 1 — the Haswell cache geometry (validated against the machine
  model).
* Table 2 — the traffic classes used in the evaluation.
* Table 3 — throughput + average improvement at 100 Gbps (computed
  from the Fig. 13/14 runs).
* Table 4 — preferable slices per core on the Skylake part (derived
  from the NUCA latency model, as the paper derived it from
  measurements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cachesim.machines import (
    HASWELL_E5_2667V3,
    SKYLAKE_GOLD_6134,
    MachineSpec,
)
from repro.core.profiles import derive_preference_table
from repro.experiments.nfv_common import NfvExperimentResult
from repro.net.trace import TABLE2_CLASSES


def table1_rows(spec: MachineSpec = HASWELL_E5_2667V3) -> List[Tuple[str, str, int, int, str]]:
    """Table 1: (level, size, ways, sets, index-bit range)."""
    def size_label(size: int) -> str:
        if size >= 1 << 20:
            return f"{size / (1 << 20):g}MB"
        return f"{size // 1024}kB"

    def index_range(n_sets: int) -> str:
        top = 6 + n_sets.bit_length() - 2
        return f"{top}-6"

    return [
        (
            "LLC-Slice",
            size_label(spec.llc_slice_bytes),
            spec.llc_ways,
            spec.llc_sets,
            index_range(spec.llc_sets),
        ),
        ("L2", size_label(spec.l2_bytes), spec.l2_ways, spec.l2_sets, index_range(spec.l2_sets)),
        ("L1", size_label(spec.l1_bytes), spec.l1_ways, spec.l1_sets, index_range(spec.l1_sets)),
    ]


def format_table1(spec: MachineSpec = HASWELL_E5_2667V3) -> str:
    """Render Table 1."""
    out = [f"Table 1 — {spec.name} cache specification"]
    out.append("Cache Level | Size   | #Ways | #Sets | Index-bits")
    for level, size, ways, sets, bits in table1_rows(spec):
        out.append(f"{level:<11} | {size:<6} | {ways:>5} | {sets:>5} | {bits}")
    return "\n".join(out)


def format_table2() -> str:
    """Render Table 2 (traffic classes and rates)."""
    out = ["Table 2 — traffic classes"]
    out.append("class    | size (B) | rate (pps) | offered Gbps")
    for cls in TABLE2_CLASSES:
        out.append(
            f"{cls.label:<8} | {cls.packet_size:>8} | {cls.rate_pps:>10.0f} "
            f"| {cls.rate_gbps:>12.3f}"
        )
    out.append("Mixed    | campus mix | 5-100 Gbps sweep")
    return "\n".join(out)


@dataclass
class Table3Row:
    """One Table 3 scenario."""

    scenario: str
    throughput_gbps: float
    improvement_mbps: float


def table3_rows(
    forwarding: Dict[str, NfvExperimentResult],
    service_chain: Dict[str, NfvExperimentResult],
) -> List[Table3Row]:
    """Build Table 3 from the Fig. 13 and Fig. 14 runs."""
    rows = []
    for name, results in (
        ("Simple Forwarding", forwarding),
        ("Router-NAPT-LB (FlowDirector w/ H/W offloading)", service_chain),
    ):
        base = results["dpdk"].achieved_gbps
        cd = results["cachedirector"].achieved_gbps
        rows.append(
            Table3Row(
                scenario=name,
                throughput_gbps=base,
                improvement_mbps=(cd - base) * 1e3,
            )
        )
    return rows


def format_table3(rows: List[Table3Row]) -> str:
    """Render Table 3."""
    out = ["Table 3 — throughput at 100 Gbps offered + improvement"]
    out.append("scenario                                        | Gbps  | improve (Mbps)")
    for row in rows:
        out.append(
            f"{row.scenario:<47} | {row.throughput_gbps:>5.2f} | {row.improvement_mbps:>+8.0f}"
        )
    out.append("paper: 76.58 / +31.17 (forwarding), 75.94 / +27.31 (chain)")
    return "\n".join(out)


def format_table4(spec: MachineSpec = SKYLAKE_GOLD_6134) -> str:
    """Render Table 4 (preferable slices per core on Skylake)."""
    table = derive_preference_table(spec.interconnect_factory())
    out = [f"Table 4 — preferable slices per core, {spec.name}"]
    out.append("core | primary | secondary")
    for core in sorted(table):
        primary, secondaries = table[core]
        secondary_label = ", ".join(f"S{s}" for s in secondaries)
        out.append(f"C{core:<3} | S{primary:<6} | {secondary_label}")
    return "\n".join(out)


# ----------------------------------------------------------------------
# Runners + JSON serializers (lab artifacts and CLI --json)
# ----------------------------------------------------------------------

def run_table1(spec: MachineSpec = HASWELL_E5_2667V3) -> List[Tuple[str, str, int, int, str]]:
    """Table 1 as data (the lab-registered runner)."""
    return table1_rows(spec)


def table1_to_dict(rows: List[Tuple[str, str, int, int, str]]) -> dict:
    """JSON-ready form of Table 1."""
    return {
        "rows": [
            {
                "level": level,
                "size": size,
                "ways": int(ways),
                "sets": int(sets),
                "index_bits": bits,
            }
            for level, size, ways, sets, bits in rows
        ]
    }


def run_table2() -> list:
    """Table 2 as data (the lab-registered runner)."""
    return list(TABLE2_CLASSES)


def table2_to_dict(classes: list) -> dict:
    """JSON-ready form of Table 2."""
    return {
        "classes": [
            {
                "label": cls.label,
                "packet_size": int(cls.packet_size),
                "rate_pps": float(cls.rate_pps),
                "rate_gbps": float(cls.rate_gbps),
            }
            for cls in classes
        ]
    }


def run_table3(
    offered_gbps: float = 100.0,
    n_bulk_packets: int = 60_000,
    micro_packets: int = 1500,
    runs: int = 1,
    seed: int = 0,
    dataplane: str = "scalar",
) -> List[Table3Row]:
    """Compute Table 3 by driving the Fig. 13/14 runners.

    Defaults use reduced packet counts so the table is cheap to print
    from the CLI; the paper-scale numbers come from the benchmark
    suite (or ``repro fig 13``/``fig 14`` at full counts).
    """
    from repro.experiments.fig13_forwarding import run_fig13
    from repro.experiments.fig14_service_chain import run_fig14

    forwarding = run_fig13(
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        engine="fast",
        dataplane=dataplane,
    )
    service_chain = run_fig14(
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        dataplane=dataplane,
    )
    return table3_rows(forwarding, service_chain)


def table3_to_dict(rows: List[Table3Row]) -> dict:
    """JSON-ready form of Table 3."""
    return {
        "rows": [
            {
                "scenario": row.scenario,
                "throughput_gbps": float(row.throughput_gbps),
                "improvement_mbps": float(row.improvement_mbps),
            }
            for row in rows
        ]
    }


def run_table4(spec: MachineSpec = SKYLAKE_GOLD_6134) -> dict:
    """Table 4 as data (the lab-registered runner)."""
    table = derive_preference_table(spec.interconnect_factory())
    return {
        "machine": spec.name,
        "preferable": {
            str(core): {
                "primary": int(primary),
                "secondary": [int(s) for s in secondaries],
            }
            for core, (primary, secondaries) in sorted(table.items())
        },
    }


def table4_to_dict(result: dict) -> dict:
    """JSON-ready form of Table 4 (already plain data)."""
    return result
