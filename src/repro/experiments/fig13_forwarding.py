"""Fig. 13 — simple forwarding, mixed-size packets at 100 Gbps, RSS (§5.1.2)."""
# simcheck: ignore-file[SIM302] — serialized via the shared nfv_common.comparison_to_dict in lab/registry.py

from __future__ import annotations

from typing import Dict

from repro.experiments.nfv_common import (
    NfvExperimentResult,
    compare_cache_director,
    format_comparison,
    run_nfv_experiment,
)
from repro.net.chain import simple_forwarding_chain


def run_fig13_arm(
    cache_director: bool,
    offered_gbps: float = 100.0,
    n_bulk_packets: int = 300_000,
    micro_packets: int = 4000,
    runs: int = 3,
    seed: int = 0,
    engine: str = "reference",
    dataplane: str = "scalar",
) -> NfvExperimentResult:
    """One arm (DPDK or +CacheDirector) of Fig. 13, independently runnable.

    Splitting the comparison into its two arms lets the lab runner
    execute them in parallel; each arm is exactly what
    :func:`run_fig13` computes for it.
    """
    return run_nfv_experiment(
        simple_forwarding_chain,
        cache_director,
        "rss",
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        engine=engine,
        dataplane=dataplane,
    )


def run_fig13(
    offered_gbps: float = 100.0,
    n_bulk_packets: int = 300_000,
    micro_packets: int = 4000,
    runs: int = 3,
    seed: int = 0,
    engine: str = "reference",
    dataplane: str = "scalar",
) -> Dict[str, NfvExperimentResult]:
    """Forwarding at 100 Gbps with RSS steering over 8 cores."""
    return compare_cache_director(
        simple_forwarding_chain,
        steering_kind="rss",
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        engine=engine,
        dataplane=dataplane,
    )


def format_fig13(results: Dict[str, NfvExperimentResult]) -> str:
    """Render the Fig. 13 percentile/improvement panels."""
    return format_comparison(
        results,
        "Fig. 13 — simple forwarding, mixed sizes @ 100 Gbps, RSS "
        "(loopback excluded)",
    )
