"""Experiment drivers: one module per paper figure/table.

Every module exposes a ``run_*`` function returning a structured
result plus a ``format_*`` helper that prints the same rows/series the
paper reports.  The benchmark suite under ``benchmarks/`` calls these;
so can users, directly:

>>> from repro.experiments.fig05_access_time import run_fig05
>>> profile = run_fig05(runs=3)

Scale parameters default to CI-friendly sizes; pass larger values to
approach the paper's sample counts (see EXPERIMENTS.md).
"""
