"""Fig. 17 — slice isolation vs Intel CAT under a noisy neighbour (§7).

Skylake model; the main application random-accesses a 2 MB working set
(three-quarters of a slice plus the L2, the paper's sizing) while a
noisy neighbour streams through the LLC from another core.  Three
scenarios:

* **NoCAT** — both share all 11 ways, normal allocation.
* **2W isolated** — CAT gives the main application 2 ways (~18 % of
  the LLC), the neighbour the other 9.
* **Slice-0 isolated** — the main application's working set lives
  entirely in its core's primary slice (~5 % of the LLC); the
  neighbour's buffer maps everywhere *except* that slice.

The paper finds slice isolation ~11 % faster than 2-way CAT for both
reads and writes despite owning less capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cachesim.cat import CatController
from repro.cachesim.machines import SKYLAKE_GOLD_6134, MachineSpec, build_hierarchy
from repro.core.isolation import configure_cat_way_isolation, plan_slice_isolation
from repro.core.slice_aware import SliceAwareContext
from repro.mem.address import CACHE_LINE

SCENARIOS = ("nocat", "cat-2w", "slice-isolated")


@dataclass
class IsolationResult:
    """Average main-application execution time per scenario (seconds)."""

    read_seconds: Dict[str, float]
    write_seconds: Dict[str, float]

    def slice_vs_cat_pct(self, op: str) -> float:
        """Speedup of slice isolation over 2-way CAT (paper: ~11 %)."""
        table = self.read_seconds if op == "read" else self.write_seconds
        return (table["cat-2w"] - table["slice-isolated"]) / table["cat-2w"] * 100


def _interleaved_run(
    hierarchy,
    main_core: int,
    main_lines: List[int],
    neighbour_core: int,
    neighbour_lines: List[int],
    n_ops: int,
    write: bool,
    neighbour_ratio: int,
    seed: int,
) -> int:
    """Main app ops interleaved with neighbour streaming; main cycles."""
    rng = np.random.default_rng(seed)
    main_idx = rng.integers(0, len(main_lines), size=n_ops)
    neighbour_pos = 0
    cycles = 0
    for i in range(n_ops):
        address = main_lines[main_idx[i]]
        if write:
            cycles += hierarchy.write(main_core, address, 1)
        else:
            cycles += hierarchy.read(main_core, address, 1)
        # The noisy neighbour streams sequentially, thrashing the LLC.
        for _ in range(neighbour_ratio):
            hierarchy.read(
                neighbour_core, neighbour_lines[neighbour_pos], 1
            )
            neighbour_pos = (neighbour_pos + 1) % len(neighbour_lines)
    return cycles


def run_fig17(
    spec: MachineSpec = SKYLAKE_GOLD_6134,
    main_core: int = 0,
    neighbour_core: int = 4,
    working_set_bytes: int = None,
    neighbour_bytes: int = 64 << 20,
    n_ops: int = 6000,
    neighbour_ratio: int = 2,
    main_ways: int = 2,
    seed: int = 0,
) -> IsolationResult:
    """Run the three Fig. 17 scenarios for reads and writes.

    Args:
        spec: machine (paper uses the Skylake part).
        main_core: core of the measured application.
        neighbour_core: core of the noisy neighbour.
        working_set_bytes: main working set (default: 3/4 slice + L2,
            the paper's 2 MB on the Gold 6134).
        neighbour_bytes: neighbour streaming buffer.
        n_ops: measured main-application accesses.
        neighbour_ratio: neighbour accesses per main access.
        main_ways: CAT ways granted to the main application.
        seed: RNG seed.
    """
    if working_set_bytes is None:
        working_set_bytes = 3 * spec.llc_slice_bytes // 4 + spec.l2_bytes
    n_lines = working_set_bytes // CACHE_LINE
    read_seconds: Dict[str, float] = {}
    write_seconds: Dict[str, float] = {}
    for write in (False, True):
        for scenario in SCENARIOS:
            cat = CatController(spec.llc_ways, spec.n_cores)
            if scenario == "cat-2w":
                configure_cat_way_isolation(
                    cat, main_core, main_ways, [neighbour_core]
                )
            hierarchy = build_hierarchy(spec, cat=cat, seed=seed)
            context = SliceAwareContext(spec, hierarchy=hierarchy, seed=seed)
            if scenario == "slice-isolated":
                plan = plan_slice_isolation(
                    context, main_core, working_set_bytes, neighbour_bytes
                )
                main_lines = [plan.main_buffer.line_of(i) for i in range(n_lines)]
                neighbour_lines = [
                    plan.neighbour_buffer.line_of(i)
                    for i in range(plan.neighbour_buffer.n_lines)
                ]
            else:
                main_buffer = context.allocate_normal(working_set_bytes)
                neighbour_buffer = context.allocate_normal(neighbour_bytes)
                main_lines = [
                    main_buffer.base + i * CACHE_LINE for i in range(n_lines)
                ]
                neighbour_lines = [
                    neighbour_buffer.base + i * CACHE_LINE
                    for i in range(neighbour_bytes // CACHE_LINE)
                ]
            # Warm the main working set, then measure under contention.
            for address in main_lines:
                if write:
                    hierarchy.write(main_core, address, 1)
                else:
                    hierarchy.read(main_core, address, 1)
            cycles = _interleaved_run(
                hierarchy,
                main_core,
                main_lines,
                neighbour_core,
                neighbour_lines,
                n_ops,
                write,
                neighbour_ratio,
                seed,
            )
            seconds = spec.cycles_to_seconds(cycles)
            # Scale to the paper's 10 000-op runs for comparable axes.
            seconds *= 10_000 / n_ops
            if write:
                write_seconds[scenario] = seconds
            else:
                read_seconds[scenario] = seconds
    return IsolationResult(read_seconds=read_seconds, write_seconds=write_seconds)


def format_fig17(result: IsolationResult) -> str:
    """Render the Fig. 17 bars."""
    out = ["Fig. 17 — main application execution time under a noisy neighbour"]
    out.append("scenario        |  read (ms) | write (ms)")
    for scenario in SCENARIOS:
        out.append(
            f"{scenario:<15} | {result.read_seconds[scenario] * 1e3:>10.4f} "
            f"| {result.write_seconds[scenario] * 1e3:>10.4f}"
        )
    out.append(
        f"slice isolation vs CAT: read {result.slice_vs_cat_pct('read'):+.1f}%, "
        f"write {result.slice_vs_cat_pct('write'):+.1f}% (paper: ~11.5/11.8 %)"
    )
    return "\n".join(out)
def fig17_to_dict(result: IsolationResult) -> dict:
    """JSON-ready form of the isolation scenarios (lab/CLI ``--json``)."""
    return {
        "read_seconds": {k: float(v) for k, v in result.read_seconds.items()},
        "write_seconds": {k: float(v) for k, v in result.write_seconds.items()},
        "slice_vs_cat_read_pct": float(result.slice_vs_cat_pct("read")),
        "slice_vs_cat_write_pct": float(result.slice_vs_cat_pct("write")),
    }
