"""CacheDirector's tail gain vs offered load.

§5.3's mechanism — "the CPU can process packets faster … hence, the
queueing delay is reduced" — predicts that a fixed per-packet service
saving is *amplified* in the tail as the system approaches saturation
(classically, waiting time scales like ρ/(1−ρ)).  This study sweeps
offered load and reports CacheDirector's absolute and relative
99th-percentile improvement at each point, locating where the
amplification peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.experiments.nfv_common import run_nfv_experiment
from repro.net.chain import router_napt_lb_chain


@dataclass
class SensitivityPoint:
    """One load point of the sweep."""

    offered_gbps: float
    achieved_gbps: float
    p99_dpdk_us: float
    p99_cd_us: float

    @property
    def improvement_us(self) -> float:
        return self.p99_dpdk_us - self.p99_cd_us

    @property
    def improvement_pct(self) -> float:
        if self.p99_dpdk_us == 0:
            return 0.0
        return self.improvement_us / self.p99_dpdk_us * 100


def run_load_sensitivity(
    loads_gbps: List[float] = (20.0, 40.0, 55.0, 65.0, 75.0, 90.0),
    n_bulk_packets: int = 120_000,
    micro_packets: int = 2000,
    seed: int = 0,
) -> List[SensitivityPoint]:
    """Sweep offered load; returns one point per load."""
    points: List[SensitivityPoint] = []
    for load in loads_gbps:
        p99 = {}
        achieved = 0.0
        for cache_director in (False, True):
            result = run_nfv_experiment(
                lambda: router_napt_lb_chain(hw_offload=True),
                cache_director,
                "flow-director",
                offered_gbps=load,
                n_bulk_packets=n_bulk_packets,
                micro_packets=micro_packets,
                runs=2,
                seed=seed,
            )
            p99[cache_director] = result.summary[99]
            achieved = result.achieved_gbps
        points.append(
            SensitivityPoint(
                offered_gbps=load,
                achieved_gbps=achieved,
                p99_dpdk_us=p99[False],
                p99_cd_us=p99[True],
            )
        )
    return points


def format_load_sensitivity(points: List[SensitivityPoint]) -> str:
    """Render the sweep."""
    out = ["Extension — CacheDirector p99 gain vs offered load (Router-NAPT-LB)"]
    out.append("offered | achieved | DPDK p99 |  +CD p99 | gain (us) | gain (%)")
    for p in points:
        out.append(
            f"{p.offered_gbps:>6.0f}G | {p.achieved_gbps:>7.1f}G "
            f"| {p.p99_dpdk_us:>8.1f} | {p.p99_cd_us:>8.1f} "
            f"| {p.improvement_us:>9.2f} | {p.improvement_pct:>7.2f}"
        )
    return "\n".join(out)
def load_sensitivity_to_dict(points: List[SensitivityPoint]) -> dict:
    """JSON-ready form of the load sweep (lab/CLI ``--json``)."""
    return {
        "points": [
            {
                "offered_gbps": float(p.offered_gbps),
                "achieved_gbps": float(p.achieved_gbps),
                "p99_dpdk_us": float(p.p99_dpdk_us),
                "p99_cd_us": float(p.p99_cd_us),
                "improvement_us": float(p.improvement_us),
                "improvement_pct": float(p.improvement_pct),
            }
            for p in points
        ]
    }
