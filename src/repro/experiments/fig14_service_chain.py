# simcheck: ignore-file[SIM302] — serialized via the shared nfv_common.comparison_to_dict in lab/registry.py
"""Figs. 1 & 14 — Router-NAPT-LB at 100 Gbps with FlowDirector (§5.2.1).

The stateful chain with the routing classification offloaded to the
NIC (Metron's FlowDirector offload); Fig. 14a is the latency CDF,
Fig. 14b the per-percentile improvement, and Fig. 1 the same data as
relative speedups.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.nfv_common import (
    NfvExperimentResult,
    compare_cache_director,
    format_comparison,
    run_nfv_experiment,
)
from repro.net.chain import router_napt_lb_chain
from repro.stats.percentiles import cdf_points


def run_fig14_arm(
    cache_director: bool,
    offered_gbps: float = 100.0,
    n_bulk_packets: int = 300_000,
    micro_packets: int = 4000,
    runs: int = 3,
    hw_offload: bool = True,
    seed: int = 0,
    dataplane: str = "scalar",
) -> NfvExperimentResult:
    """One arm of Fig. 14, independently runnable (see Fig. 13's twin)."""
    return run_nfv_experiment(
        lambda: router_napt_lb_chain(hw_offload=hw_offload),
        cache_director,
        "flow-director",
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        dataplane=dataplane,
    )


def run_fig14(
    offered_gbps: float = 100.0,
    n_bulk_packets: int = 300_000,
    micro_packets: int = 4000,
    runs: int = 3,
    hw_offload: bool = True,
    seed: int = 0,
    dataplane: str = "scalar",
) -> Dict[str, NfvExperimentResult]:
    """Stateful chain at 100 Gbps with FlowDirector steering."""
    return compare_cache_director(
        lambda: router_napt_lb_chain(hw_offload=hw_offload),
        steering_kind="flow-director",
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        dataplane=dataplane,
    )


def cdf_table(
    results: Dict[str, NfvExperimentResult], n_points: int = 11
) -> List[Tuple[float, float, float]]:
    """Fig. 14a data: (CDF, dpdk latency, cachedirector latency)."""
    quantiles = np.linspace(0.0, 1.0, n_points)
    base = np.quantile(results["dpdk"].latencies_us, quantiles)
    cd = np.quantile(results["cachedirector"].latencies_us, quantiles)
    return [(float(q), float(b), float(c)) for q, b, c in zip(quantiles, base, cd)]


def format_fig14(results: Dict[str, NfvExperimentResult]) -> str:
    """Render Fig. 14's CDF plus the improvement panel."""
    out = [
        format_comparison(
            results,
            "Figs. 1 & 14 — Router-NAPT-LB, mixed sizes @ 100 Gbps, "
            "FlowDirector (loopback excluded)",
        )
    ]
    out.append("CDF (Fig. 14a):  F(x) |   DPDK us |  +CD us")
    for q, base, cd in cdf_table(results):
        out.append(f"                 {q:>4.0%} | {base:>9.1f} | {cd:>8.1f}")
    return "\n".join(out)
