"""Fig. 8 — emulated KVS transactions per second (§3.1).

Single serving core; 2^24 64 B values; requests in 128 B TCP packets;
four configurations: {slice-aware, normal} × {Zipf(0.99), uniform};
three GET/SET mixes.  The paper reports slice-aware winning ~12 % on
skewed workloads and tying on uniform; see EXPERIMENTS.md for how the
capacity-vs-latency trade-off plays out in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.cachesim.machines import HASWELL_E5_2667V3, MachineSpec
from repro.core.slice_aware import SliceAwareContext
from repro.kvs.server import KvsServer
from repro.kvs.store import KvsStore
from repro.kvs.workload import GetSetMix, UniformKeys, ZipfKeys

#: Fig. 8's GET fractions.
PAPER_GET_FRACTIONS = (1.00, 0.95, 0.50)


@dataclass
class KvsFigureResult:
    """TPS (millions) per (distribution, placement, mix)."""

    tps: Dict[Tuple[str, str, str], float] = field(default_factory=dict)
    cycles: Dict[Tuple[str, str, str], float] = field(default_factory=dict)

    def delta_pct(self, distribution: str, mix_label: str) -> float:
        """Slice-aware gain over normal for one cell pair."""
        aware = self.tps[(distribution, "slice", mix_label)]
        normal = self.tps[(distribution, "normal", mix_label)]
        return (aware / normal - 1) * 100


def run_fig08(
    spec: MachineSpec = HASWELL_E5_2667V3,
    n_keys: int = 1 << 24,
    warmup_requests: int = 120_000,
    measured_requests: int = 20_000,
    get_fractions: Tuple[float, ...] = PAPER_GET_FRACTIONS,
    zipf_theta: float = 0.99,
    seed: int = 0,
) -> KvsFigureResult:
    """Run all Fig. 8 cells.

    Args:
        spec: machine model.
        n_keys: key-space size (paper: 2^24).
        warmup_requests: requests served before measuring (fills the
            LLC hot set — the paper measures a continuously loaded
            server).
        measured_requests: requests measured per mix.
        get_fractions: the GET/SET mixes.
        zipf_theta: skew of the Zipf distribution.
        seed: RNG seed.
    """
    result = KvsFigureResult()
    distributions = (
        ("skewed", ZipfKeys(n_keys, zipf_theta, seed=seed + 3)),
        ("uniform", UniformKeys(n_keys, seed=seed + 3)),
    )
    for dist_name, generator in distributions:
        warm_keys = generator.keys(warmup_requests, np.random.default_rng(seed + 9))
        for placement, slice_aware in (("slice", True), ("normal", False)):
            context = SliceAwareContext(spec, seed=seed + 2)
            store = KvsStore(context, core=0, n_keys=n_keys, slice_aware=slice_aware)
            server = KvsServer(context, store, core=0)
            server.run(
                warm_keys, np.ones(warmup_requests, dtype=bool), warmup=warmup_requests - 1
            )
            for get_fraction in get_fractions:
                mix = GetSetMix(get_fraction)
                keys = generator.keys(measured_requests, np.random.default_rng(seed + 11))
                ops = mix.operations(measured_requests, np.random.default_rng(seed + 12))
                run = server.run(keys, ops)
                key = (dist_name, placement, mix.label)
                result.tps[key] = run.tps_millions
                result.cycles[key] = run.cycles_per_request
    return result


def format_fig08(result: KvsFigureResult) -> str:
    """Render the Fig. 8 grouped bars as a table."""
    mixes = sorted({k[2] for k in result.tps}, reverse=True)
    out = ["Fig. 8 — average KVS TPS (millions), 1 core"]
    out.append("config            | " + " | ".join(f"{m:>9}" for m in mixes))
    for dist in ("skewed", "uniform"):
        for placement in ("slice", "normal"):
            row = [f"{placement}-{dist:<10}"]
            for mix in mixes:
                row.append(f"{result.tps[(dist, placement, mix)]:>9.2f}")
            out.append(" | ".join(row))
    for dist in ("skewed", "uniform"):
        deltas = ", ".join(
            f"{mix}: {result.delta_pct(dist, mix):+.1f}%" for mix in mixes
        )
        out.append(f"slice-aware gain ({dist}): {deltas}")
    skew_get = ("skewed", "slice", "100% GET")
    norm_get = ("skewed", "normal", "100% GET")
    if skew_get in result.cycles:
        out.append(
            f"cycles/request, skewed 100% GET: slice "
            f"{result.cycles[skew_get]:.0f} vs normal {result.cycles[norm_get]:.0f} "
            f"(paper: ~160 vs ~194)"
        )
    return "\n".join(out)
def fig08_to_dict(result: KvsFigureResult) -> dict:
    """JSON-ready form; tuple keys become ``dist/placement/mix``."""
    return {
        "tps_millions": {
            "/".join(key): float(v) for key, v in sorted(result.tps.items())
        },
        "cycles_per_request": {
            "/".join(key): float(v) for key, v in sorted(result.cycles.items())
        },
    }
