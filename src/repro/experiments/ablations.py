"""Ablations for the design choices the paper discusses (§5 fn., §8).

Each function isolates one knob:

* :func:`run_ddio_ways_ablation` — how the number of DDIO ways (the
  "10 % limit" footnote of §5) changes NFV service cost.
* :func:`run_prefetcher_ablation` — §8 "The impact of H/W
  prefetching": the streamer helps contiguous scans of *normal*
  allocations and cannot help scattered slice-aware ones.
* :func:`run_replacement_ablation` — LLC replacement (LRU vs
  SRRIP/BRRIP) under the KVS's thrash-heavy Zipf traffic.
* :func:`run_migration_experiment` — §8 "variability of hot data":
  static slice-aware placement vs monitored migration when the hot
  set drifts.
* :func:`run_value_size_ablation` — §8 "Dealing with data larger than
  64 B": scattered multi-line values keep the slice-local property.
* :func:`run_mtu_eviction_experiment` — §8 noisy-neighbour
  discussion: full-MTU DDIO traffic at line rate evicts enqueued
  headers from the LLC before the core reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cachesim.machines import HASWELL_E5_2667V3, build_hierarchy
from repro.cachesim.prefetch import StreamerPrefetcher
from repro.core.monitor import AccessMonitor, MigratingObjectStore
from repro.core.slice_aware import SliceAwareContext
from repro.dpdk.steering import RssSteering
from repro.kvs.server import KvsServer
from repro.kvs.store import KvsStore
from repro.kvs.workload import ZipfKeys
from repro.mem.address import CACHE_LINE
from repro.mem.slice_array import SliceLocalArray
from repro.net.chain import DutConfig, DutEnvironment, router_napt_lb_chain
from repro.net.trace import CampusTraceGenerator


# ----------------------------------------------------------------------
# DDIO ways
# ----------------------------------------------------------------------

def run_ddio_ways_ablation(
    ways_options: List[int] = (0, 2, 4, 8),
    micro_packets: int = 2000,
    seed: int = 0,
) -> Dict[int, float]:
    """Mean chain service cycles per packet vs number of DDIO ways.

    0 ways disables DDIO (pre-DDIO NICs: packets land in DRAM only).
    """
    generator = CampusTraceGenerator(seed=seed + 1)
    packets = generator.generate(micro_packets, rate_pps=4e6)
    rss = RssSteering(8)
    queues = [rss.queue_for(p.flow_key) for p in packets]
    results: Dict[int, float] = {}
    for ways in ways_options:
        config = DutConfig(
            cache_director=True,
            ddio_enabled=ways > 0,
            seed=seed,
        )
        env = DutEnvironment(config, router_napt_lb_chain)
        if ways > 0:
            env.hierarchy.llc.ddio_way_tuple = tuple(
                range(env.hierarchy.llc.n_ways - ways, env.hierarchy.llc.n_ways)
            )
        cycles = [c for c in env.service_cycles(packets, queues) if c is not None]
        results[ways] = float(np.mean(cycles))
    return results


def format_ddio_ablation(results: Dict[int, float]) -> str:
    """Render the DDIO-ways ablation."""
    out = ["Ablation — DDIO ways vs mean service cycles (Router-NAPT-LB)"]
    for ways in sorted(results):
        label = "disabled" if ways == 0 else f"{ways} ways"
        out.append(f"DDIO {label:<9}: {results[ways]:8.1f} cycles/packet")
    return "\n".join(out)


# ----------------------------------------------------------------------
# Prefetchers
# ----------------------------------------------------------------------

@dataclass
class PrefetcherAblationResult:
    """Cycles per access for scan patterns × placements × prefetching."""

    cycles: Dict[str, float] = field(default_factory=dict)

    def speedup(self, pattern: str, placement: str) -> float:
        """Prefetch-on speedup for one (pattern, placement) pair."""
        off = self.cycles[f"{pattern}/{placement}/off"]
        on = self.cycles[f"{pattern}/{placement}/on"]
        return (off - on) / off * 100


def run_prefetcher_ablation(
    n_lines: int = 16384,
    n_ops: int = 6000,
    seed: int = 0,
) -> PrefetcherAblationResult:
    """Sequential vs random scans, normal vs slice-aware, streamer
    on/off (§8)."""
    result = PrefetcherAblationResult()
    spec = HASWELL_E5_2667V3
    for prefetch_on in (False, True):
        prefetchers = (
            [StreamerPrefetcher(degree=4)] + [None] * 7 if prefetch_on else None
        )
        for placement in ("normal", "slice"):
            hierarchy = build_hierarchy(spec, prefetchers=prefetchers, seed=seed)
            context = SliceAwareContext(spec, hierarchy=hierarchy, seed=seed)
            if placement == "normal":
                buf = context.allocate_normal(n_lines * CACHE_LINE)
                addresses = [buf.base + i * CACHE_LINE for i in range(n_lines)]
            else:
                scattered = context.allocate_slice_aware(
                    n_lines * CACHE_LINE, core=0
                )
                addresses = [scattered.line_of(i) for i in range(n_lines)]
            for pattern in ("sequential", "random"):
                hierarchy.drop_all()
                if pattern == "sequential":
                    order = [i % n_lines for i in range(n_ops)]
                else:
                    order = np.random.default_rng(seed).integers(
                        0, n_lines, n_ops
                    )
                total = 0
                for i in order:
                    total += hierarchy.read(0, addresses[int(i)], 1)
                key = f"{pattern}/{placement}/{'on' if prefetch_on else 'off'}"
                result.cycles[key] = total / n_ops
    return result


def format_prefetcher_ablation(result: PrefetcherAblationResult) -> str:
    """Render the prefetcher ablation (§8's trade-off)."""
    out = ["Ablation — L2 streamer prefetcher vs allocation (cycles/access)"]
    out.append("pattern    | placement | prefetch off | prefetch on | speedup")
    for pattern in ("sequential", "random"):
        for placement in ("normal", "slice"):
            off = result.cycles[f"{pattern}/{placement}/off"]
            on = result.cycles[f"{pattern}/{placement}/on"]
            out.append(
                f"{pattern:<10} | {placement:<9} | {off:>12.1f} | {on:>11.1f} "
                f"| {result.speedup(pattern, placement):>+6.1f}%"
            )
    return "\n".join(out)


# ----------------------------------------------------------------------
# LLC replacement policy
# ----------------------------------------------------------------------

def run_replacement_ablation(
    policies: List[str] = ("lru", "srrip", "brrip"),
    hot_lines: int = 8192,
    scan_lines: int = 1 << 18,
    rounds: int = 8,
    scan_per_hot: int = 8,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Scan resistance of LLC replacement policies.

    A slice-aware hot set (half a slice) is re-referenced while a
    one-touch scan streams through the same slice — the shape of DDIO
    packet churn and Zipf tails.  Under true LRU the scan flushes the
    hot set; RRIP-family policies (what Intel actually ships) keep it.

    Returns ``{policy: {"hot_cycles": ..., "hot_llc_hit_rate": ...}}``.
    """
    results: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        hierarchy = build_hierarchy(HASWELL_E5_2667V3, policy=policy, seed=seed)
        context = SliceAwareContext(HASWELL_E5_2667V3, hierarchy=hierarchy, seed=seed)
        target = context.preferred_slice(0)
        hot = context.allocate_slice_aware(
            hot_lines * CACHE_LINE, slice_indices=[target]
        )
        block = context.hash.n_slices
        scan_page = context.address_space.mmap_auto(scan_lines * block * CACHE_LINE)
        scan = SliceLocalArray(
            base_phys=scan_page.phys,
            n_lines=scan_lines,
            slice_hash=context.hash,
            target_slice=target,
            block_lines=block,
        )
        hot_addresses = [hot.line_of(i) for i in range(hot_lines)]
        rng = np.random.default_rng(seed)
        # Establish the hot set.
        for address in hot_addresses:
            hierarchy.read(0, address, 1)
        scan_cursor = 0
        hot_cycles = 0
        hot_accesses = 0
        hits_before = hierarchy.stats.llc_hits
        lookups_before = hierarchy.stats.llc_hits + hierarchy.stats.llc_misses
        for _ in range(rounds):
            for i in rng.integers(0, hot_lines, hot_lines // 4):
                hot_cycles += hierarchy.read(0, hot_addresses[int(i)], 1)
                hot_accesses += 1
                for _ in range(scan_per_hot):
                    hierarchy.read(0, scan.line_address(scan_cursor % scan_lines), 1)
                    scan_cursor += 1
        results[policy] = {
            "hot_cycles": hot_cycles / hot_accesses,
            "llc_hit_rate": (
                (hierarchy.stats.llc_hits - hits_before)
                / max(
                    1,
                    hierarchy.stats.llc_hits
                    + hierarchy.stats.llc_misses
                    - lookups_before,
                )
            ),
        }
    return results


def format_replacement_ablation(results: Dict[str, Dict[str, float]]) -> str:
    """Render the replacement ablation."""
    out = [
        "Ablation — LLC replacement vs scan churn "
        "(slice-aware hot set + one-touch scan)"
    ]
    out.append("policy | hot cycles/access | LLC hit rate")
    for policy, row in results.items():
        out.append(
            f"{policy:<6} | {row['hot_cycles']:>17.1f} | {row['llc_hit_rate']:>11.1%}"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
# Hot-set drift and migration
# ----------------------------------------------------------------------

@dataclass
class MigrationExperimentResult:
    """Cycles per access for the three placement strategies."""

    normal: float
    static_slice: float
    migrating: float
    promotions: int

    def migration_gain_pct(self) -> float:
        """Gain of migration over static slice-aware placement."""
        return (self.static_slice - self.migrating) / self.static_slice * 100


def run_migration_experiment(
    n_keys: int = 1 << 17,
    hot_keys: int = 6144,
    phases: int = 3,
    ops_per_phase: int = 100_000,
    rebalance_every: Optional[int] = None,
    seed: int = 0,
) -> MigrationExperimentResult:
    """Drifting hot set: normal vs static slice-aware vs migrating.

    In each phase a different contiguous band of *hot_keys* keys takes
    90 % of accesses.  Static slice-aware placement promotes only the
    phase-0 band; the migrating store follows the drift.

    Sizing matters (§8): the hot band must exceed the L2 (so slice
    placement is felt at all) and the phases must be long enough to
    amortise the copy cost of re-promoting the band — migration is
    *not* free, and with the defaults each phase pays for its
    promotions several times over.
    """
    spec = HASWELL_E5_2667V3
    if rebalance_every is None:
        # Epochs long enough for each hot key to be seen several
        # times, so the promotion threshold separates hot from cold.
        rebalance_every = 3 * hot_keys
    rng = np.random.default_rng(seed)
    # Build the access stream: per phase, 90 % from that phase's band.
    streams: List[np.ndarray] = []
    for phase in range(phases):
        base = (phase * hot_keys * 7) % (n_keys - hot_keys)
        hot = rng.integers(base, base + hot_keys, size=ops_per_phase)
        cold = rng.integers(0, n_keys, size=ops_per_phase)
        choose_hot = rng.random(ops_per_phase) < 0.9
        streams.append(np.where(choose_hot, hot, cold))
    stream = np.concatenate(streams)

    def run(mode: str):
        context = SliceAwareContext(spec, seed=seed)
        store = MigratingObjectStore(
            context,
            core=0,
            n_keys=n_keys,
            fast_lines=hot_keys,
            monitor=AccessMonitor(decay=0.5, epoch_accesses=rebalance_every),
        )
        if mode in ("static", "migrating"):
            # Both start with the phase-0 hot band promoted; only the
            # migrating store follows the drift afterwards.
            for key in range(hot_keys):
                store.promote(key)
        total = 0
        for index, key in enumerate(stream):
            total += store.access(int(key))
            if mode == "migrating" and (index + 1) % rebalance_every == 0:
                store.rebalance(min_count=2.0)
        return total / stream.size, store.stats.promotions

    normal_cost, _ = run("normal")
    static_cost, _ = run("static")
    migrating_cost, promotions = run("migrating")
    return MigrationExperimentResult(
        normal=normal_cost,
        static_slice=static_cost,
        migrating=migrating_cost,
        promotions=promotions,
    )


def format_migration_experiment(result: MigrationExperimentResult) -> str:
    """Render the migration experiment."""
    return "\n".join(
        [
            "Extension — hot-set drift (§8): cycles per access",
            f"normal allocation      : {result.normal:7.1f}",
            f"static slice-aware     : {result.static_slice:7.1f}",
            f"monitored migration    : {result.migrating:7.1f} "
            f"({result.promotions} promotions)",
            f"migration vs static    : {result.migration_gain_pct():+5.1f}%",
        ]
    )


# ----------------------------------------------------------------------
# Value sizes beyond 64 B
# ----------------------------------------------------------------------

def run_value_size_ablation(
    value_sizes: List[int] = (64, 128, 256),
    n_keys: int = 1 << 18,
    warmup: int = 25_000,
    measured: int = 6_000,
    seed: int = 0,
) -> Dict[int, Dict[str, float]]:
    """KVS TPS for multi-line values, slice-aware vs normal (§8)."""
    results: Dict[int, Dict[str, float]] = {}
    zipf = ZipfKeys(n_keys, 0.99, seed=seed + 3)
    warm_keys = zipf.keys(warmup, np.random.default_rng(seed + 9))
    keys = zipf.keys(measured, np.random.default_rng(seed + 11))
    for value_size in value_sizes:
        results[value_size] = {}
        for placement, aware in (("slice", True), ("normal", False)):
            context = SliceAwareContext(HASWELL_E5_2667V3, seed=seed)
            store = KvsStore(
                context, core=0, n_keys=n_keys, slice_aware=aware,
                value_size=value_size,
            )
            server = KvsServer(context, store, core=0)
            server.run(warm_keys, np.ones(warmup, bool), warmup=warmup - 1)
            run = server.run(keys, np.ones(measured, bool))
            results[value_size][placement] = run.tps_millions
    return results


def format_value_size_ablation(results: Dict[int, Dict[str, float]]) -> str:
    """Render the value-size ablation."""
    out = ["Extension — multi-line values (§8): KVS MTPS"]
    out.append("value size | slice-aware | normal | slice gain")
    for size, row in sorted(results.items()):
        gain = (row["slice"] / row["normal"] - 1) * 100
        out.append(
            f"{size:>7} B  | {row['slice']:>11.2f} | {row['normal']:>6.2f} | {gain:>+8.1f}%"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
# MTU-sized packets and DDIO eviction (§8)
# ----------------------------------------------------------------------

@dataclass
class MtuEvictionResult:
    """Header residency under full-MTU DDIO churn."""

    headers_checked: int
    still_in_llc: int
    mean_read_cycles: float

    @property
    def eviction_fraction(self) -> float:
        """Fraction of headers evicted before the core read them."""
        return 1.0 - self.still_in_llc / max(1, self.headers_checked)


def run_mtu_eviction_experiment(
    queue_depth: int = 512,
    packet_size: int = 1500,
    seed: int = 0,
) -> MtuEvictionResult:
    """§8: deliver a deep backlog of 1500 B frames, then check how many
    of the *oldest* packets' headers are still LLC-resident when the
    core finally polls them.

    Each MTU frame DMAs ~24 lines into the 2 DDIO ways; by the time a
    deep queue drains, early headers have been evicted and the core
    pays DRAM latency — the effect the paper warns about.
    """
    env = DutEnvironment(
        DutConfig(cache_director=True, n_mbufs=queue_depth + 64, rx_ring_size=1024, seed=seed),
        router_napt_lb_chain,
    )
    generator = CampusTraceGenerator(seed=seed + 1)
    packets = generator.generate(queue_depth, rate_pps=4e6)
    for p in packets:
        p.size = packet_size
        env.nic.deliver(p, packet_size, queue=0)
    # The core now polls the backlog; check the oldest headers first.
    ring = env.nic.rx_rings[0]
    llc = env.hierarchy.llc
    checked = 0
    resident = 0
    total_cycles = 0
    while True:
        mbuf = ring.dequeue()
        if mbuf is None:
            break
        header_line = mbuf.data_phys & ~(CACHE_LINE - 1)
        checked += 1
        if llc.contains(header_line):
            resident += 1
        total_cycles += env.hierarchy.read(0, header_line, 1)
        env.nic.transmit(mbuf)
    return MtuEvictionResult(
        headers_checked=checked,
        still_in_llc=resident,
        mean_read_cycles=total_cycles / max(1, checked),
    )


def format_mtu_eviction(result: MtuEvictionResult) -> str:
    """Render the MTU eviction experiment."""
    return "\n".join(
        [
            "Extension — 1500 B frames vs DDIO eviction (§8)",
            f"headers checked        : {result.headers_checked}",
            f"still in LLC at poll   : {result.still_in_llc} "
            f"({1 - result.eviction_fraction:.1%})",
            f"evicted before poll    : {result.eviction_fraction:.1%}",
            f"mean header read cost  : {result.mean_read_cycles:.1f} cycles",
        ]
    )


# ----------------------------------------------------------------------
# RX placement strategies: dynamic headroom vs sorted pools (§4.2)
# ----------------------------------------------------------------------

@dataclass
class RxStrategyResult:
    """One RX buffer-placement strategy's outcome."""

    match_fraction: float      # headers landing in the polling core's slice
    fallback_fraction: float   # allocations that lost the placement
    data_room_bytes: int       # per-mbuf provisioning


def run_rx_strategy_comparison(
    n_packets: int = 8000,
    n_mbufs: int = 1024,
    seed: int = 0,
) -> Dict[str, RxStrategyResult]:
    """Compare the paper's two CacheDirector designs and the baseline.

    * ``fixed`` — stock DPDK: fixed 128 B headroom; headers land in
      arbitrary slices (1/n_slices match by chance).
    * ``dynamic-headroom`` — the paper's driver-level CacheDirector:
      per-packet headroom from the precomputed udata64; every header
      matched, at the cost of worst-case data-room provisioning.
    * ``sorted-pools`` — the paper's application-level alternative:
      fixed headroom, but each core draws buffers from a pool sorted
      by slice mapping; matched unless a pool runs dry (fallback).
    """
    from repro.core.cache_director import CacheDirector
    from repro.dpdk.mbuf import DEFAULT_DATAROOM, DEFAULT_HEADROOM
    from repro.dpdk.mempool import Mempool
    from repro.dpdk.sorted_pools import PerCorePools, sort_mbufs_by_slice
    from repro.mem.address import PAGE_1G
    from repro.mem.allocator import ContiguousAllocator
    from repro.mem.hugepage import PhysicalAddressSpace

    spec = HASWELL_E5_2667V3
    slice_hash = spec.hash_factory()
    core_to_slice = list(range(spec.n_cores))
    rng = np.random.default_rng(seed)
    # Skewed queue choice (some cores poll more traffic), stressing the
    # per-core pools.
    queue_weights = np.array([4.0, 3.0, 2.0, 2.0, 1.0, 1.0, 0.5, 0.5])
    queue_weights /= queue_weights.sum()
    queues = rng.choice(spec.n_cores, size=n_packets, p=queue_weights)

    results: Dict[str, RxStrategyResult] = {}

    def fresh_pool(data_room: int) -> Mempool:
        space = PhysicalAddressSpace(seed=seed)
        allocator = ContiguousAllocator(space.mmap_hugepage(PAGE_1G))
        return Mempool("rx", allocator, n_mbufs=n_mbufs, data_room=data_room)

    # Baseline: fixed headroom.
    pool = fresh_pool(DEFAULT_DATAROOM)
    matches = 0
    for queue in queues:
        mbuf = pool.alloc()
        if slice_hash.slice_of(mbuf.data_phys) == core_to_slice[int(queue)]:
            matches += 1
        pool.free(mbuf)
    results["fixed"] = RxStrategyResult(
        match_fraction=matches / n_packets,
        fallback_fraction=0.0,
        data_room_bytes=DEFAULT_DATAROOM,
    )

    # Driver-level CacheDirector: dynamic headroom.
    director = CacheDirector(slice_hash, core_to_slice)
    extra = director.max_headroom - DEFAULT_HEADROOM
    pool = fresh_pool(DEFAULT_DATAROOM + extra)
    for mbuf in pool.mbufs:
        mbuf.udata64 = director.precompute_udata(mbuf.buf_phys)
    matches = 0
    for queue in queues:
        mbuf = pool.alloc()
        mbuf.set_headroom(director.headroom_for_core(mbuf.udata64, int(queue)))
        if slice_hash.slice_of(mbuf.data_phys) == core_to_slice[int(queue)]:
            matches += 1
        pool.free(mbuf)
    results["dynamic-headroom"] = RxStrategyResult(
        match_fraction=matches / n_packets,
        fallback_fraction=0.0,
        data_room_bytes=DEFAULT_DATAROOM + extra,
    )

    # Application-level sorting: per-core pools, fixed headroom.
    pool = fresh_pool(DEFAULT_DATAROOM)
    groups = sort_mbufs_by_slice(pool, slice_hash)
    pools = PerCorePools(core_to_slice=core_to_slice, groups=groups)
    matches = 0
    for queue in queues:
        mbuf = pools.alloc(int(queue))
        if slice_hash.slice_of(mbuf.data_phys) == core_to_slice[int(queue)]:
            matches += 1
        pools.free(mbuf, slice_hash)
    results["sorted-pools"] = RxStrategyResult(
        match_fraction=matches / n_packets,
        fallback_fraction=pools.fallback_allocations / n_packets,
        data_room_bytes=DEFAULT_DATAROOM,
    )
    return results


def format_rx_strategies(results: Dict[str, RxStrategyResult]) -> str:
    """Render the RX-strategy comparison."""
    out = ["Ablation — RX header-placement strategies (§4.2)"]
    out.append("strategy         | header match | fallback | data room/mbuf")
    for name, r in results.items():
        out.append(
            f"{name:<16} | {r.match_fraction:>11.1%} | {r.fallback_fraction:>8.1%} "
            f"| {r.data_room_bytes:>6} B"
        )
    return "\n".join(out)
# ----------------------------------------------------------------------
# JSON serializers (lab artifacts and CLI --json)
# ----------------------------------------------------------------------

def ddio_ablation_to_dict(results: Dict[int, float]) -> dict:
    """JSON-ready form of the DDIO-ways ablation."""
    return {
        "cycles_per_packet": {
            str(ways): float(c) for ways, c in sorted(results.items())
        }
    }


def prefetcher_ablation_to_dict(result: PrefetcherAblationResult) -> dict:
    """JSON-ready form of the prefetcher ablation."""
    return {
        "cycles": {k: float(v) for k, v in sorted(result.cycles.items())},
        "speedup_pct": {
            f"{pattern}/{placement}": float(result.speedup(pattern, placement))
            for pattern in ("sequential", "random")
            for placement in ("normal", "slice")
        },
    }


def replacement_ablation_to_dict(
    results: Dict[str, Dict[str, float]]
) -> dict:
    """JSON-ready form of the replacement-policy ablation."""
    return {
        policy: {k: float(v) for k, v in row.items()}
        for policy, row in results.items()
    }


def migration_experiment_to_dict(result: MigrationExperimentResult) -> dict:
    """JSON-ready form of the hot-set migration experiment."""
    return {
        "normal": float(result.normal),
        "static_slice": float(result.static_slice),
        "migrating": float(result.migrating),
        "promotions": int(result.promotions),
        "migration_gain_pct": float(result.migration_gain_pct()),
    }


def value_size_ablation_to_dict(
    results: Dict[int, Dict[str, float]]
) -> dict:
    """JSON-ready form of the multi-line-value ablation."""
    return {
        str(size): {k: float(v) for k, v in row.items()}
        for size, row in sorted(results.items())
    }


def mtu_eviction_to_dict(result: MtuEvictionResult) -> dict:
    """JSON-ready form of the MTU/DDIO eviction experiment."""
    return {
        "headers_checked": int(result.headers_checked),
        "still_in_llc": int(result.still_in_llc),
        "mean_read_cycles": float(result.mean_read_cycles),
        "eviction_fraction": float(result.eviction_fraction),
    }


def rx_strategies_to_dict(results: Dict[str, RxStrategyResult]) -> dict:
    """JSON-ready form of the RX placement-strategy comparison."""
    return {
        name: {
            "match_fraction": float(r.match_fraction),
            "fallback_fraction": float(r.fallback_fraction),
            "data_room_bytes": int(r.data_room_bytes),
        }
        for name, r in results.items()
    }
