"""Chaos experiments: tail latency per fault class, degradation knee.

Two experiments exercise the fault-injection layer end to end:

* ``chaos_tail`` — the Fig. 13/14-style DPDK vs CacheDirector
  comparison, once per fault class.  The ``none`` class runs with an
  all-zero plan and therefore reproduces the fault-free golden numbers
  exactly; the others show how injected wire loss, corruption, mempool
  pressure and NF crashes move the latency CDF and goodput, and how
  the resilience layer (backpressure, FCS discard, supervision)
  accounts for every lost packet.

* ``degradation_knee`` — a Fig. 15-style sweep, but over *fault
  intensity* at fixed offered load instead of over load: the same
  plan's probabilities scale from 0 (fault-free) upward.  Thanks to
  the fault streams' nested sampling (see ``repro.faults.streams``)
  the delivered goodput is monotone non-increasing in intensity.

Every run's fault plans are part of the result payload, so a persisted
artifact replays bit-identically from its own JSON (``plans``
parameter / ``repro chaos replay``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.nfv_common import (
    NfvExperimentResult,
    merge_arms,
    nfv_result_to_dict,
    run_nfv_experiment,
)
from repro.faults.plan import FaultPlan, plan_for_class, resolve_plan
from repro.net.chain import router_napt_lb_chain, simple_forwarding_chain

#: Fault classes the tail experiment covers by default.
DEFAULT_TAIL_CLASSES = [
    "none",
    "nic-drop",
    "nic-corrupt",
    "mempool",
    "nf-crash",
    "mixed",
]

#: Intensities the degradation sweep covers by default (0 = fault-free).
DEFAULT_INTENSITIES = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]

#: Mempool watermarks (low, high) the chaos DuT runs with: the NIC
#: sheds load once 7/8 of the default 4096-mbuf pool is in flight.
DEFAULT_WATERMARKS = (3072, 3584)

#: Offset separating fault-plan seeds from the experiment seed stream.
FAULT_SEED_OFFSET = 7_000


def _chain_and_steering(chain: str):
    """Map a chain name to its (factory, steering) pair."""
    if chain == "forwarding":
        return simple_forwarding_chain, "rss"
    if chain == "stateful":
        return lambda: router_napt_lb_chain(hw_offload=True), "flow-director"
    raise ValueError(
        f"unknown chain {chain!r}; choose 'forwarding' or 'stateful'"
    )


def _class_plan(
    fault_class: str,
    fault_seed: int,
    intensity: float,
    plans: Optional[Mapping[str, Mapping[str, Any]]],
    key: Optional[str] = None,
) -> FaultPlan:
    """The plan for one task: a replay override wins over generation."""
    if plans is not None:
        lookup = key if key is not None else fault_class
        if lookup in plans:
            return resolve_plan(plans[lookup])
    return plan_for_class(fault_class, seed=fault_seed, intensity=intensity)


# ----------------------------------------------------------------------
# chaos_tail
# ----------------------------------------------------------------------

@dataclass
class ChaosTailResult:
    """Per-fault-class DPDK vs CacheDirector outcomes plus the plans."""

    chain: str
    classes: List[str]
    intensity: float
    plans: Dict[str, Dict[str, Any]]
    results: Dict[str, Dict[str, NfvExperimentResult]]


def run_chaos_tail_arm(
    fault_class: str,
    cache_director: bool,
    chain: str = "forwarding",
    offered_gbps: float = 100.0,
    n_bulk_packets: int = 150_000,
    micro_packets: int = 2500,
    runs: int = 2,
    seed: int = 0,
    engine: str = "fast",
    intensity: float = 1.0,
    watermarks: Optional[Tuple[int, int]] = DEFAULT_WATERMARKS,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> NfvExperimentResult:
    """One (fault class, arm) cell, independently runnable.

    The fault seed is derived from the experiment seed, so the whole
    matrix is reproducible from one number; passing ``plans`` (the
    persisted ``{class: plan_dict}`` map from an earlier artifact)
    replays those plans verbatim instead.
    """
    chain_factory, steering = _chain_and_steering(chain)
    plan = _class_plan(fault_class, seed + FAULT_SEED_OFFSET, intensity, plans)
    return run_nfv_experiment(
        chain_factory,
        cache_director,
        steering,
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        engine=engine,
        fault_plan=plan,
        watermarks=watermarks,
    )


def run_chaos_tail(
    chain: str = "forwarding",
    classes: Optional[Sequence[str]] = None,
    offered_gbps: float = 100.0,
    n_bulk_packets: int = 150_000,
    micro_packets: int = 2500,
    runs: int = 2,
    seed: int = 0,
    engine: str = "fast",
    intensity: float = 1.0,
    watermarks: Optional[Tuple[int, int]] = DEFAULT_WATERMARKS,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> ChaosTailResult:
    """Tail-latency comparison across fault classes."""
    class_list = list(classes) if classes is not None else list(DEFAULT_TAIL_CLASSES)
    used_plans: Dict[str, Dict[str, Any]] = {}
    results: Dict[str, Dict[str, NfvExperimentResult]] = {}
    for fault_class in class_list:
        plan = _class_plan(
            fault_class, seed + FAULT_SEED_OFFSET, intensity, plans
        )
        used_plans[fault_class] = plan.to_dict()
        arms = [
            run_chaos_tail_arm(
                fault_class,
                cache_director,
                chain=chain,
                offered_gbps=offered_gbps,
                n_bulk_packets=n_bulk_packets,
                micro_packets=micro_packets,
                runs=runs,
                seed=seed,
                engine=engine,
                intensity=intensity,
                watermarks=watermarks,
                plans={fault_class: plan.to_dict()},
            )
            for cache_director in (False, True)
        ]
        results[fault_class] = merge_arms(arms)
    return ChaosTailResult(
        chain=chain,
        classes=class_list,
        intensity=intensity,
        plans=used_plans,
        results=results,
    )


def assemble_chaos_tail(
    params: Mapping[str, Any], arm_results: Sequence[NfvExperimentResult]
) -> ChaosTailResult:
    """Reassemble :func:`run_chaos_tail` from its fanned-out cells.

    ``arm_results`` must be ordered like the lab split generates them:
    for each class in order, the DPDK arm then the CacheDirector arm.
    """
    class_list = list(params.get("classes") or DEFAULT_TAIL_CLASSES)
    if len(arm_results) != 2 * len(class_list):
        raise ValueError(
            f"expected {2 * len(class_list)} arm results, got {len(arm_results)}"
        )
    seed = int(params.get("seed", 0))
    intensity = float(params.get("intensity", 1.0))
    plans = params.get("plans")
    used_plans = {
        cls: _class_plan(
            cls, seed + FAULT_SEED_OFFSET, intensity, plans
        ).to_dict()
        for cls in class_list
    }
    results = {
        cls: merge_arms(list(arm_results[2 * i : 2 * i + 2]))
        for i, cls in enumerate(class_list)
    }
    return ChaosTailResult(
        chain=str(params.get("chain", "forwarding")),
        classes=class_list,
        intensity=intensity,
        plans=used_plans,
        results=results,
    )


def chaos_tail_to_dict(result: ChaosTailResult) -> Dict[str, Any]:
    """JSON-ready form (the persisted chaos artifact)."""
    payload: Dict[str, Any] = {
        "chain": result.chain,
        "classes": list(result.classes),
        "intensity": result.intensity,
        "plans": result.plans,
        "results": {},
    }
    for cls, arms in result.results.items():
        base = arms["dpdk"]
        cd = arms["cachedirector"]
        payload["results"][cls] = {
            "dpdk": nfv_result_to_dict(base),
            "cachedirector": nfv_result_to_dict(cd),
            "improvement": cd.summary.improvement_over(base.summary),
        }
    return payload


def format_chaos_tail(result: ChaosTailResult) -> str:
    """Render the per-class tail/goodput table."""
    out = [
        f"Chaos tail — {result.chain} chain, intensity {result.intensity:g} "
        "(loopback excluded)"
    ]
    out.append(
        "class       |  DPDK p99 |   +CD p99 | DPDK good | drops DPDK"
    )
    for cls in result.classes:
        arms = result.results[cls]
        base, cd = arms["dpdk"], arms["cachedirector"]
        goodput = (
            base.goodput_gbps
            if base.fault_counters is not None
            else base.achieved_gbps
        )
        out.append(
            f"{cls:<11} | {base.summary[99]:>7.1f}us | {cd.summary[99]:>7.1f}us "
            f"| {goodput:>6.2f}Gbp | {base.drop_fraction:>9.2%}"
        )
    injected = {
        cls: arms["dpdk"].fault_counters
        for cls, arms in result.results.items()
        if arms["dpdk"].fault_counters
    }
    for cls, counters in injected.items():
        interesting = {
            k: v
            for k, v in counters.items()
            if "injected" in k or "restart" in k or "crash" in k
        }
        if interesting:
            out.append(f"  {cls}: {interesting}")
    return "\n".join(out)


# ----------------------------------------------------------------------
# degradation_knee
# ----------------------------------------------------------------------

@dataclass
class DegradationPoint:
    """One (arm, intensity) sweep point."""

    intensity: float
    goodput_gbps: float
    achieved_gbps: float
    offered_gbps: float
    p99_us: float
    drop_fraction: float
    fault_counters: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        payload: Dict[str, Any] = {
            "intensity": self.intensity,
            "goodput_gbps": self.goodput_gbps,
            "achieved_gbps": self.achieved_gbps,
            "offered_gbps": self.offered_gbps,
            "p99_us": self.p99_us,
            "drop_fraction": self.drop_fraction,
        }
        if self.fault_counters is not None:
            payload["fault_counters"] = self.fault_counters
        return payload


@dataclass
class DegradationKneeResult:
    """Goodput/tail-vs-intensity curves for both arms."""

    fault_class: str
    chain: str
    offered_gbps: float
    intensities: List[float]
    plans: Dict[str, Dict[str, Any]]
    dpdk: List[DegradationPoint] = field(default_factory=list)
    cachedirector: List[DegradationPoint] = field(default_factory=list)


def run_degradation_point(
    cache_director: bool,
    intensity: float,
    fault_class: str = "mixed",
    chain: str = "stateful",
    offered_gbps: float = 40.0,
    n_bulk_packets: int = 60_000,
    micro_packets: int = 1500,
    runs: int = 1,
    seed: int = 0,
    engine: str = "fast",
    watermarks: Optional[Tuple[int, int]] = DEFAULT_WATERMARKS,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> DegradationPoint:
    """One independently-runnable sweep point.

    A replay ``plans`` map is keyed by the canonical intensity string
    (``f"{intensity:g}"``).
    """
    chain_factory, steering = _chain_and_steering(chain)
    plan = _class_plan(
        fault_class,
        seed + FAULT_SEED_OFFSET,
        intensity,
        plans,
        key=f"{intensity:g}",
    )
    result = run_nfv_experiment(
        chain_factory,
        cache_director,
        steering,
        offered_gbps=offered_gbps,
        n_bulk_packets=n_bulk_packets,
        micro_packets=micro_packets,
        runs=runs,
        seed=seed,
        engine=engine,
        fault_plan=plan,
        watermarks=watermarks,
    )
    goodput = (
        result.goodput_gbps
        if result.fault_counters is not None
        else result.achieved_gbps
    )
    return DegradationPoint(
        intensity=intensity,
        goodput_gbps=goodput,
        achieved_gbps=result.achieved_gbps,
        offered_gbps=result.offered_gbps,
        p99_us=result.summary[99],
        drop_fraction=result.drop_fraction,
        fault_counters=result.fault_counters,
    )


def run_degradation_knee(
    fault_class: str = "mixed",
    chain: str = "stateful",
    offered_gbps: float = 40.0,
    intensities: Optional[Sequence[float]] = None,
    n_bulk_packets: int = 60_000,
    micro_packets: int = 1500,
    runs: int = 1,
    seed: int = 0,
    engine: str = "fast",
    watermarks: Optional[Tuple[int, int]] = DEFAULT_WATERMARKS,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> DegradationKneeResult:
    """Sweep fault intensity at fixed load; goodput knees downward."""
    grid = (
        [float(v) for v in intensities]
        if intensities is not None
        else list(DEFAULT_INTENSITIES)
    )
    points: Dict[bool, List[DegradationPoint]] = {False: [], True: []}
    used_plans: Dict[str, Dict[str, Any]] = {}
    for intensity in grid:
        used_plans[f"{intensity:g}"] = _class_plan(
            fault_class,
            seed + FAULT_SEED_OFFSET,
            intensity,
            plans,
            key=f"{intensity:g}",
        ).to_dict()
        for cache_director in (False, True):
            points[cache_director].append(
                run_degradation_point(
                    cache_director,
                    intensity,
                    fault_class=fault_class,
                    chain=chain,
                    offered_gbps=offered_gbps,
                    n_bulk_packets=n_bulk_packets,
                    micro_packets=micro_packets,
                    runs=runs,
                    seed=seed,
                    engine=engine,
                    watermarks=watermarks,
                    plans=plans,
                )
            )
    return DegradationKneeResult(
        fault_class=fault_class,
        chain=chain,
        offered_gbps=offered_gbps,
        intensities=grid,
        plans=used_plans,
        dpdk=points[False],
        cachedirector=points[True],
    )


def assemble_degradation_knee(
    params: Mapping[str, Any], point_results: Sequence[DegradationPoint]
) -> DegradationKneeResult:
    """Reassemble :func:`run_degradation_knee` from fanned-out points.

    ``point_results`` must be ordered like the lab split generates
    them: for each intensity in order, DPDK then CacheDirector.
    """
    grid = [
        float(v)
        for v in (params.get("intensities") or DEFAULT_INTENSITIES)
    ]
    if len(point_results) != 2 * len(grid):
        raise ValueError(
            f"expected {2 * len(grid)} points, got {len(point_results)}"
        )
    fault_class = str(params.get("fault_class", "mixed"))
    seed = int(params.get("seed", 0))
    plans = params.get("plans")
    used_plans = {
        f"{intensity:g}": _class_plan(
            fault_class,
            seed + FAULT_SEED_OFFSET,
            intensity,
            plans,
            key=f"{intensity:g}",
        ).to_dict()
        for intensity in grid
    }
    return DegradationKneeResult(
        fault_class=fault_class,
        chain=str(params.get("chain", "stateful")),
        offered_gbps=float(params.get("offered_gbps", 40.0)),
        intensities=grid,
        plans=used_plans,
        dpdk=[point_results[2 * i] for i in range(len(grid))],
        cachedirector=[point_results[2 * i + 1] for i in range(len(grid))],
    )


def degradation_knee_to_dict(result: DegradationKneeResult) -> Dict[str, Any]:
    """JSON-ready form (the persisted knee artifact)."""
    return {
        "fault_class": result.fault_class,
        "chain": result.chain,
        "offered_gbps": result.offered_gbps,
        "intensities": list(result.intensities),
        "plans": result.plans,
        "dpdk": [p.to_dict() for p in result.dpdk],
        "cachedirector": [p.to_dict() for p in result.cachedirector],
    }


def format_degradation_knee(result: DegradationKneeResult) -> str:
    """Render the goodput/tail degradation table."""
    out = [
        f"Degradation knee — {result.fault_class} faults on the "
        f"{result.chain} chain @ {result.offered_gbps:g} Gbps offered"
    ]
    out.append(
        "intensity | DPDK goodput |  +CD goodput |  DPDK p99 |   +CD p99"
    )
    for i, intensity in enumerate(result.intensities):
        base, cd = result.dpdk[i], result.cachedirector[i]
        out.append(
            f"{intensity:>9.2f} | {base.goodput_gbps:>9.2f}Gbp "
            f"| {cd.goodput_gbps:>9.2f}Gbp "
            f"| {base.p99_us:>7.1f}us | {cd.p99_us:>7.1f}us"
        )
    return "\n".join(out)
