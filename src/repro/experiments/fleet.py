"""Fleet experiments: goodput/tails at scale, failover under chaos.

Two experiments drive :mod:`repro.fleet` through the lab runner:

* ``fleet-scale`` — a grid over server count × tenant count at fixed
  offered load: fleet goodput and p50/p99/p99.9 tail latency as the
  cluster and its tenancy degree grow.  Each cell is an independent
  task (split-parallel, bit-identical to serial).

* ``fleet-failover`` — a fault-intensity sweep at one fleet shape:
  the chaos clock kills whole servers (site ``fleet.server_kill``)
  at epoch boundaries, killed servers leave the consistent-hash ring,
  and the orphaned keys re-shard to ring successors whose caches are
  cold for them.  Each point reports tail inflation (steady vs peak
  windowed p99) and how many epochs the fleet needs to re-converge.

Every failover point's fault plan is part of the persisted payload,
so an artifact replays bit-identically from its own JSON (``plans``
parameter / ``repro fleet replay``) — and the zero-intensity point is
bit-identical to the fault-free ``fleet-scale`` cell of the same
shape (an all-zero plan draws nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.faults.plan import FaultPlan, plan_for_class, resolve_plan
from repro.fleet.cluster import FleetRunResult, run_fleet_cell

#: Server/tenant grids the scale experiment covers by default.
DEFAULT_SERVER_COUNTS = [2, 4, 8]
DEFAULT_TENANT_COUNTS = [2, 4, 8]

#: Intensities the failover sweep covers by default (0 = fault-free).
DEFAULT_FAILOVER_INTENSITIES = [0.0, 0.5, 1.0, 2.0, 4.0]

#: Offset separating fleet fault-plan seeds from the experiment seed
#: stream (and from the chaos experiments' 7_000 offset).
FLEET_FAULT_SEED_OFFSET = 9_000

#: Windowed p99 must fall back within this factor of the steady-state
#: level for the fleet to count as recovered after a kill.
RECOVERY_FACTOR = 1.5


def _failover_plan(
    intensity: float,
    fault_seed: int,
    plans: Optional[Mapping[str, Mapping[str, Any]]],
) -> FaultPlan:
    """The plan for one sweep point: a replay override wins."""
    key = f"{intensity:g}"
    if plans is not None and key in plans:
        return resolve_plan(plans[key])
    return plan_for_class("server-kill", seed=fault_seed, intensity=intensity)


# ----------------------------------------------------------------------
# fleet-scale
# ----------------------------------------------------------------------

@dataclass
class FleetScaleResult:
    """The server × tenant goodput/tail grid."""

    server_counts: List[int]
    tenant_counts: List[int]
    offered_mrps: float
    cells: List[Dict[str, Any]]  # row-major: servers outer, tenants inner
    #: Charging mode the cells ran under ("scalar"/"batched"); batched
    #: runs record it in the artifact, scalar artifacts stay
    #: byte-identical to pre-batching goldens.
    dataplane: str = "scalar"

    def cell(self, n_servers: int, n_tenants: int) -> Dict[str, Any]:
        """The payload for one grid shape."""
        row = self.server_counts.index(n_servers)
        col = self.tenant_counts.index(n_tenants)
        return self.cells[row * len(self.tenant_counts) + col]


def run_fleet_scale_cell(
    n_servers: int,
    n_tenants: int,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    dataplane: str = "scalar",
) -> Dict[str, Any]:
    """One independently-runnable grid cell (fault-free)."""
    result = run_fleet_cell(
        n_servers=n_servers,
        n_tenants=n_tenants,
        requests=requests,
        warmup=warmup,
        n_keys=n_keys,
        theta=theta,
        get_fraction=get_fraction,
        offered_mrps=offered_mrps,
        vnodes=vnodes,
        epoch_requests=epoch_requests,
        tenant_ways=tenant_ways,
        ddio_ways=ddio_ways,
        engine=engine,
        seed=seed,
        dataplane=dataplane,
    )
    return result.to_dict()


def run_fleet_scale(
    server_counts: Optional[Sequence[int]] = None,
    tenant_counts: Optional[Sequence[int]] = None,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    dataplane: str = "scalar",
) -> FleetScaleResult:
    """Sweep fleet shape; every cell serves *requests* Zipf requests."""
    servers_grid = [
        int(v)
        for v in (server_counts if server_counts is not None
                  else DEFAULT_SERVER_COUNTS)
    ]
    tenants_grid = [
        int(v)
        for v in (tenant_counts if tenant_counts is not None
                  else DEFAULT_TENANT_COUNTS)
    ]
    cells = [
        run_fleet_scale_cell(
            n_servers,
            n_tenants,
            requests=requests,
            warmup=warmup,
            n_keys=n_keys,
            theta=theta,
            get_fraction=get_fraction,
            offered_mrps=offered_mrps,
            vnodes=vnodes,
            epoch_requests=epoch_requests,
            tenant_ways=tenant_ways,
            ddio_ways=ddio_ways,
            engine=engine,
            seed=seed,
            dataplane=dataplane,
        )
        for n_servers in servers_grid
        for n_tenants in tenants_grid
    ]
    return FleetScaleResult(
        server_counts=servers_grid,
        tenant_counts=tenants_grid,
        offered_mrps=offered_mrps,
        cells=cells,
        dataplane=dataplane,
    )


def assemble_fleet_scale(
    params: Mapping[str, Any], cell_results: Sequence[Dict[str, Any]]
) -> FleetScaleResult:
    """Reassemble :func:`run_fleet_scale` from fanned-out cells.

    ``cell_results`` must be ordered like the lab split generates
    them: servers outer, tenants inner.
    """
    servers_grid = [
        int(v)
        for v in (params.get("server_counts") or DEFAULT_SERVER_COUNTS)
    ]
    tenants_grid = [
        int(v)
        for v in (params.get("tenant_counts") or DEFAULT_TENANT_COUNTS)
    ]
    expected = len(servers_grid) * len(tenants_grid)
    if len(cell_results) != expected:
        raise ValueError(
            f"expected {expected} cells, got {len(cell_results)}"
        )
    return FleetScaleResult(
        server_counts=servers_grid,
        tenant_counts=tenants_grid,
        offered_mrps=float(params.get("offered_mrps", 2.0)),
        cells=list(cell_results),
        dataplane=str(params.get("dataplane", "scalar")),
    )


def fleet_scale_to_dict(result: FleetScaleResult) -> Dict[str, Any]:
    """JSON-ready form (the persisted scale artifact).

    The ``dataplane`` key appears only for batched runs so scalar
    artifacts stay byte-identical to the pre-batching goldens.
    """
    payload: Dict[str, Any] = {
        "server_counts": list(result.server_counts),
        "tenant_counts": list(result.tenant_counts),
        "offered_mrps": result.offered_mrps,
        "cells": list(result.cells),
    }
    if result.dataplane != "scalar":
        payload["dataplane"] = result.dataplane
    return payload


def format_fleet_scale(result: FleetScaleResult) -> str:
    """Render the goodput/tail grid."""
    out = [
        f"Fleet scale — goodput and tails @ "
        f"{result.offered_mrps:g} Mrps offered"
    ]
    out.append(
        "servers | tenants |  goodput |    p50 |     p99 |   p99.9"
    )
    for n_servers in result.server_counts:
        for n_tenants in result.tenant_counts:
            cell = result.cell(n_servers, n_tenants)
            pct = cell["latency_us"]["percentiles"]
            out.append(
                f"{n_servers:>7d} | {n_tenants:>7d} "
                f"| {cell['goodput_mrps']:>5.2f}Mrp "
                f"| {pct['p50']:>5.2f}us | {pct['p99']:>6.2f}us "
                f"| {pct['p99.9']:>6.2f}us"
            )
    return "\n".join(out)


# ----------------------------------------------------------------------
# fleet-failover
# ----------------------------------------------------------------------

def _recovery_metrics(cell: Mapping[str, Any]) -> Dict[str, Any]:
    """Tail inflation + re-convergence derived from one cell payload.

    Steady state is the windowed p99 before the first kill (whole run
    when nothing dies).  Peak is the worst window at or after the
    first kill; recovery is how many windows elapse from the kill
    until the windowed p99 falls back under
    ``RECOVERY_FACTOR × steady`` (-1 = never within the run).
    """
    windows = [float(v) for v in cell["window_p99_us"]]
    kills = cell["kills"]
    if not windows:
        return {
            "steady_p99_us": 0.0,
            "peak_p99_us": 0.0,
            "tail_inflation": 1.0,
            "recovery_windows": 0,
        }
    if not kills:
        steady = float(np.median(windows))
        return {
            "steady_p99_us": steady,
            "peak_p99_us": float(max(windows)),
            "tail_inflation": (
                float(max(windows)) / steady if steady > 0 else 1.0
            ),
            "recovery_windows": 0,
        }
    # Window w covers requests [warmup + w*epoch, ...); kill epochs are
    # absolute request indices, so translate via the measured offset.
    requests = int(cell["requests"])
    measured = int(cell["measured"])
    warmup = requests - measured
    epoch_requests = max(1, (requests - warmup) // max(1, len(windows)))
    first_kill = min(int(k["request_index"]) for k in kills)
    kill_window = max(0, (first_kill - warmup) // epoch_requests)
    kill_window = min(kill_window, len(windows) - 1)
    pre = windows[:kill_window] or windows[: kill_window + 1]
    steady = float(np.median(pre))
    post = windows[kill_window:]
    peak = float(max(post))
    recovery = -1
    threshold = RECOVERY_FACTOR * steady
    for offset, value in enumerate(post):
        if value <= threshold:
            recovery = offset
            break
    return {
        "steady_p99_us": steady,
        "peak_p99_us": peak,
        "tail_inflation": peak / steady if steady > 0 else 1.0,
        "recovery_windows": recovery,
    }


@dataclass
class FleetFailoverPoint:
    """One intensity point of the failover sweep."""

    intensity: float
    cell: Dict[str, Any]
    recovery: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "intensity": self.intensity,
            "cell": self.cell,
            "recovery": self.recovery,
        }


@dataclass
class FleetFailoverResult:
    """Tail inflation and recovery vs chaos intensity."""

    n_servers: int
    n_tenants: int
    intensities: List[float]
    plans: Dict[str, Dict[str, Any]]
    points: List[FleetFailoverPoint]


def run_fleet_failover_point(
    intensity: float,
    n_servers: int = 4,
    n_tenants: int = 4,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> FleetFailoverPoint:
    """One independently-runnable sweep point.

    The fault seed derives from the experiment seed; passing ``plans``
    (the persisted ``{intensity: plan_dict}`` map from an earlier
    artifact) replays those plans verbatim instead.
    """
    plan = _failover_plan(intensity, seed + FLEET_FAULT_SEED_OFFSET, plans)
    result = run_fleet_cell(
        n_servers=n_servers,
        n_tenants=n_tenants,
        requests=requests,
        warmup=warmup,
        n_keys=n_keys,
        theta=theta,
        get_fraction=get_fraction,
        offered_mrps=offered_mrps,
        vnodes=vnodes,
        epoch_requests=epoch_requests,
        tenant_ways=tenant_ways,
        ddio_ways=ddio_ways,
        engine=engine,
        seed=seed,
        plan=plan,
    )
    cell = result.to_dict()
    return FleetFailoverPoint(
        intensity=float(intensity),
        cell=cell,
        recovery=_recovery_metrics(cell),
    )


def run_fleet_failover(
    intensities: Optional[Sequence[float]] = None,
    n_servers: int = 4,
    n_tenants: int = 4,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> FleetFailoverResult:
    """Sweep server-kill intensity at one fleet shape."""
    grid = [
        float(v)
        for v in (intensities if intensities is not None
                  else DEFAULT_FAILOVER_INTENSITIES)
    ]
    used_plans = {
        f"{intensity:g}": _failover_plan(
            intensity, seed + FLEET_FAULT_SEED_OFFSET, plans
        ).to_dict()
        for intensity in grid
    }
    points = [
        run_fleet_failover_point(
            intensity,
            n_servers=n_servers,
            n_tenants=n_tenants,
            requests=requests,
            warmup=warmup,
            n_keys=n_keys,
            theta=theta,
            get_fraction=get_fraction,
            offered_mrps=offered_mrps,
            vnodes=vnodes,
            epoch_requests=epoch_requests,
            tenant_ways=tenant_ways,
            ddio_ways=ddio_ways,
            engine=engine,
            seed=seed,
            plans=plans,
        )
        for intensity in grid
    ]
    return FleetFailoverResult(
        n_servers=n_servers,
        n_tenants=n_tenants,
        intensities=grid,
        plans=used_plans,
        points=points,
    )


def assemble_fleet_failover(
    params: Mapping[str, Any], point_results: Sequence[FleetFailoverPoint]
) -> FleetFailoverResult:
    """Reassemble :func:`run_fleet_failover` from fanned-out points."""
    grid = [
        float(v)
        for v in (params.get("intensities") or DEFAULT_FAILOVER_INTENSITIES)
    ]
    if len(point_results) != len(grid):
        raise ValueError(
            f"expected {len(grid)} points, got {len(point_results)}"
        )
    seed = int(params.get("seed", 0))
    plans = params.get("plans")
    used_plans = {
        f"{intensity:g}": _failover_plan(
            intensity, seed + FLEET_FAULT_SEED_OFFSET, plans
        ).to_dict()
        for intensity in grid
    }
    return FleetFailoverResult(
        n_servers=int(params.get("n_servers", 4)),
        n_tenants=int(params.get("n_tenants", 4)),
        intensities=grid,
        plans=used_plans,
        points=list(point_results),
    )


def fleet_failover_to_dict(result: FleetFailoverResult) -> Dict[str, Any]:
    """JSON-ready form (the persisted failover artifact)."""
    return {
        "n_servers": result.n_servers,
        "n_tenants": result.n_tenants,
        "intensities": list(result.intensities),
        "plans": result.plans,
        "points": [p.to_dict() for p in result.points],
    }


def format_fleet_failover(result: FleetFailoverResult) -> str:
    """Render the failover sweep table."""
    out = [
        f"Fleet failover — {result.n_servers} servers × "
        f"{result.n_tenants} tenants, server-kill chaos"
    ]
    out.append(
        "intensity | kills | alive |  goodput |     p99 "
        "| inflation | recovery"
    )
    for point in result.points:
        cell = point.cell
        recovery = point.recovery
        rec = recovery["recovery_windows"]
        out.append(
            f"{point.intensity:>9.2f} | {len(cell['kills']):>5d} "
            f"| {cell['alive_at_end']:>5d} "
            f"| {cell['goodput_mrps']:>5.2f}Mrp "
            f"| {cell['latency_us']['percentiles']['p99']:>6.2f}us "
            f"| {recovery['tail_inflation']:>8.2f}x "
            f"| {'never' if rec < 0 else f'{rec} win'}"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
# fleet-availability
# ----------------------------------------------------------------------

#: Intensities the availability sweep covers (0 = fault-free baseline).
DEFAULT_AVAILABILITY_INTENSITIES = [0.0, 0.5, 1.0, 2.0]

#: Seed offsets keeping each fleet experiment's plan streams disjoint.
FLEET_AVAILABILITY_SEED_OFFSET = 9_500
FLEET_DURABILITY_SEED_OFFSET = 9_700

#: The self-healing config the availability sweep runs under: 2-way
#: replication, the heartbeat detector armed, and queue-lag shedding
#: so gray-stall backlogs degrade gracefully instead of collapsing.
DEFAULT_AVAILABILITY_HEALING: Dict[str, Any] = {
    "replication": 2,
    "detector_enabled": True,
    "shed_lag_high_us": 25.0,
    "shed_lag_low_us": 5.0,
}


def _availability_plan(
    intensity: float,
    fault_seed: int,
    plans: Optional[Mapping[str, Mapping[str, Any]]],
) -> FaultPlan:
    """The gray-failure plan for one sweep point (replay wins)."""
    key = f"{intensity:g}"
    if plans is not None and key in plans:
        return resolve_plan(plans[key])
    return plan_for_class("fleet-gray", seed=fault_seed, intensity=intensity)


def _availability_metrics(cell: Mapping[str, Any]) -> Dict[str, Any]:
    """Unavailability, degraded-mode and detection-lag decomposition."""
    healing = cell.get("self_healing") or {}
    counters = healing.get("counters") or {}
    outcomes = {
        key: int(counters.get(key, 0))
        for key in ("served", "rejected", "shed", "unavailable")
    }
    total = sum(outcomes.values())

    def fraction(key: str) -> float:
        return outcomes[key] / total if total else 0.0

    detections = healing.get("detections") or []
    lags_by_kind: Dict[str, List[int]] = {"kill": [], "stall": []}
    for event in detections:
        lag = event.get("lag_epochs")
        if lag is not None and event.get("kind") in lags_by_kind:
            lags_by_kind[event["kind"]].append(int(lag))
    all_lags = lags_by_kind["kill"] + lags_by_kind["stall"]

    def mean(values: List[int]) -> float:
        return sum(values) / len(values) if values else 0.0

    return {
        "unavailable_fraction": fraction("unavailable"),
        "shed_fraction": fraction("shed"),
        "rejected_fraction": fraction("rejected"),
        "served_fraction": fraction("served"),
        "detections": len(detections),
        "mean_detection_lag_epochs": mean(all_lags),
        "max_detection_lag_epochs": max(all_lags) if all_lags else 0,
        "kill_detection_lag_epochs": mean(lags_by_kind["kill"]),
        "stall_detection_lag_epochs": mean(lags_by_kind["stall"]),
        "reboots": int(counters.get("reboots", 0)),
        "rejoins": len(healing.get("rejoins") or []),
        "failovers": int(counters.get("failovers", 0)),
    }


@dataclass
class FleetAvailabilityPoint:
    """One intensity point of the availability sweep."""

    intensity: float
    cell: Dict[str, Any]
    availability: Dict[str, Any]
    recovery: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "intensity": self.intensity,
            "cell": self.cell,
            "availability": self.availability,
            "recovery": self.recovery,
        }


@dataclass
class FleetAvailabilityResult:
    """Unavailability/recovery curves vs kill+stall intensity."""

    n_servers: int
    n_tenants: int
    intensities: List[float]
    healing: Dict[str, Any]
    plans: Dict[str, Dict[str, Any]]
    points: List[FleetAvailabilityPoint]


def run_fleet_availability_point(
    intensity: float,
    n_servers: int = 6,
    n_tenants: int = 4,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    healing: Optional[Mapping[str, Any]] = None,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> FleetAvailabilityPoint:
    """One independently-runnable availability sweep point."""
    plan = _availability_plan(
        intensity, seed + FLEET_AVAILABILITY_SEED_OFFSET, plans
    )
    healing_config = dict(
        healing if healing is not None else DEFAULT_AVAILABILITY_HEALING
    )
    result = run_fleet_cell(
        n_servers=n_servers,
        n_tenants=n_tenants,
        requests=requests,
        warmup=warmup,
        n_keys=n_keys,
        theta=theta,
        get_fraction=get_fraction,
        offered_mrps=offered_mrps,
        vnodes=vnodes,
        epoch_requests=epoch_requests,
        tenant_ways=tenant_ways,
        ddio_ways=ddio_ways,
        engine=engine,
        seed=seed,
        plan=plan,
        healing=healing_config,
    )
    cell = result.to_dict()
    return FleetAvailabilityPoint(
        intensity=float(intensity),
        cell=cell,
        availability=_availability_metrics(cell),
        recovery=_recovery_metrics(cell),
    )


def run_fleet_availability(
    intensities: Optional[Sequence[float]] = None,
    n_servers: int = 6,
    n_tenants: int = 4,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    healing: Optional[Mapping[str, Any]] = None,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> FleetAvailabilityResult:
    """Sweep gray-failure intensity under the self-healing loop."""
    grid = [
        float(v)
        for v in (intensities if intensities is not None
                  else DEFAULT_AVAILABILITY_INTENSITIES)
    ]
    healing_config = dict(
        healing if healing is not None else DEFAULT_AVAILABILITY_HEALING
    )
    used_plans = {
        f"{intensity:g}": _availability_plan(
            intensity, seed + FLEET_AVAILABILITY_SEED_OFFSET, plans
        ).to_dict()
        for intensity in grid
    }
    points = [
        run_fleet_availability_point(
            intensity,
            n_servers=n_servers,
            n_tenants=n_tenants,
            requests=requests,
            warmup=warmup,
            n_keys=n_keys,
            theta=theta,
            get_fraction=get_fraction,
            offered_mrps=offered_mrps,
            vnodes=vnodes,
            epoch_requests=epoch_requests,
            tenant_ways=tenant_ways,
            ddio_ways=ddio_ways,
            engine=engine,
            seed=seed,
            healing=healing_config,
            plans=plans,
        )
        for intensity in grid
    ]
    return FleetAvailabilityResult(
        n_servers=n_servers,
        n_tenants=n_tenants,
        intensities=grid,
        healing=healing_config,
        plans=used_plans,
        points=points,
    )


def assemble_fleet_availability(
    params: Mapping[str, Any],
    point_results: Sequence[FleetAvailabilityPoint],
) -> FleetAvailabilityResult:
    """Reassemble :func:`run_fleet_availability` from fanned-out points."""
    grid = [
        float(v)
        for v in (
            params.get("intensities") or DEFAULT_AVAILABILITY_INTENSITIES
        )
    ]
    if len(point_results) != len(grid):
        raise ValueError(
            f"expected {len(grid)} points, got {len(point_results)}"
        )
    seed = int(params.get("seed", 0))
    plans = params.get("plans")
    healing_config = dict(
        params.get("healing") or DEFAULT_AVAILABILITY_HEALING
    )
    used_plans = {
        f"{intensity:g}": _availability_plan(
            intensity, seed + FLEET_AVAILABILITY_SEED_OFFSET, plans
        ).to_dict()
        for intensity in grid
    }
    return FleetAvailabilityResult(
        n_servers=int(params.get("n_servers", 6)),
        n_tenants=int(params.get("n_tenants", 4)),
        intensities=grid,
        healing=healing_config,
        plans=used_plans,
        points=list(point_results),
    )


def fleet_availability_to_dict(
    result: FleetAvailabilityResult,
) -> Dict[str, Any]:
    """JSON-ready form (the persisted availability artifact)."""
    return {
        "n_servers": result.n_servers,
        "n_tenants": result.n_tenants,
        "intensities": list(result.intensities),
        "healing": dict(result.healing),
        "plans": result.plans,
        "points": [p.to_dict() for p in result.points],
    }


def format_fleet_availability(result: FleetAvailabilityResult) -> str:
    """Render the availability sweep table."""
    out = [
        f"Fleet availability — {result.n_servers} servers × "
        f"{result.n_tenants} tenants, kill+stall chaos, "
        f"R={result.healing.get('replication', 1)}"
    ]
    out.append(
        "intensity | unavail |  shed | detect lag | reboots "
        "| failovers |  goodput"
    )
    for point in result.points:
        availability = point.availability
        out.append(
            f"{point.intensity:>9.2f} "
            f"| {availability['unavailable_fraction']:>6.2%} "
            f"| {availability['shed_fraction']:>4.1%} "
            f"| {availability['mean_detection_lag_epochs']:>7.1f}ep "
            f"| {availability['reboots']:>7d} "
            f"| {availability['failovers']:>9d} "
            f"| {point.cell['goodput_mrps']:>5.2f}Mrp"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
# fleet-durability
# ----------------------------------------------------------------------

#: Replication factors and kill intensities the durability matrix
#: covers by default.
DEFAULT_DURABILITY_REPLICATIONS = [1, 2, 3]
DEFAULT_DURABILITY_INTENSITIES = [0.0, 1.0, 2.0]

#: Durability points run with the detector armed but no admission —
#: replication is the variable under test.  The same plan (same seed)
#: serves every replication factor at a given intensity, so the dead
#: set is identical across R and lost-key fractions are monotone.
DEFAULT_DURABILITY_HEALING: Dict[str, Any] = {"detector_enabled": True}


def _durability_plan(
    intensity: float,
    fault_seed: int,
    plans: Optional[Mapping[str, Mapping[str, Any]]],
) -> FaultPlan:
    """The permanent-kill plan for one intensity (replay wins)."""
    key = f"{intensity:g}"
    if plans is not None and key in plans:
        return resolve_plan(plans[key])
    return plan_for_class("server-kill", seed=fault_seed, intensity=intensity)


@dataclass
class FleetDurabilityPoint:
    """One (replication, intensity) cell of the durability matrix."""

    replication: int
    intensity: float
    lost_key_fraction: float
    kills: int
    alive_at_end: int
    unavailable_fraction: float
    cell: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "replication": self.replication,
            "intensity": self.intensity,
            "lost_key_fraction": self.lost_key_fraction,
            "kills": self.kills,
            "alive_at_end": self.alive_at_end,
            "unavailable_fraction": self.unavailable_fraction,
            "cell": self.cell,
        }


@dataclass
class FleetDurabilityResult:
    """Lost-key fraction vs replication factor × kill intensity."""

    n_servers: int
    n_tenants: int
    replications: List[int]
    intensities: List[float]
    healing: Dict[str, Any]
    plans: Dict[str, Dict[str, Any]]
    points: List[FleetDurabilityPoint]

    def point(
        self, replication: int, intensity: float
    ) -> FleetDurabilityPoint:
        """The cell for one (R, intensity) pair."""
        row = self.replications.index(replication)
        col = self.intensities.index(intensity)
        return self.points[row * len(self.intensities) + col]


def run_fleet_durability_point(
    replication: int,
    intensity: float,
    n_servers: int = 5,
    n_tenants: int = 2,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    healing: Optional[Mapping[str, Any]] = None,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> FleetDurabilityPoint:
    """One independently-runnable durability matrix cell.

    The plan depends only on *intensity* (never on *replication*), so
    every R value faces the identical kill schedule.
    """
    plan = _durability_plan(
        intensity, seed + FLEET_DURABILITY_SEED_OFFSET, plans
    )
    base = dict(healing if healing is not None else DEFAULT_DURABILITY_HEALING)
    base["replication"] = int(replication)
    result = run_fleet_cell(
        n_servers=n_servers,
        n_tenants=n_tenants,
        requests=requests,
        warmup=warmup,
        n_keys=n_keys,
        theta=theta,
        get_fraction=get_fraction,
        offered_mrps=offered_mrps,
        vnodes=vnodes,
        epoch_requests=epoch_requests,
        tenant_ways=tenant_ways,
        ddio_ways=ddio_ways,
        engine=engine,
        seed=seed,
        plan=plan,
        healing=base,
    )
    cell = result.to_dict()
    healing_payload = cell.get("self_healing") or {}
    counters = healing_payload.get("counters") or {}
    outcomes = sum(
        int(counters.get(key, 0))
        for key in ("served", "rejected", "shed", "unavailable")
    )
    return FleetDurabilityPoint(
        replication=int(replication),
        intensity=float(intensity),
        lost_key_fraction=float(
            healing_payload.get("lost_key_fraction", 0.0)
        ),
        kills=len(cell["kills"]),
        alive_at_end=int(cell["alive_at_end"]),
        unavailable_fraction=(
            int(counters.get("unavailable", 0)) / outcomes
            if outcomes
            else 0.0
        ),
        cell=cell,
    )


def run_fleet_durability(
    replications: Optional[Sequence[int]] = None,
    intensities: Optional[Sequence[float]] = None,
    n_servers: int = 5,
    n_tenants: int = 2,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    healing: Optional[Mapping[str, Any]] = None,
    plans: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> FleetDurabilityResult:
    """Sweep replication factor × permanent-kill intensity."""
    replication_grid = [
        int(v)
        for v in (replications if replications is not None
                  else DEFAULT_DURABILITY_REPLICATIONS)
    ]
    intensity_grid = [
        float(v)
        for v in (intensities if intensities is not None
                  else DEFAULT_DURABILITY_INTENSITIES)
    ]
    base = dict(healing if healing is not None else DEFAULT_DURABILITY_HEALING)
    used_plans = {
        f"{intensity:g}": _durability_plan(
            intensity, seed + FLEET_DURABILITY_SEED_OFFSET, plans
        ).to_dict()
        for intensity in intensity_grid
    }
    points = [
        run_fleet_durability_point(
            replication,
            intensity,
            n_servers=n_servers,
            n_tenants=n_tenants,
            requests=requests,
            warmup=warmup,
            n_keys=n_keys,
            theta=theta,
            get_fraction=get_fraction,
            offered_mrps=offered_mrps,
            vnodes=vnodes,
            epoch_requests=epoch_requests,
            tenant_ways=tenant_ways,
            ddio_ways=ddio_ways,
            engine=engine,
            seed=seed,
            healing=base,
            plans=plans,
        )
        for replication in replication_grid
        for intensity in intensity_grid
    ]
    return FleetDurabilityResult(
        n_servers=n_servers,
        n_tenants=n_tenants,
        replications=replication_grid,
        intensities=intensity_grid,
        healing=base,
        plans=used_plans,
        points=points,
    )


def assemble_fleet_durability(
    params: Mapping[str, Any],
    point_results: Sequence[FleetDurabilityPoint],
) -> FleetDurabilityResult:
    """Reassemble :func:`run_fleet_durability` from fanned-out points.

    ``point_results`` must be ordered like the lab split generates
    them: replications outer, intensities inner.
    """
    replication_grid = [
        int(v)
        for v in (
            params.get("replications") or DEFAULT_DURABILITY_REPLICATIONS
        )
    ]
    intensity_grid = [
        float(v)
        for v in (
            params.get("intensities") or DEFAULT_DURABILITY_INTENSITIES
        )
    ]
    expected = len(replication_grid) * len(intensity_grid)
    if len(point_results) != expected:
        raise ValueError(
            f"expected {expected} points, got {len(point_results)}"
        )
    seed = int(params.get("seed", 0))
    plans = params.get("plans")
    used_plans = {
        f"{intensity:g}": _durability_plan(
            intensity, seed + FLEET_DURABILITY_SEED_OFFSET, plans
        ).to_dict()
        for intensity in intensity_grid
    }
    return FleetDurabilityResult(
        n_servers=int(params.get("n_servers", 5)),
        n_tenants=int(params.get("n_tenants", 2)),
        replications=replication_grid,
        intensities=intensity_grid,
        healing=dict(params.get("healing") or DEFAULT_DURABILITY_HEALING),
        plans=used_plans,
        points=list(point_results),
    )


def fleet_durability_to_dict(result: FleetDurabilityResult) -> Dict[str, Any]:
    """JSON-ready form (the persisted durability artifact)."""
    return {
        "n_servers": result.n_servers,
        "n_tenants": result.n_tenants,
        "replications": list(result.replications),
        "intensities": list(result.intensities),
        "healing": dict(result.healing),
        "plans": result.plans,
        "points": [p.to_dict() for p in result.points],
    }


def format_fleet_durability(result: FleetDurabilityResult) -> str:
    """Render the lost-key matrix (rows = R, columns = intensity)."""
    out = [
        f"Fleet durability — {result.n_servers} servers × "
        f"{result.n_tenants} tenants, permanent kills"
    ]
    header = "    R | " + " | ".join(
        f"x={intensity:g} lost (kills)" for intensity in result.intensities
    )
    out.append(header)
    for replication in result.replications:
        cells = []
        for intensity in result.intensities:
            point = result.point(replication, intensity)
            cells.append(
                f"{point.lost_key_fraction:>8.2%} ({point.kills})"
            )
        out.append(f"{replication:>5d} | " + " | ".join(cells))
    return "\n".join(out)
