"""Low-rate latency across every Table 2 traffic class.

§5.1 reports Fig. 12 for 64 B at 1000 pps and states that "all other
traffic sets (except those related to only 1500 B packets) show the
same behavior, but with different latency values".  This sweep runs
the same measurement for each packet size so that claim is checkable:
CacheDirector wins for every class, larger frames carry higher
absolute latency, and the 1500 B case is where §8's eviction caveat
lives (see the MTU ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.net.chain import DutConfig, DutEnvironment, simple_forwarding_chain
from repro.net.harness import NicModel
from repro.net.trace import FixedSizeTraffic, LOW_RATE_PPS, TrafficClass
from repro.stats.percentiles import LatencySummary, summarize_latencies

PACKET_SIZES = (64, 512, 1024, 1500)


@dataclass
class TrafficClassPoint:
    """One (size, configuration) latency summary."""

    packet_size: int
    dpdk: LatencySummary
    cachedirector: LatencySummary

    def improvement_p99_us(self) -> float:
        """Absolute 99th-percentile improvement in µs."""
        return self.dpdk[99] - self.cachedirector[99]


def run_traffic_class_sweep(
    packets_per_class: int = 1500,
    n_cores: int = 8,
    seed: int = 0,
) -> List[TrafficClassPoint]:
    """Run the low-rate forwarding experiment for every Table 2 size."""
    nic = NicModel()
    points: List[TrafficClassPoint] = []
    for size in PACKET_SIZES:
        traffic = FixedSizeTraffic(
            TrafficClass(packet_size=size, rate_pps=LOW_RATE_PPS, label=f"{size}B-L"),
            seed=seed,
        )
        packets = traffic.generate(packets_per_class)
        summaries: Dict[bool, LatencySummary] = {}
        for cache_director in (False, True):
            env = DutEnvironment(
                DutConfig(cache_director=cache_director, n_cores=n_cores, seed=seed),
                simple_forwarding_chain,
            )
            queues = [p.flow.src_port % n_cores for p in packets]
            cycles = env.service_cycles(packets, queues)
            freq = env.config.spec.freq_ghz
            latencies_us = np.array(
                [
                    (c / freq + nic.fixed_latency_ns + size * 8.0 / nic.link_gbps)
                    / 1e3
                    for c in cycles
                    if c is not None
                ]
            )
            summaries[cache_director] = summarize_latencies(latencies_us)
        points.append(
            TrafficClassPoint(
                packet_size=size,
                dpdk=summaries[False],
                cachedirector=summaries[True],
            )
        )
    return points


def format_traffic_classes(points: List[TrafficClassPoint]) -> str:
    """Render the per-class comparison."""
    out = ["Table 2 sweep — low-rate DuT latency per packet size (forwarding)"]
    out.append("size   | DPDK p99 (us) | +CD p99 (us) | CD gain")
    for p in points:
        out.append(
            f"{p.packet_size:>5}B | {p.dpdk[99]:>13.3f} | {p.cachedirector[99]:>12.3f} "
            f"| {p.improvement_p99_us() * 1e3:>5.1f} ns"
        )
    return "\n".join(out)
def traffic_classes_to_dict(points: List[TrafficClassPoint]) -> dict:
    """JSON-ready form of the per-size sweep (lab/CLI ``--json``)."""
    return {
        "points": [
            {
                "packet_size": int(p.packet_size),
                "dpdk": p.dpdk.to_dict(),
                "cachedirector": p.cachedirector.to_dict(),
                "improvement_p99_us": float(p.improvement_p99_us()),
            }
            for p in points
        ]
    }
