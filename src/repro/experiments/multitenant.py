"""Multi-tenant slice partitioning (§7's hypervisor extension).

The paper closes §7 with: "slice isolation can also be employed in
hypervisors (e.g., KVM) to allocate different LLC slices to different
virtual machines.  These remain as our future work."  This experiment
implements it on the Skylake model: four tenants, each pinned to a
core with its own working set, under three LLC policies:

* **shared** — no isolation; every tenant's lines land wherever the
  hash sends them and evict each other freely.
* **cat** — the LLC ways are split evenly between tenants (CLOS per
  tenant).
* **slice** — each tenant's memory is allocated from its core's
  preferred slice(s) only: full spatial isolation plus minimum NUCA
  distance.

Reported per policy: mean tenant cost, worst tenant cost, and the
unfairness ratio (worst/best) — the metric noisy-neighbour work cares
about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cachesim.cat import CatController
from repro.cachesim.machines import SKYLAKE_GOLD_6134, MachineSpec, build_hierarchy
from repro.core.slice_aware import SliceAwareContext
from repro.mem.address import CACHE_LINE
from repro.mem.slice_array import SliceLocalArray

POLICIES = ("shared", "cat", "slice")


@dataclass
class TenantResult:
    """Per-tenant average access cost (cycles)."""

    tenant_cycles: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.tenant_cycles))

    @property
    def worst(self) -> float:
        return float(max(self.tenant_cycles))

    @property
    def unfairness(self) -> float:
        """worst / best — 1.0 is perfectly fair."""
        return float(max(self.tenant_cycles) / min(self.tenant_cycles))


def run_multitenant_experiment(
    spec: MachineSpec = SKYLAKE_GOLD_6134,
    n_tenants: int = 4,
    working_set_bytes: int = None,
    n_ops: int = 4000,
    seed: int = 0,
) -> Dict[str, TenantResult]:
    """Run the three policies; returns ``{policy: TenantResult}``.

    Tenant 0 runs a cache-friendly working set; the others are
    progressively noisier (larger working sets), so under the shared
    policy the polite tenant suffers its neighbours' evictions.
    """
    if working_set_bytes is None:
        # Must exceed the (large, victim-backed) private L2 for LLC
        # policy to matter at all: L2 plus 3/4 of a slice, Fig. 17's
        # sizing.
        working_set_bytes = spec.l2_bytes + 3 * spec.llc_slice_bytes // 4
    tenant_cores = [i * (spec.n_cores // n_tenants) for i in range(n_tenants)]
    # Tenant working sets: tenant 0 polite, later tenants noisier.
    tenant_ws = [working_set_bytes * (1 + 2 * t) for t in range(n_tenants)]
    results: Dict[str, TenantResult] = {}
    for policy in POLICIES:
        cat = CatController(spec.llc_ways, spec.n_cores)
        if policy == "cat":
            ways_each = max(1, spec.llc_ways // n_tenants)
            for t, core in enumerate(tenant_cores):
                low = t * ways_each
                mask = ((1 << ways_each) - 1) << low
                cat.define_clos(t + 1, mask)
                cat.assign_core(core, t + 1)
        hierarchy = build_hierarchy(spec, cat=cat, seed=seed)
        context = SliceAwareContext(spec, hierarchy=hierarchy, seed=seed)
        addresses: List[List[int]] = []
        for t, core in enumerate(tenant_cores):
            n_lines = tenant_ws[t] // CACHE_LINE
            if policy == "slice":
                # Each tenant gets its core's primary + secondary
                # slices (§8's multiple-preferable-slices strategy) so
                # the working set fits its slice budget.
                targets = context.preferred_slices(core, count=3)
                per_slice = (n_lines + len(targets) - 1) // len(targets)
                block = context.hash.n_slices
                tenant_lines: List[int] = []
                for target in targets:
                    page = context.address_space.mmap_auto(
                        (per_slice + 1) * block * CACHE_LINE
                    )
                    array = SliceLocalArray(
                        base_phys=page.phys,
                        n_lines=per_slice,
                        slice_hash=context.hash,
                        target_slice=target,
                        block_lines=block,
                    )
                    tenant_lines.extend(
                        array.line_address(i) for i in range(per_slice)
                    )
                addresses.append(tenant_lines[:n_lines])
            else:
                page = context.address_space.mmap_auto(n_lines * CACHE_LINE)
                addresses.append(
                    [page.phys + i * CACHE_LINE for i in range(n_lines)]
                )
        rng = np.random.default_rng(seed)
        # Warm all tenants, interleaved.
        for t, core in enumerate(tenant_cores):
            for address in addresses[t][: 1 << 15]:
                hierarchy.read(core, address, 1)
        # Measure, interleaved round-robin so tenants contend.
        cycles = [0] * n_tenants
        index_draws = [
            rng.integers(0, len(addresses[t]), n_ops) for t in range(n_tenants)
        ]
        for op in range(n_ops):
            for t, core in enumerate(tenant_cores):
                address = addresses[t][int(index_draws[t][op])]
                cycles[t] += hierarchy.read(core, address, 1)
        results[policy] = TenantResult(
            tenant_cycles=[c / n_ops for c in cycles]
        )
    return results


def format_multitenant(results: Dict[str, TenantResult]) -> str:
    """Render the multi-tenant comparison."""
    out = ["Extension — multi-tenant LLC partitioning (§7, Skylake model)"]
    out.append("policy | per-tenant cycles/access        | mean  | worst | unfairness")
    for policy, result in results.items():
        tenants = " ".join(f"{c:6.1f}" for c in result.tenant_cycles)
        out.append(
            f"{policy:<6} | {tenants} | {result.mean:5.1f} | {result.worst:5.1f} "
            f"| {result.unfairness:9.2f}"
        )
    return "\n".join(out)
def multitenant_to_dict(results: Dict[str, TenantResult]) -> dict:
    """JSON-ready form of the per-policy results (lab/CLI ``--json``)."""
    return {
        policy: {
            "tenant_cycles": [float(c) for c in r.tenant_cycles],
            "mean": float(r.mean),
            "worst": float(r.worst),
            "unfairness": float(r.unfairness),
        }
        for policy, r in results.items()
    }
