"""§6 — porting CacheDirector to the Skylake architecture.

The paper ports its code to the Xeon Gold 6134 and argues that
CacheDirector "is still expected to be beneficial, but with lower
improvements — as the size of L2 has been increased" (and the LLC is a
non-inclusive victim cache).  This experiment runs the same NFV
microsimulation on both machine models and compares CacheDirector's
per-packet saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.cachesim.machines import HASWELL_E5_2667V3, SKYLAKE_GOLD_6134, MachineSpec
from repro.dpdk.steering import FlowDirectorSteering
from repro.net.chain import DutConfig, DutEnvironment, router_napt_lb_chain
from repro.net.trace import CampusTraceGenerator


@dataclass
class PortResult:
    """Per-machine CacheDirector effect on the stateful chain."""

    base_cycles: float
    cachedirector_cycles: float

    @property
    def saving_cycles(self) -> float:
        return self.base_cycles - self.cachedirector_cycles

    @property
    def saving_pct(self) -> float:
        return self.saving_cycles / self.base_cycles * 100


def run_skylake_port(
    micro_packets: int = 2500,
    seed: int = 0,
) -> Dict[str, PortResult]:
    """Mean chain service cycles, DPDK vs +CacheDirector, per machine."""
    generator = CampusTraceGenerator(seed=seed + 1)
    packets = generator.generate(micro_packets, rate_pps=4e6)
    results: Dict[str, PortResult] = {}
    for name, spec in (("haswell", HASWELL_E5_2667V3), ("skylake", SKYLAKE_GOLD_6134)):
        cycles: Dict[bool, float] = {}
        for cache_director in (False, True):
            env = DutEnvironment(
                DutConfig(spec=spec, cache_director=cache_director, seed=seed),
                router_napt_lb_chain,
            )
            steering = FlowDirectorSteering(8)
            queues = [steering.queue_for(p.flow_key) for p in packets]
            sampled = [
                c for c in env.service_cycles(packets, queues) if c is not None
            ]
            cycles[cache_director] = float(np.mean(sampled))
        results[name] = PortResult(
            base_cycles=cycles[False], cachedirector_cycles=cycles[True]
        )
    return results


def format_skylake_port(results: Dict[str, PortResult]) -> str:
    """Render the cross-architecture comparison."""
    out = ["§6 — CacheDirector across architectures (Router-NAPT-LB)"]
    out.append("machine | DPDK cyc/pkt | +CD cyc/pkt | saving")
    for name, r in results.items():
        out.append(
            f"{name:<7} | {r.base_cycles:>12.1f} | {r.cachedirector_cycles:>11.1f} "
            f"| {r.saving_cycles:>5.1f} ({r.saving_pct:+.2f}%)"
        )
    return "\n".join(out)
def skylake_port_to_dict(results: Dict[str, PortResult]) -> dict:
    """JSON-ready form of the cross-machine results (lab/CLI ``--json``)."""
    return {
        name: {
            "base_cycles": float(r.base_cycles),
            "cachedirector_cycles": float(r.cachedirector_cycles),
            "saving_cycles": float(r.saving_cycles),
            "saving_pct": float(r.saving_pct),
        }
        for name, r in results.items()
    }
