"""Fig. 7 — OPS vs working-set size on 8 cores (§3).

Every core owns a private array and performs uniform random
single-line accesses; arrays are either contiguous (normal) or
slice-local to each core's closest slice.  Sweeping the array size
from 32 KB to 128 MB reproduces the regimes the paper annotates on
the x-axis: inside L2 both schemes tie; between L2 and a slice
(2.5 MB) slice-aware wins; past the LLC both fall to DRAM speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.cachesim.machines import HASWELL_E5_2667V3, MachineSpec
from repro.core.slice_aware import SliceAwareContext
from repro.mem.address import CACHE_LINE
from repro.mem.slice_array import SliceLocalArray

#: The paper's x-axis.
PAPER_SIZES = [
    32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024,
    1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20,
]


@dataclass
class OpsSweepResult:
    """System OPS per array size for both placements."""

    sizes: List[int]
    normal_mops: Dict[str, List[float]] = field(default_factory=dict)
    slice_mops: Dict[str, List[float]] = field(default_factory=dict)


def _system_mops(per_core_cycles: List[int], n_ops: int, freq_ghz: float) -> float:
    """Aggregate OPS: each core contributes ops/(its cycles)."""
    total = 0.0
    for cycles in per_core_cycles:
        total += n_ops * freq_ghz * 1e9 / max(cycles, 1)
    return total / 1e6


def _interleaved_addresses(
    addr_fns: List[Callable[[int], int]],
    indices: np.ndarray,
) -> List[int]:
    """Flatten an (ops, cores) index matrix into op-major addresses."""
    n_cores = len(addr_fns)
    return [
        addr_fns[core](idx)
        for row in indices.tolist()
        for core, idx in zip(range(n_cores), row)
    ]


def _run_size(
    context: SliceAwareContext,
    addr_fns: List[Callable[[int], int]],
    n_lines: int,
    n_ops: int,
    write: bool,
    seed: int,
    engine: str = "reference",
) -> List[int]:
    """Interleaved random accesses from every core; per-core cycles."""
    hierarchy = context.hierarchy
    n_cores = len(addr_fns)
    rng = np.random.default_rng(seed)
    warm_lines = min(n_lines, 1 << 16)
    steady_ops = 6000 if write else 2000
    if engine == "fast":
        # Same access sequence as the reference loops below, issued
        # through the batch engine: warm each core sequentially, then
        # replay the op-major/core-minor interleaving via a per-access
        # core vector so cross-core LLC interactions are identical.
        for core in range(n_cores):
            fn = addr_fns[core]
            hierarchy.access_batch(
                [fn(i) for i in range(warm_lines)], write, core, engine="fast"
            )
        core_vec = list(range(n_cores)) * steady_ops
        indices = rng.integers(0, n_lines, size=(steady_ops, n_cores))
        hierarchy.access_batch(
            _interleaved_addresses(addr_fns, indices), write, core_vec,
            engine="fast",
        )
        indices = rng.integers(0, n_lines, size=(n_ops, n_cores))
        result = hierarchy.access_batch(
            _interleaved_addresses(addr_fns, indices), write,
            list(range(n_cores)) * n_ops, engine="fast",
        )
        per_core = result.cycles.reshape(n_ops, n_cores).sum(axis=0)
        return [int(c) for c in per_core]
    if engine != "reference":
        raise ValueError(f"unknown engine {engine!r}")
    for core in range(n_cores):
        fn = addr_fns[core]
        for i in range(0, warm_lines):
            if write:
                hierarchy.write(core, fn(i), 1)
            else:
                hierarchy.read(core, fn(i), 1)
    # Unmeasured randomised pass reaches steady state.  Writes need a
    # long pass: the dirty-line pipeline through L1+L2 is ~4 600 lines
    # deep per core, and drain charges only reach steady rate once it
    # is full.
    indices = rng.integers(0, n_lines, size=(steady_ops, n_cores))
    for op in range(steady_ops):
        for core in range(n_cores):
            address = addr_fns[core](int(indices[op, core]))
            if write:
                hierarchy.write(core, address, 1)
            else:
                hierarchy.read(core, address, 1)
    indices = rng.integers(0, n_lines, size=(n_ops, n_cores))
    cycles = [0] * n_cores
    if write:
        for op in range(n_ops):
            row = indices[op]
            for core in range(n_cores):
                cycles[core] += hierarchy.write(core, addr_fns[core](int(row[core])), 1)
    else:
        for op in range(n_ops):
            row = indices[op]
            for core in range(n_cores):
                cycles[core] += hierarchy.read(core, addr_fns[core](int(row[core])), 1)
    return cycles


def run_fig07(
    spec: MachineSpec = HASWELL_E5_2667V3,
    sizes: List[int] = None,
    n_ops: int = 2000,
    n_cores: int = None,
    seed: int = 0,
    engine: str = "reference",
) -> OpsSweepResult:
    """Run the Fig. 7 sweep for reads and writes.

    Args:
        spec: machine model.
        sizes: array sizes in bytes (default: the paper's 13 points).
        n_ops: measured random accesses per core per point.
        n_cores: cores used (default: all).
        seed: RNG seed.
        engine: cache-access engine (``"reference"`` or ``"fast"``);
            both produce identical numbers, ``"fast"`` runs the sweep
            several times faster.
    """
    sizes = sizes if sizes is not None else list(PAPER_SIZES)
    n_cores = n_cores if n_cores is not None else spec.n_cores
    result = OpsSweepResult(sizes=sizes, normal_mops={}, slice_mops={})
    for op_name, write in (("read", False), ("write", True)):
        normal_series: List[float] = []
        slice_series: List[float] = []
        for size in sizes:
            n_lines = size // CACHE_LINE
            # Normal: per-core contiguous arrays.
            ctx = SliceAwareContext(spec, hugepage_bytes=max(2 << 30, 2 * size * n_cores), seed=seed)
            fns = []
            for core in range(n_cores):
                base = ctx.allocate_normal(size).base
                fns.append(lambda i, b=base: b + i * CACHE_LINE)
            cycles = _run_size(ctx, fns, n_lines, n_ops, write, seed, engine)
            normal_series.append(_system_mops(cycles, n_ops, spec.freq_ghz))
            # Slice-aware: per-core slice-local arrays.
            ctx = SliceAwareContext(spec, seed=seed)
            block = ctx.hash.n_slices
            span = n_lines * block * CACHE_LINE
            fns = []
            for core in range(n_cores):
                page = ctx.address_space.mmap_auto(span)
                array = SliceLocalArray(
                    base_phys=page.phys,
                    n_lines=n_lines,
                    slice_hash=ctx.hash,
                    target_slice=ctx.preferred_slice(core),
                    block_lines=block,
                )
                fns.append(array.line_address)
            cycles = _run_size(ctx, fns, n_lines, n_ops, write, seed, engine)
            slice_series.append(_system_mops(cycles, n_ops, spec.freq_ghz))
        result.normal_mops[op_name] = normal_series
        result.slice_mops[op_name] = slice_series
    return result


def format_fig07(result: OpsSweepResult, spec: MachineSpec = HASWELL_E5_2667V3) -> str:
    """Render both Fig. 7 panels as tables with regime annotations."""
    def label(size: int) -> str:
        if size <= spec.l2_bytes:
            regime = "L2"
        elif size <= spec.llc_slice_bytes:
            regime = "slice"
        elif size <= spec.llc_bytes:
            regime = "LLC"
        else:
            regime = "DRAM"
        units = [(1 << 20, "M"), (1 << 10, "K")]
        for unit, suffix in units:
            if size >= unit:
                return f"{size // unit}{suffix} ({regime})"
        return f"{size}B ({regime})"

    out = ["Fig. 7 — system MOPS vs per-core array size (8 cores)"]
    for op_name in ("read", "write"):
        out.append(f"[{op_name}]")
        out.append("size          | normal MOPS | slice-aware MOPS | gain %")
        for i, size in enumerate(result.sizes):
            normal = result.normal_mops[op_name][i]
            aware = result.slice_mops[op_name][i]
            gain = (aware / normal - 1) * 100 if normal else 0.0
            out.append(
                f"{label(size):<13} | {normal:>11.1f} | {aware:>16.1f} | {gain:>+6.1f}"
            )
    return "\n".join(out)
def merge_ops_sweeps(parts: List[OpsSweepResult]) -> OpsSweepResult:
    """Concatenate per-size sweep results back into one sweep.

    Each size point runs against fresh contexts with seed-derived
    RNGs, so a sweep over ``[a, b]`` equals the concatenation of the
    sweeps over ``[a]`` and ``[b]`` bit-for-bit — which is what lets
    the lab runner fan the Fig. 7 x-axis out across workers.
    """
    merged = OpsSweepResult(sizes=[], normal_mops={}, slice_mops={})
    for part in parts:
        merged.sizes.extend(part.sizes)
        for op, series in part.normal_mops.items():
            merged.normal_mops.setdefault(op, []).extend(series)
        for op, series in part.slice_mops.items():
            merged.slice_mops.setdefault(op, []).extend(series)
    return merged


def fig07_to_dict(result: OpsSweepResult) -> dict:
    """JSON-ready form of the OPS sweep (lab/CLI ``--json``)."""
    return {
        "sizes": [int(s) for s in result.sizes],
        "normal_mops": {
            op: [float(v) for v in series]
            for op, series in result.normal_mops.items()
        },
        "slice_mops": {
            op: [float(v) for v in series]
            for op, series in result.slice_mops.items()
        },
    }
