"""Fig. 15 — 99th-percentile latency vs throughput knee (§5.2.2).

The stateful chain under a load sweep; below the knee tail latency
grows linearly with throughput, above it quadratically.  The paper
fits piecewise curves with the knee at 37 Gbps and reports R² for both
segments; these latencies *include* the loopback cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.nfv_common import run_nfv_experiment
from repro.net.chain import router_napt_lb_chain
from repro.net.harness import LOOPBACK_100G_US
from repro.stats.fitting import PiecewiseFit, fit_piecewise_linear_quadratic

#: Offered loads swept (Gbps); the paper sweeps 5–100.
DEFAULT_LOADS = [5.0, 10.0, 20.0, 30.0, 37.0, 45.0, 55.0, 65.0, 75.0, 90.0, 100.0]


@dataclass
class KneeCurve:
    """One tail-latency-vs-throughput curve."""

    throughputs_gbps: List[float]
    tail_latency_us: List[float]
    fit: PiecewiseFit


@dataclass
class KneeResult:
    """Fig. 15's two curves."""

    dpdk: KneeCurve
    cachedirector: KneeCurve


def run_fig15(
    loads_gbps: List[float] = None,
    n_bulk_packets: int = 150_000,
    micro_packets: int = 3000,
    runs: int = 1,
    knee_gbps: float = None,
    ring_capacity: int = 2048,
    burstiness: float = 0.45,
    seed: int = 0,
) -> KneeResult:
    """Sweep offered load, collect (achieved, p99) points, fit curves.

    The knee defaults to roughly half the saturation throughput,
    mirroring the paper's 37 Gbps on a ~76 Gbps ceiling.  The buffer
    budget is two rings deep (RX ring + NIC-internal FIFO) and the
    burst modulation moderate, so the tail keeps growing with load up
    to saturation instead of pinning at one ring's depth.
    """
    import numpy as np

    from repro.experiments.nfv_common import measure_service_times
    from repro.net.harness import (
        bootstrap_service_ns,
        simulate_queueing_latency,
    )
    from repro.net.trace import CampusTraceGenerator

    loads = loads_gbps if loads_gbps is not None else list(DEFAULT_LOADS)
    generator = CampusTraceGenerator(seed=seed + 1)
    flow_keys = [tuple(f) for f in generator.flows]
    curves: Dict[bool, KneeCurve] = {}
    for cache_director in (False, True):
        # The service-time distribution is load-independent; sample it
        # once per configuration.
        service_samples = measure_service_times(
            lambda: router_napt_lb_chain(hw_offload=True),
            cache_director,
            "flow-director",
            generator,
            micro_packets=micro_packets,
            seed=seed,
        )
        throughputs: List[float] = []
        tails: List[float] = []
        for load in loads:
            from repro.dpdk.steering import FlowDirectorSteering

            per_run_tp: List[float] = []
            per_run_tail: List[float] = []
            for run_index in range(runs):
                rng = np.random.default_rng(seed + 50 + run_index)
                sizes, flows, arrivals = generator.generate_arrays(
                    n_bulk_packets,
                    rate_gbps=load,
                    seed_offset=run_index,
                    burstiness=burstiness,
                )
                steering = FlowDirectorSteering(8)
                flow_to_queue = {
                    i: steering.queue_for(flow_keys[i]) for i in range(len(flow_keys))
                }
                queues = np.array([flow_to_queue[int(f)] for f in flows])
                result = simulate_queueing_latency(
                    arrivals,
                    sizes,
                    queues,
                    bootstrap_service_ns(service_samples, len(sizes), rng),
                    n_queues=8,
                    ring_capacity=ring_capacity,
                )
                per_run_tp.append(result.achieved_gbps)
                per_run_tail.append(result.summary[99])
            throughputs.append(float(np.median(per_run_tp)))
            # Fig. 15 includes the loopback cost.
            tails.append(float(np.median(per_run_tail)) + LOOPBACK_100G_US)
        knee = knee_gbps if knee_gbps is not None else max(throughputs) * 0.48
        fit = fit_piecewise_linear_quadratic(throughputs, tails, knee=knee)
        curves[cache_director] = KneeCurve(
            throughputs_gbps=throughputs, tail_latency_us=tails, fit=fit
        )
    return KneeResult(dpdk=curves[False], cachedirector=curves[True])


def format_fig15(result: KneeResult) -> str:
    """Render the Fig. 15 data points and fitted curves."""
    out = ["Fig. 15 — 99th-percentile latency vs throughput (loopback included)"]
    out.append("achieved Gbps |  DPDK p99 us |  +CD p99 us")
    for i in range(len(result.dpdk.throughputs_gbps)):
        out.append(
            f"{result.dpdk.throughputs_gbps[i]:>13.1f} | "
            f"{result.dpdk.tail_latency_us[i]:>12.1f} | "
            f"{result.cachedirector.tail_latency_us[i]:>11.1f}"
        )
    out.append(result.dpdk.fit.format_paper_style("DPDK"))
    out.append(
        f"  R2 = {result.dpdk.fit.r2_linear:.3f} (linear), "
        f"{result.dpdk.fit.r2_quadratic:.3f} (quadratic)"
    )
    out.append(result.cachedirector.fit.format_paper_style("CacheDirector"))
    out.append(
        f"  R2 = {result.cachedirector.fit.r2_linear:.3f} (linear), "
        f"{result.cachedirector.fit.r2_quadratic:.3f} (quadratic)"
    )
    return "\n".join(out)
