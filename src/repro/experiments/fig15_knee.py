"""Fig. 15 — 99th-percentile latency vs throughput knee (§5.2.2).

The stateful chain under a load sweep; below the knee tail latency
grows linearly with throughput, above it quadratically.  The paper
fits piecewise curves with the knee at 37 Gbps and reports R² for both
segments; these latencies *include* the loopback cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.nfv_common import run_nfv_experiment
from repro.net.chain import router_napt_lb_chain
from repro.net.harness import LOOPBACK_100G_US
from repro.stats.fitting import PiecewiseFit, fit_piecewise_linear_quadratic

#: Offered loads swept (Gbps); the paper sweeps 5–100.
DEFAULT_LOADS = [5.0, 10.0, 20.0, 30.0, 37.0, 45.0, 55.0, 65.0, 75.0, 90.0, 100.0]


@dataclass
class KneeCurve:
    """One tail-latency-vs-throughput curve."""

    throughputs_gbps: List[float]
    tail_latency_us: List[float]
    fit: PiecewiseFit


@dataclass
class KneeResult:
    """Fig. 15's two curves."""

    dpdk: KneeCurve
    cachedirector: KneeCurve


def _measure_samples(
    cache_director: bool, generator, micro_packets: int, seed: int
) -> np.ndarray:
    """The load-independent service-time sample for one configuration."""
    from repro.experiments.nfv_common import measure_service_times

    return measure_service_times(
        lambda: router_napt_lb_chain(hw_offload=True),
        cache_director,
        "flow-director",
        generator,
        micro_packets=micro_packets,
        seed=seed,
    )


def _simulate_load_point(
    service_samples: np.ndarray,
    generator,
    flow_keys: List[tuple],
    load: float,
    n_bulk_packets: int,
    runs: int,
    ring_capacity: int,
    burstiness: float,
    seed: int,
) -> Tuple[float, float]:
    """One (achieved Gbps, p99 us incl. loopback) point of the sweep."""
    from repro.dpdk.steering import FlowDirectorSteering
    from repro.net.harness import bootstrap_service_ns, simulate_queueing_latency

    per_run_tp: List[float] = []
    per_run_tail: List[float] = []
    for run_index in range(runs):
        rng = np.random.default_rng(seed + 50 + run_index)
        sizes, flows, arrivals = generator.generate_arrays(
            n_bulk_packets,
            rate_gbps=load,
            seed_offset=run_index,
            burstiness=burstiness,
        )
        steering = FlowDirectorSteering(8)
        flow_to_queue = {
            i: steering.queue_for(flow_keys[i]) for i in range(len(flow_keys))
        }
        queues = np.array([flow_to_queue[int(f)] for f in flows])
        result = simulate_queueing_latency(
            arrivals,
            sizes,
            queues,
            bootstrap_service_ns(service_samples, len(sizes), rng),
            n_queues=8,
            ring_capacity=ring_capacity,
        )
        per_run_tp.append(result.achieved_gbps)
        per_run_tail.append(result.summary[99])
    # Fig. 15 includes the loopback cost.
    return (
        float(np.median(per_run_tp)),
        float(np.median(per_run_tail)) + LOOPBACK_100G_US,
    )


def run_fig15_point(
    cache_director: bool,
    load_gbps: float,
    n_bulk_packets: int = 150_000,
    micro_packets: int = 3000,
    runs: int = 1,
    ring_capacity: int = 2048,
    burstiness: float = 0.45,
    seed: int = 0,
) -> Tuple[float, float]:
    """One independently-runnable sweep point of Fig. 15.

    Re-measures the configuration's service-time sample (it is seed-
    deterministic, so every point of the same arm sees the identical
    sample) and simulates a single offered load.  The lab runner fans
    these out across workers and reassembles the curves with
    :func:`assemble_fig15`, bit-identical to :func:`run_fig15`.
    """
    generator = _fig15_generator(seed)
    flow_keys = [tuple(f) for f in generator.flows]
    service_samples = _measure_samples(
        cache_director, generator, micro_packets, seed
    )
    return _simulate_load_point(
        service_samples,
        generator,
        flow_keys,
        load_gbps,
        n_bulk_packets,
        runs,
        ring_capacity,
        burstiness,
        seed,
    )


def _fig15_generator(seed: int):
    """The trace generator every Fig. 15 point shares (seed + 1)."""
    from repro.net.trace import CampusTraceGenerator

    return CampusTraceGenerator(seed=seed + 1)


def assemble_fig15(
    dpdk_points: Sequence[Tuple[float, float]],
    cachedirector_points: Sequence[Tuple[float, float]],
    knee_gbps: float = None,
) -> KneeResult:
    """Fit the two knee curves from already-simulated sweep points."""
    curves: Dict[bool, KneeCurve] = {}
    for cache_director, points in (
        (False, dpdk_points),
        (True, cachedirector_points),
    ):
        throughputs = [float(p[0]) for p in points]
        tails = [float(p[1]) for p in points]
        knee = knee_gbps if knee_gbps is not None else max(throughputs) * 0.48
        fit = fit_piecewise_linear_quadratic(throughputs, tails, knee=knee)
        curves[cache_director] = KneeCurve(
            throughputs_gbps=throughputs, tail_latency_us=tails, fit=fit
        )
    return KneeResult(dpdk=curves[False], cachedirector=curves[True])


def run_fig15(
    loads_gbps: List[float] = None,
    n_bulk_packets: int = 150_000,
    micro_packets: int = 3000,
    runs: int = 1,
    knee_gbps: float = None,
    ring_capacity: int = 2048,
    burstiness: float = 0.45,
    seed: int = 0,
) -> KneeResult:
    """Sweep offered load, collect (achieved, p99) points, fit curves.

    The knee defaults to roughly half the saturation throughput,
    mirroring the paper's 37 Gbps on a ~76 Gbps ceiling.  The buffer
    budget is two rings deep (RX ring + NIC-internal FIFO) and the
    burst modulation moderate, so the tail keeps growing with load up
    to saturation instead of pinning at one ring's depth.
    """
    loads = loads_gbps if loads_gbps is not None else list(DEFAULT_LOADS)
    generator = _fig15_generator(seed)
    flow_keys = [tuple(f) for f in generator.flows]
    points: Dict[bool, List[Tuple[float, float]]] = {False: [], True: []}
    for cache_director in (False, True):
        # The service-time distribution is load-independent; sample it
        # once per configuration.
        service_samples = _measure_samples(
            cache_director, generator, micro_packets, seed
        )
        for load in loads:
            points[cache_director].append(
                _simulate_load_point(
                    service_samples,
                    generator,
                    flow_keys,
                    load,
                    n_bulk_packets,
                    runs,
                    ring_capacity,
                    burstiness,
                    seed,
                )
            )
    return assemble_fig15(points[False], points[True], knee_gbps=knee_gbps)


def format_fig15(result: KneeResult) -> str:
    """Render the Fig. 15 data points and fitted curves."""
    out = ["Fig. 15 — 99th-percentile latency vs throughput (loopback included)"]
    out.append("achieved Gbps |  DPDK p99 us |  +CD p99 us")
    for i in range(len(result.dpdk.throughputs_gbps)):
        out.append(
            f"{result.dpdk.throughputs_gbps[i]:>13.1f} | "
            f"{result.dpdk.tail_latency_us[i]:>12.1f} | "
            f"{result.cachedirector.tail_latency_us[i]:>11.1f}"
        )
    out.append(result.dpdk.fit.format_paper_style("DPDK"))
    out.append(
        f"  R2 = {result.dpdk.fit.r2_linear:.3f} (linear), "
        f"{result.dpdk.fit.r2_quadratic:.3f} (quadratic)"
    )
    out.append(result.cachedirector.fit.format_paper_style("CacheDirector"))
    out.append(
        f"  R2 = {result.cachedirector.fit.r2_linear:.3f} (linear), "
        f"{result.cachedirector.fit.r2_quadratic:.3f} (quadratic)"
    )
    return "\n".join(out)
def fig15_to_dict(result: KneeResult) -> dict:
    """JSON-ready form of the knee curves and fits (lab/CLI ``--json``)."""

    def curve(c: KneeCurve) -> dict:
        return {
            "throughputs_gbps": [float(v) for v in c.throughputs_gbps],
            "tail_latency_us": [float(v) for v in c.tail_latency_us],
            "fit": {
                "knee": float(c.fit.knee),
                "linear_coeffs": [float(v) for v in c.fit.linear_coeffs],
                "quadratic_coeffs": [float(v) for v in c.fit.quadratic_coeffs],
                "r2_linear": float(c.fit.r2_linear),
                "r2_quadratic": float(c.fit.r2_quadratic),
            },
        }

    return {"dpdk": curve(result.dpdk), "cachedirector": curve(result.cachedirector)}
