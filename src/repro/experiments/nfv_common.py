"""Shared machinery for the NFV latency experiments (Figs. 12–15, Table 3).

One experiment = one (chain, steering, load, CacheDirector?) point:

1. microsimulate a packet sample through the full DuT to get the
   service-time distribution,
2. steer a bulk arrival stream to RX queues,
3. run the finite-buffer queueing model,
4. summarise with the paper's percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dpdk.steering import FlowDirectorSteering, RssSteering
from repro.faults.plan import FaultClock, resolve_plan
from repro.faults.streams import apply_bulk_faults
from repro.net.chain import (
    DutConfig,
    DutEnvironment,
    ServiceChain,
    router_napt_lb_chain,
    simple_forwarding_chain,
)
from repro.net.harness import (
    LatencyRunResult,
    NicModel,
    bootstrap_service_ns,
    sample_service_distribution,
    simulate_queueing_latency,
)
from repro.net.trace import CampusTraceGenerator
from repro.stats.percentiles import LatencySummary, median_of_runs, summarize_latencies

ChainFactory = Callable[[], ServiceChain]


def make_steering(kind: str, n_queues: int):
    """Instantiate a steering policy by name (``rss``/``flow-director``)."""
    if kind == "rss":
        return RssSteering(n_queues)
    if kind == "flow-director":
        return FlowDirectorSteering(n_queues)
    raise ValueError(f"unknown steering {kind!r}")


@dataclass
class NfvExperimentResult:
    """Latency + throughput of one configuration (median over runs)."""

    summary: LatencySummary
    achieved_gbps: float
    offered_gbps: float
    drop_fraction: float
    mean_service_ns: float
    latencies_us: np.ndarray  # one representative run (for CDFs)
    run_summaries: List[LatencySummary] = None  # per-run (for quartile bars)
    #: Useful-bit throughput (excludes duplicates/corrupted frames);
    #: equals :attr:`achieved_gbps` when no faults were injected.
    goodput_gbps: float = 0.0
    #: Structured fault/recovery counters, or ``None`` for a fault-free
    #: run (keeping fault-free artifacts byte-identical to pre-chaos
    #: golden numbers).
    fault_counters: Optional[Dict[str, int]] = None


def measure_service_times(
    chain_factory: ChainFactory,
    cache_director: bool,
    steering_kind: str,
    generator: CampusTraceGenerator,
    micro_packets: int = 4000,
    n_cores: int = 8,
    seed: int = 0,
    engine: str = "reference",
    faults: Optional[FaultClock] = None,
    watermarks: Optional[Tuple[int, int]] = None,
    dataplane: str = "scalar",
) -> np.ndarray:
    """Cache-simulate a packet sample; returns service times (ns).

    With a fault clock, packets lost to injected faults (wire drops,
    FCS discards, allocation failures, NF crashes) are excluded from
    the sample and accounted in the clock's structured counters.
    ``dataplane="batched"`` charges the sample through the recorded
    op-stream replay instead of per-packet calls (identical results).
    """
    env = DutEnvironment(
        DutConfig(
            cache_director=cache_director,
            n_cores=n_cores,
            seed=seed,
            engine=engine,
            watermarks=watermarks,
            dataplane=dataplane,
        ),
        chain_factory,
        faults=faults,
    )
    steering = make_steering(steering_kind, n_cores)
    packets = generator.generate(micro_packets, rate_pps=4e6, seed_offset=seed)
    queues = [steering.queue_for(p.flow_key) for p in packets]
    return sample_service_distribution(env, packets, queues)


def run_nfv_experiment(
    chain_factory: ChainFactory,
    cache_director: bool,
    steering_kind: str,
    offered_gbps: float,
    n_bulk_packets: int = 300_000,
    micro_packets: int = 4000,
    n_cores: int = 8,
    runs: int = 3,
    ring_capacity: int = 1024,
    nic: Optional[NicModel] = None,
    seed: int = 0,
    engine: str = "reference",
    fault_plan: Optional[object] = None,
    watermarks: Optional[Tuple[int, int]] = None,
    dataplane: str = "scalar",
) -> NfvExperimentResult:
    """Full pipeline for one configuration; medians over *runs*.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan` or its
    persisted dict form) turns on chaos injection: the microsimulation
    runs the full resilient DuT (backpressure, FCS discards, NF
    supervision) and the bulk stream passes through the vectorised
    wire-fault transforms.  A ``None`` plan — or one with all-zero
    rates — creates no clock and leaves every code path and RNG stream
    bit-identical to a fault-free run.
    """
    plan = resolve_plan(fault_plan)
    clock = (
        FaultClock(plan) if plan is not None and plan.rates.any_active else None
    )
    generator = CampusTraceGenerator(seed=seed + 1)
    service_samples = measure_service_times(
        chain_factory,
        cache_director,
        steering_kind,
        generator,
        micro_packets=micro_packets,
        n_cores=n_cores,
        seed=seed,
        engine=engine,
        faults=clock,
        watermarks=watermarks,
        dataplane=dataplane,
    )
    if service_samples.size == 0:
        # Every microsim packet was lost to injected faults (only
        # possible at extreme rates).  Fall back to a zero-cycle sample
        # so the queueing stage still runs — effective service then
        # degenerates to the NIC floor — and record that it happened.
        assert clock is not None
        clock.count("micro.no_service_samples")
        service_samples = np.zeros(1)
    flow_keys = [tuple(f) for f in generator.flows]
    summaries: List[LatencySummary] = []
    achieved: List[float] = []
    offered: List[float] = []
    drops: List[float] = []
    goodputs: List[float] = []
    last_run: Optional[LatencyRunResult] = None
    for run_index in range(runs):
        rng = np.random.default_rng(seed + 100 + run_index)
        sizes, flows, arrivals = generator.generate_arrays(
            n_bulk_packets, rate_gbps=offered_gbps, seed_offset=run_index
        )
        steering = make_steering(steering_kind, n_cores)
        flow_to_queue = {
            i: steering.queue_for(flow_keys[i]) for i in range(len(flow_keys))
        }
        queues = np.array([flow_to_queue[int(f)] for f in flows])
        service = bootstrap_service_ns(service_samples, len(sizes), rng)
        goodput_mask: Optional[np.ndarray] = None
        if clock is not None:
            faulted = apply_bulk_faults(clock, arrivals, sizes, queues, service)
            if faulted.arrivals_ns.size == 0:
                raise ValueError(
                    "fault plan dropped every packet in the bulk stream; "
                    "lower the drop rate or intensity"
                )
            arrivals = faulted.arrivals_ns
            sizes = faulted.sizes_bytes
            queues = faulted.queue_ids
            service = faulted.service_ns
            goodput_mask = faulted.goodput
        result = simulate_queueing_latency(
            arrivals,
            sizes,
            queues,
            service,
            n_queues=n_cores,
            nic=nic,
            ring_capacity=ring_capacity,
            goodput=goodput_mask,
        )
        summaries.append(result.summary)
        achieved.append(result.achieved_gbps)
        offered.append(result.offered_gbps)
        drops.append(result.drop_fraction)
        goodputs.append(result.goodput_gbps)
        last_run = result
    assert last_run is not None
    return NfvExperimentResult(
        summary=median_of_runs(summaries),
        achieved_gbps=float(np.median(achieved)),
        offered_gbps=float(np.median(offered)),
        drop_fraction=float(np.median(drops)),
        mean_service_ns=float(service_samples.mean()),
        latencies_us=last_run.latencies_us,
        run_summaries=summaries,
        goodput_gbps=float(np.median(goodputs)),
        fault_counters=clock.stats.to_dict() if clock is not None else None,
    )


def compare_cache_director(
    chain_factory: ChainFactory,
    steering_kind: str,
    offered_gbps: float,
    **kwargs,
) -> Dict[str, NfvExperimentResult]:
    """Run DPDK vs DPDK+CacheDirector for one configuration."""
    return {
        "dpdk": run_nfv_experiment(
            chain_factory, False, steering_kind, offered_gbps, **kwargs
        ),
        "cachedirector": run_nfv_experiment(
            chain_factory, True, steering_kind, offered_gbps, **kwargs
        ),
    }


def merge_arms(
    arms: Sequence[NfvExperimentResult],
) -> Dict[str, NfvExperimentResult]:
    """Assemble the ``(dpdk, cachedirector)`` pair a comparison returns.

    Used by the lab runner to recombine the two arms after running
    them as independent parallel tasks; ``arms`` must be ordered like
    :func:`compare_cache_director` runs them (DPDK first).
    """
    if len(arms) != 2:
        raise ValueError(f"expected 2 arms, got {len(arms)}")
    return {"dpdk": arms[0], "cachedirector": arms[1]}


def nfv_result_to_dict(result: NfvExperimentResult) -> Dict[str, object]:
    """JSON-ready form of one configuration's outcome.

    The raw per-packet latency array is summarised as a downsampled
    CDF rather than dumped verbatim — runs keep artifacts small while
    still persisting the Fig. 14a curve shape.
    """
    from repro.stats.percentiles import cdf_points

    xs, fs = cdf_points(result.latencies_us, n_points=21)
    payload = {
        "summary": result.summary.to_dict(),
        "achieved_gbps": result.achieved_gbps,
        "offered_gbps": result.offered_gbps,
        "drop_fraction": result.drop_fraction,
        "mean_service_ns": result.mean_service_ns,
        "run_summaries": [s.to_dict() for s in (result.run_summaries or [])],
        "latency_cdf_us": [float(x) for x in xs],
        "latency_cdf_f": [float(f) for f in fs],
    }
    # Fault fields only appear when faults were injected, so fault-free
    # artifacts stay byte-identical to the pre-chaos golden numbers.
    if result.fault_counters is not None:
        payload["goodput_gbps"] = result.goodput_gbps
        payload["fault_counters"] = result.fault_counters
    return payload


def comparison_to_dict(
    results: Dict[str, NfvExperimentResult]
) -> Dict[str, object]:
    """JSON-ready form of a DPDK-vs-CacheDirector comparison."""
    base = results["dpdk"]
    cd = results["cachedirector"]
    return {
        "dpdk": nfv_result_to_dict(base),
        "cachedirector": nfv_result_to_dict(cd),
        "improvement": cd.summary.improvement_over(base.summary),
    }


def format_comparison(
    results: Dict[str, NfvExperimentResult], title: str
) -> str:
    """Render a DPDK vs CacheDirector percentile table + improvements."""
    base = results["dpdk"]
    cd = results["cachedirector"]
    out = [title]
    out.append("          |    75th |    90th |    95th |    99th |    mean")
    for name, res in (("DPDK", base), ("DPDK+CD", cd)):
        s = res.summary
        out.append(
            f"{name:<9} | {s[75]:>7.1f} | {s[90]:>7.1f} | {s[95]:>7.1f} "
            f"| {s[99]:>7.1f} | {s.mean:>7.1f}  (us)"
        )
    imp = cd.summary.improvement_over(base.summary)
    out.append(
        "improve   | "
        + " | ".join(
            f"{imp[f'p{q}_abs']:>7.2f}" for q in (75, 90, 95, 99)
        )
        + f" | {imp['mean_abs']:>7.2f}  (us)"
    )
    out.append(
        "          | "
        + " | ".join(
            f"{imp[f'p{q}_rel'] * 100:>6.2f}%" for q in (75, 90, 95, 99)
        )
        + f" | {imp['mean_rel'] * 100:>6.2f}%"
    )
    out.append(
        f"throughput: {base.achieved_gbps:.2f} -> {cd.achieved_gbps:.2f} Gbps "
        f"(+{(cd.achieved_gbps - base.achieved_gbps) * 1e3:.0f} Mbps); "
        f"drops {base.drop_fraction:.1%} -> {cd.drop_fraction:.1%}"
    )
    if base.run_summaries and len(base.run_summaries) > 1:
        from repro.stats.percentiles import quartiles_of_runs

        q1, median, q3 = quartiles_of_runs(base.run_summaries, 99.0)
        out.append(
            f"p99 across runs (DPDK): median {median:.1f} us, "
            f"quartiles [{q1:.1f}, {q3:.1f}] (the paper's error bars)"
        )
    return "\n".join(out)
