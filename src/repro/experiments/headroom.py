"""§4.2 — the dynamic-headroom distribution experiment.

The paper streamed ~12.3 M campus-trace packets through CacheDirector
and measured the distribution of chosen headroom sizes: median 256 B,
95 % below 512 B, maximum 832 B — the number that sized the default
mbuf headroom.  With the XOR hash the dynamic displacement is bounded
by 7 lines past the base headroom, so the distribution is bounded by
construction; this experiment reproduces the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dpdk.steering import RssSteering
from repro.net.chain import DutConfig, DutEnvironment, simple_forwarding_chain
from repro.net.trace import CampusTraceGenerator


@dataclass
class HeadroomDistribution:
    """Summary of the chosen headroom sizes."""

    count: int
    median: int
    p95: int
    max: int


def run_headroom_experiment(
    n_packets: int = 20_000,
    n_cores: int = 8,
    seed: int = 0,
) -> HeadroomDistribution:
    """Stream campus traffic through CacheDirector, collect headrooms."""
    env = DutEnvironment(
        DutConfig(cache_director=True, n_cores=n_cores, seed=seed),
        simple_forwarding_chain,
    )
    generator = CampusTraceGenerator(seed=seed + 1)
    steering = RssSteering(n_cores)
    packets = generator.generate(n_packets, rate_pps=4e6)
    for packet in packets:
        env.process_packet(packet, steering.queue_for(packet.flow_key))
    assert env.cache_director is not None
    summary = env.cache_director.stats.summary()
    return HeadroomDistribution(
        count=summary["count"],
        median=summary["median"],
        p95=summary["p95"],
        max=summary["max"],
    )


def format_headroom(result: HeadroomDistribution) -> str:
    """Render the §4.2 statistics next to the paper's."""
    return "\n".join(
        [
            "Sec. 4.2 — dynamic headroom distribution (CacheDirector)",
            f"packets: {result.count}",
            f"median headroom: {result.median} B   (paper: 256 B)",
            f"95th percentile: {result.p95} B   (paper: <512 B)",
            f"maximum:         {result.max} B   (paper: 832 B)",
        ]
    )
def headroom_to_dict(result: HeadroomDistribution) -> dict:
    """JSON-ready form of the headroom stats (lab/CLI ``--json``)."""
    return {
        "count": int(result.count),
        "median": int(result.median),
        "p95": int(result.p95),
        "max": int(result.max),
    }
