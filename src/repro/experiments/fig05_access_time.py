"""Figs. 5 & 16 — access time from core 0 to every LLC slice (§2.2, §6).

Fig. 5a/5b: the Haswell ring — bimodal read latencies (even slices
cheaper from core 0), flat write latencies.  Fig. 16: the Skylake mesh
with 18 slices.  Both use the identical measurement procedure in
:mod:`repro.core.profiles`.
"""

from __future__ import annotations

from typing import List

from repro.cachesim.machines import HASWELL_E5_2667V3, SKYLAKE_GOLD_6134, MachineSpec
from repro.core.profiles import SliceLatencyProfile, measure_slice_latencies
from repro.core.slice_aware import SliceAwareContext


def run_fig05(
    spec: MachineSpec = HASWELL_E5_2667V3,
    core: int = 0,
    runs: int = 10,
    seed: int = 0,
) -> SliceLatencyProfile:
    """Measure per-slice read/write cycles from one core."""
    context = SliceAwareContext(spec, seed=seed)
    return measure_slice_latencies(
        context.hierarchy,
        context.hugepage,
        context.address_space.pagemap,
        core=core,
        runs=runs,
    )


def run_fig16(core: int = 0, runs: int = 10, seed: int = 0) -> SliceLatencyProfile:
    """Fig. 16: the same measurement on the Skylake model."""
    return run_fig05(spec=SKYLAKE_GOLD_6134, core=core, runs=runs, seed=seed)


def format_profile(profile: SliceLatencyProfile, title: str) -> str:
    """Render the per-slice bar values the figures plot."""
    lines: List[str] = [title]
    lines.append("slice | read cycles | write cycles")
    for s in range(profile.n_slices):
        lines.append(
            f"{s:>5} | {profile.read_cycles[s]:>11.1f} | {profile.write_cycles[s]:>12.1f}"
        )
    lines.append(
        f"read spread (NUCA): {profile.read_spread():.1f} cycles; "
        f"fastest slice from core {profile.core}: {profile.fastest_slice()}"
    )
    return "\n".join(lines)
def profile_to_dict(profile: SliceLatencyProfile) -> dict:
    """JSON-ready form of a slice-latency profile (lab/CLI ``--json``)."""
    return {
        "core": int(profile.core),
        "read_cycles": [float(c) for c in profile.read_cycles],
        "write_cycles": [float(c) for c in profile.write_cycles],
        "fastest_slice": int(profile.fastest_slice()),
        "read_spread": float(profile.read_spread()),
    }
