"""Fig. 4 — reverse-engineering the Complex Addressing hash (§2.1).

Ground truth in the simulator is the published XOR hash; the
experiment recovers it *purely through CBo-counter polling* over a
hugepage, then verifies the reconstruction over a sweep of addresses,
and renders the Fig. 4 bit matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cachesim.machines import HASWELL_E5_2667V3, MachineSpec, build_hierarchy
from repro.core.reverse_engineering import (
    PollingOracle,
    RecoveredHash,
    recover_complex_hash,
    verify_recovered_hash,
)
from repro.mem.address import CACHE_LINE, PAGE_1G
from repro.mem.hugepage import PhysicalAddressSpace


@dataclass
class HashRecoveryResult:
    """Outcome of the Fig. 4 reproduction."""

    recovered: RecoveredHash
    match_fraction: float
    ground_truth_match: bool
    addresses_polled: int


def run_fig04(
    spec: MachineSpec = HASWELL_E5_2667V3,
    n_bases: int = 4,
    verify_addresses: int = 512,
    seed: int = 0,
) -> HashRecoveryResult:
    """Recover the hash by polling and verify it.

    Args:
        spec: machine to attack (must have a power-of-two slice count).
        n_bases: base addresses probed per bit.
        verify_addresses: size of the verification sweep.
        seed: physical-layout seed.
    """
    hierarchy = build_hierarchy(spec, seed=seed)
    space = PhysicalAddressSpace(seed=seed)
    buffer = space.mmap_hugepage(PAGE_1G)
    oracle = PollingOracle(hierarchy, buffer, core=0, polls=4)
    bases = [
        buffer.phys + (i * 37 + 5) * 64 * 1024 for i in range(n_bases)
    ]
    recovered = recover_complex_hash(
        oracle,
        n_slices=spec.n_slices,
        base_addresses=bases,
        address_bits=range(6, 30),  # bits togglable inside a 1 GB page
        max_address=buffer.phys + buffer.size,
    )
    sweep = [
        buffer.phys + ((i * 2654435761) % (buffer.size - CACHE_LINE)) // CACHE_LINE * CACHE_LINE
        for i in range(verify_addresses)
    ]
    match = verify_recovered_hash(recovered, oracle, sweep)
    truth = spec.hash_factory()
    # Compare against ground truth on the recoverable bits only.
    bit_window = (1 << 30) - 1
    truth_masks = [mask & bit_window for mask in truth.masks]
    return HashRecoveryResult(
        recovered=recovered,
        match_fraction=match,
        ground_truth_match=list(recovered.hash.masks) == truth_masks,
        addresses_polled=oracle.addresses_polled,
    )


def format_fig04(result: HashRecoveryResult, max_bit: int = 30) -> str:
    """Render the recovered masks as the Fig. 4 bit matrix."""
    lines: List[str] = []
    lines.append("Fig. 4 — recovered Complex Addressing hash (polled bits 6..29)")
    header = "bit   " + " ".join(f"{b:>2}" for b in range(max_bit - 1, 5, -1))
    lines.append(header)
    for out, mask in enumerate(result.recovered.hash.masks):
        row = [f"o{out}   "]
        for b in range(max_bit - 1, 5, -1):
            row.append(" X" if mask & (1 << b) else " .")
        lines.append(" ".join(row))
    lines.append(
        f"verification sweep match: {result.match_fraction:.1%} "
        f"({result.addresses_polled} addresses polled); "
        f"matches ground truth: {result.ground_truth_match}"
    )
    return "\n".join(lines)
def fig04_to_dict(result: HashRecoveryResult) -> dict:
    """JSON-ready form of the recovery outcome (lab/CLI ``--json``)."""
    return {
        "masks": [int(m) for m in result.recovered.hash.masks],
        "probed_bits": [int(b) for b in result.recovered.probed_bits],
        "ambiguous_bits": [int(b) for b in result.recovered.ambiguous_bits],
        "residual": int(result.recovered.residual),
        "match_fraction": float(result.match_fraction),
        "ground_truth_match": bool(result.ground_truth_match),
        "addresses_polled": int(result.addresses_polled),
    }
