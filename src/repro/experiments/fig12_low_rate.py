"""Fig. 12 — 64 B packets at 1000 pps, simple forwarding (§5.1.1).

At this rate there is no queueing: the experiment isolates the pure
per-packet effect of CacheDirector.  The paper sends 5000 packets per
run and plots the 75/90/95/99th percentiles over 50 runs; the minimum
loopback latency (9 µs) is subtracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.net.chain import DutConfig, DutEnvironment, simple_forwarding_chain
from repro.net.harness import LOOPBACK_LOW_RATE_US, NicModel
from repro.net.trace import FixedSizeTraffic, TrafficClass, LOW_RATE_PPS
from repro.stats.percentiles import LatencySummary, median_of_runs, summarize_latencies


@dataclass
class LowRateResult:
    """Latency summaries for DPDK vs DPDK+CacheDirector."""

    dpdk: LatencySummary
    cachedirector: LatencySummary


def run_fig12(
    packets_per_run: int = 5000,
    runs: int = 5,
    n_cores: int = 8,
    seed: int = 0,
) -> LowRateResult:
    """Measure per-packet DuT latency at 1000 pps.

    Every packet's latency is its service time plus the NIC's fixed
    pipeline latency — queues are always empty at 1000 pps.
    """
    traffic_class = TrafficClass(packet_size=64, rate_pps=LOW_RATE_PPS, label="64B-L")
    nic = NicModel()
    summaries: Dict[bool, List[LatencySummary]] = {False: [], True: []}
    for run_index in range(runs):
        traffic = FixedSizeTraffic(traffic_class, seed=seed + run_index)
        packets = traffic.generate(packets_per_run)
        for cache_director in (False, True):
            env = DutEnvironment(
                DutConfig(cache_director=cache_director, n_cores=n_cores, seed=seed),
                simple_forwarding_chain,
            )
            queues = [p.flow.src_port % n_cores for p in packets]
            cycles = env.service_cycles(packets, queues)
            freq = env.config.spec.freq_ghz
            latencies_us = np.array(
                [
                    (c / freq + nic.fixed_latency_ns) / 1e3
                    for c in cycles
                    if c is not None
                ]
            )
            summaries[cache_director].append(summarize_latencies(latencies_us))
    return LowRateResult(
        dpdk=median_of_runs(summaries[False]),
        cachedirector=median_of_runs(summaries[True]),
    )


def format_fig12(result: LowRateResult) -> str:
    """Render the Fig. 12 box positions."""
    out = [
        "Fig. 12 — DuT latency, 64 B @ 1000 pps, simple forwarding "
        f"(loopback {LOOPBACK_LOW_RATE_US:.0f} us already excluded)"
    ]
    out.append("          |   75th |   90th |   95th |   99th  (us)")
    for name, s in (("DPDK", result.dpdk), ("DPDK+CD", result.cachedirector)):
        out.append(
            f"{name:<9} | {s[75]:>6.3f} | {s[90]:>6.3f} | {s[95]:>6.3f} | {s[99]:>6.3f}"
        )
    imp = result.cachedirector.improvement_over(result.dpdk)
    out.append(
        "rel gain  | "
        + " | ".join(f"{imp[f'p{q}_rel'] * 100:>5.2f}%" for q in (75, 90, 95, 99))
    )
    return "\n".join(out)
def fig12_to_dict(result: LowRateResult) -> dict:
    """JSON-ready form of the low-rate comparison (lab/CLI ``--json``)."""
    return {
        "dpdk": result.dpdk.to_dict(),
        "cachedirector": result.cachedirector.to_dict(),
        "improvement": result.cachedirector.improvement_over(result.dpdk),
    }
