"""Static and dynamic checkers guarding the simulation's invariants.

Two complementary layers (see ``docs/CHECKS.md``):

* :mod:`repro.analysis.simcheck` — AST-based linter enforcing the
  determinism conventions (rule codes ``SIMxxx``), run as
  ``repro check``.
* :mod:`repro.analysis.sanitizer` — opt-in runtime instrumentation
  (``RF_SANITIZE=1`` or ``sanitize=True``) catching memory-model and
  cache-coherence violations as structured :class:`SanitizerError`\\ s.
"""

from repro.analysis.sanitizer import (
    CacheSanitizer,
    SanitizerError,
    default_sanitizer,
    resolve_sanitizer,
    sanitizer_enabled,
)
from repro.analysis.simcheck import (
    CheckResult,
    Finding,
    RULES,
    run_simcheck,
)

__all__ = [
    "CacheSanitizer",
    "CheckResult",
    "Finding",
    "RULES",
    "SanitizerError",
    "default_sanitizer",
    "resolve_sanitizer",
    "run_simcheck",
    "sanitizer_enabled",
]
