"""``python -m repro.analysis`` — run the simcheck linter."""

import sys

from repro.analysis.simcheck import main

if __name__ == "__main__":
    sys.exit(main())
