"""simcheck: repo-specific static analysis for simulation invariants.

The reproduction's headline guarantee is bit-identical determinism:
parallel lab runs equal serial runs, goldens hold across machines, and
every experiment is a pure function of its ``seed``.  ``simcheck`` is
an AST-based linter (stdlib :mod:`ast`, no dependencies) that turns the
coding conventions protecting that guarantee into machine-checked
rules:

====== =================================================================
code   rule
====== =================================================================
SIM001 nondeterminism source called (``time.time``, ``random.random``,
       ``np.random.rand``, ``datetime.now``, ``os.urandom``, …)
SIM002 unseeded RNG constructed (``np.random.default_rng()`` or
       ``random.Random()`` with no arguments)
SIM003 iteration over a set literal / ``set()`` call (hash-order
       dependent) without ``sorted()``
SIM101 seed not threaded: a function taking ``seed``/``rng`` calls a
       stochastic callee (one that accepts ``seed``/``rng``) without
       passing either through
SIM102 typing lie: a ``seed``/``rng``/``Generator`` parameter defaults
       to ``None`` but is not annotated ``Optional``
SIM201 engine parity: the fast engine and the reference hierarchy
       expose different access-API surfaces (method or kwarg drift)
SIM301 experiment module not registered in ``lab/registry.py``
SIM302 experiment module missing the serializer contract (no ``run_*``
       or no ``*_to_dict`` top-level function)
SIM401 fault-injection code constructs its own RNG instead of drawing
       from ``FaultClock.stream(site)`` (breaks per-site replay)
====== =================================================================

Suppressions
------------

Append ``# simcheck: ignore[SIM001]`` (or a comma-separated list, or a
bare ``# simcheck: ignore``) to the offending line, ideally with a
justification after the bracket.  File-scope findings (SIM301/SIM302
anchor at line 1) are silenced with ``# simcheck: ignore-file[SIMxxx]``
anywhere in the file.  A module that is deliberately a support library
rather than an experiment entry point can opt out of SIM301/SIM302
with a ``# simcheck: support-module`` comment anywhere in the file.

Run it as ``repro check`` (or ``python -m repro.analysis``); see
``docs/CHECKS.md`` for the full rule catalogue and CI wiring.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CheckResult",
    "Finding",
    "RULES",
    "collect_files",
    "main",
    "run_simcheck",
]

#: Rule code → one-line description (the catalogue `--list-rules` prints).
RULES: Dict[str, str] = {
    "SIM001": "nondeterminism source called in simulation code",
    "SIM002": "RNG constructed without a seed",
    "SIM003": "iteration over an unordered set (hash-order dependent)",
    "SIM101": "seed/rng parameter not threaded to a stochastic callee",
    "SIM102": "seed/rng parameter defaults to None but is not Optional",
    "SIM201": "fast engine and reference hierarchy API surfaces differ",
    "SIM302": "experiment module misses the run_*/*_to_dict contract",
    "SIM301": "experiment module not registered in the lab registry",
    "SIM401": "fault-injection code constructs an RNG outside FaultClock",
}

#: Dotted call targets that introduce nondeterminism (after normalising
#: ``numpy`` → ``np``).  ``random.Random`` and seeded ``default_rng``
#: are the sanctioned constructors and stay off this list.
_NONDET_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.strftime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
    "random.SystemRandom",
}

#: ``np.random.<fn>`` members that are deterministic constructors and
#: therefore allowed; every other direct ``np.random`` call is flagged.
_NP_RANDOM_ALLOWED: Set[str] = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "BitGenerator",
}

#: Parameter names that carry determinism through call chains.
_SEED_PARAMS: Tuple[str, str] = ("seed", "rng")

#: Call targets that construct a fresh RNG.  Inside fault-injection
#: code (rule SIM401) every random decision must instead come from a
#: ``FaultClock.stream(site)`` draw so each site replays bit-identically
#: from the persisted :class:`~repro.faults.plan.FaultPlan`.
_RNG_CONSTRUCTORS: Set[str] = {
    "np.random.default_rng",
    "np.random.Generator",
    "np.random.PCG64",
    "np.random.PCG64DXSM",
    "np.random.Philox",
    "np.random.MT19937",
    "random.Random",
}

#: Function names that mark fault-injection code for SIM401.  The
#: lookbehind keeps "default"/"default_rng" from reading as "fault".
_FAULT_NAME_RE = re.compile(r"(?<!de)fault|inject", re.IGNORECASE)

#: Modules under the faults package are fault-injection code wholesale —
#: except the plan module itself, which hosts the sanctioned per-site
#: stream factory (``FaultClock.stream``).
_FAULT_MODULE_RE = re.compile(r"(^|/)faults/")
_FAULT_PLAN_SUFFIX = "faults/plan.py"

#: Method names shared with dict/str builtins; attribute calls to these
#: are never matched against the project signature index by name alone.
_AMBIGUOUS_METHODS: Set[str] = {"get", "items", "values", "update", "copy", "pop"}

#: The access-API surface that must stay in lock-step between the
#: reference hierarchy and the fast engine (rule SIM201).  Maps method
#: name → per-side parameter names that are allowed to be exclusive.
_PARITY_METHODS: Dict[str, Dict[str, Set[str]]] = {
    "read": {"hierarchy": set(), "engine": set()},
    "write": {"hierarchy": set(), "engine": set()},
    # The reference side owns the dispatch kwarg selecting the engine.
    "access_batch": {"hierarchy": {"engine"}, "engine": set()},
}

_SUPPRESS_RE = re.compile(
    r"#\s*simcheck:\s*ignore(?!-file)(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*simcheck:\s*ignore-file\[(?P<codes>[A-Z0-9,\s]+)\]"
)
_SUPPORT_RE = re.compile(r"#\s*simcheck:\s*support-module")


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed violation) at a location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def text(self) -> str:
        """Render in the classic ``path:line:col: CODE message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def github(self) -> str:
        """Render as a GitHub Actions workflow error annotation."""
        return (
            f"::error file={self.path},line={self.line},col={self.col},"
            f"title={self.code}::{self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for ``--json`` output."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }


@dataclass
class CheckResult:
    """Outcome of one simcheck run."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def active(self) -> List[Finding]:
        """Findings that are not suppressed (what gates the exit code)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings silenced by an ignore comment."""
        return [f for f in self.findings if f.suppressed]


@dataclass
class _FuncSig:
    """Signature facts simcheck needs about one function or method."""

    name: str
    qualname: str
    params: List[str]
    required: int
    is_method: bool
    line: int
    path: str

    def seed_positions(self) -> List[int]:
        """Indices of seed/rng parameters in positional order."""
        return [i for i, p in enumerate(self.params) if p in _SEED_PARAMS]


@dataclass
class _SourceFile:
    """A parsed source file plus its suppression metadata."""

    path: Path
    rel: str
    tree: ast.Module
    suppressions: Dict[int, Optional[Set[str]]]
    file_ignores: Set[str]
    support_module: bool


def _parse_suppressions(
    text: str,
) -> Tuple[Dict[int, Optional[Set[str]]], Set[str], bool]:
    suppress: Dict[int, Optional[Set[str]]] = {}
    file_ignores: Set[str] = set()
    support = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "simcheck" not in line:
            continue
        if _SUPPORT_RE.search(line):
            support = True
        file_match = _SUPPRESS_FILE_RE.search(line)
        if file_match is not None:
            file_ignores.update(
                c.strip() for c in file_match.group("codes").split(",") if c.strip()
            )
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppress[lineno] = None
        else:
            parsed = {c.strip() for c in codes.split(",") if c.strip()}
            existing = suppress.get(lineno)
            if existing is None and lineno in suppress:
                continue  # blanket ignore already wins
            if existing is not None:
                parsed |= existing
            suppress[lineno] = parsed
    return suppress, file_ignores, support


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


class _ImportTracker:
    """Map local names to the dotted module paths they came from."""

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Resolve a call target to a dotted path, or ``None``."""
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        dotted = ".".join(reversed(parts))
        return dotted.replace("numpy.", "np.", 1) if dotted.startswith("numpy.") else dotted


def _iter_functions(tree: ast.Module) -> Iterable[Tuple[Optional[str], ast.AST]]:
    """Yield ``(class_name, funcdef)`` for every def in a module."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, sub


def _signature(
    owner: Optional[str],
    node: ast.AST,
    rel: str,
) -> Optional[_FuncSig]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    params = [a.arg for a in args.posonlyargs + args.args]
    is_method = owner is not None and bool(params) and params[0] in ("self", "cls")
    if is_method:
        params = params[1:]
    n_defaults = len(args.defaults)
    required = len(params) - n_defaults
    kwonly = [a.arg for a in args.kwonlyargs]
    return _FuncSig(
        name=node.name,
        qualname=f"{owner}.{node.name}" if owner else node.name,
        params=params + kwonly,
        required=max(required, 0),
        is_method=is_method,
        line=node.lineno,
        path=rel,
    )


class _Index:
    """Project-wide signature and class index for cross-call rules."""

    def __init__(self, files: Sequence[_SourceFile]) -> None:
        # name → signatures (functions, methods and class constructors).
        self.by_name: Dict[str, List[_FuncSig]] = {}
        # "<path-suffix>::<Class>" → {method name → sig}.
        self.classes: Dict[str, Dict[str, _FuncSig]] = {}
        for src in files:
            for owner, node in _iter_functions(src.tree):
                sig = _signature(owner, node, src.rel)
                if sig is None:
                    continue
                if owner is not None:
                    self.classes.setdefault(
                        f"{src.rel}::{owner}", {}
                    )[sig.name] = sig
                key = sig.name
                if owner is not None and sig.name == "__init__":
                    key = owner  # constructors are called by class name
                if sig.name.startswith("__") and sig.name != "__init__":
                    continue
                self.by_name.setdefault(key, []).append(sig)

    def seeded_sigs(self, name: str) -> List[_FuncSig]:
        """Signatures under *name* — only if **all** accept seed/rng."""
        sigs = self.by_name.get(name, [])
        if not sigs:
            return []
        if all(sig.seed_positions() for sig in sigs):
            return sigs
        return []

    def find_class(self, path_suffix: str, name: str) -> Optional[Dict[str, _FuncSig]]:
        """Locate a class's method map by path suffix + class name."""
        for key, methods in self.classes.items():
            rel, _, cls = key.partition("::")
            if cls == name and rel.replace("\\", "/").endswith(path_suffix):
                return methods
        return None


def _annotation_is_optional(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return True  # unannotated: nothing to lie about
    text = ast.unparse(annotation)
    return (
        "Optional" in text
        or "None" in text
        or text in ("object", "Any", "'object'", '"Any"')
    )


class _FileVisitor(ast.NodeVisitor):
    """Per-file checks: SIM001, SIM002, SIM003, SIM101, SIM102."""

    def __init__(self, src: _SourceFile, index: _Index) -> None:
        self.src = src
        self.index = index
        self.imports = _ImportTracker(src.tree)
        self.findings: List[Finding] = []
        # Stack of seed/rng parameter-name sets for enclosing functions.
        self._seed_scope: List[Set[str]] = []
        # Stack of enclosing function names (for SIM401's name heuristic).
        self._func_stack: List[str] = []
        rel = src.rel.replace("\\", "/")
        self._fault_module = bool(
            _FAULT_MODULE_RE.search(rel)
        ) and not rel.endswith(_FAULT_PLAN_SUFFIX)
        self._fault_plan_module = rel.endswith(_FAULT_PLAN_SUFFIX)

    def _emit(self, code: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(
            Finding(code=code, path=self.src.rel, line=line, col=col, message=message)
        )

    # -- SIM001 / SIM002 / SIM101 on calls -----------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.imports.resolve_call(node.func)
        if dotted is not None:
            self._check_nondet(node, dotted)
            self._check_fault_rng(node, dotted)
        self._check_seed_threading(node)
        self.generic_visit(node)

    # -- SIM401 on RNG construction in fault-injection code -------------

    def _check_fault_rng(self, node: ast.Call, dotted: str) -> None:
        if dotted not in _RNG_CONSTRUCTORS:
            return
        if self._fault_plan_module:
            return  # FaultClock's own stream factory is the sanctioned site
        in_fault_func = any(_FAULT_NAME_RE.search(n) for n in self._func_stack)
        if not (self._fault_module or in_fault_func):
            return
        self._emit(
            "SIM401",
            node,
            f"`{dotted}()` constructed inside fault-injection code — "
            "draw fault decisions from `FaultClock.stream(site)` so "
            "every site replays bit-identically from the persisted "
            "FaultPlan",
        )

    def _check_nondet(self, node: ast.Call, dotted: str) -> None:
        if dotted in _NONDET_CALLS:
            self._emit(
                "SIM001",
                node,
                f"call to nondeterministic `{dotted}()` — simulation "
                "results must be a pure function of the seed",
            )
            return
        if dotted.startswith("random.") and dotted.count(".") == 1:
            member = dotted.split(".", 1)[1]
            if member == "Random":
                if not node.args and not node.keywords:
                    self._emit(
                        "SIM002",
                        node,
                        "`random.Random()` constructed without a seed",
                    )
            elif member[0].islower():
                self._emit(
                    "SIM001",
                    node,
                    f"call to module-level `{dotted}()` uses the global "
                    "(unseeded) RNG; use a seeded `random.Random` or "
                    "`np.random.default_rng(seed)`",
                )
            return
        if dotted.startswith("np.random."):
            member = dotted.split(".", 2)[2]
            if "." in member:
                return
            if member == "default_rng":
                if not node.args and not node.keywords:
                    self._emit(
                        "SIM002",
                        node,
                        "`np.random.default_rng()` constructed without "
                        "a seed",
                    )
            elif member not in _NP_RANDOM_ALLOWED:
                self._emit(
                    "SIM001",
                    node,
                    f"call to legacy global-state `{dotted}()`; use "
                    "`np.random.default_rng(seed)`",
                )

    def _check_seed_threading(self, node: ast.Call) -> None:
        if not self._seed_scope or not self._seed_scope[-1]:
            return
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            dotted = self.imports.resolve_call(func)
            if dotted is not None and "." in dotted:
                name = dotted.rsplit(".", 1)[1]
        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and self.imports.resolve_call(func):
                resolved = self.imports.resolve_call(func)
                if resolved and resolved.split(".", 1)[0] in (
                    "np",
                    "time",
                    "random",
                    "os",
                    "datetime",
                ):
                    return  # stdlib/numpy surface — SIM001's domain
            name = func.attr
            if name in _AMBIGUOUS_METHODS:
                return
        else:
            return
        sigs = self.index.seeded_sigs(name)
        if not sigs:
            return
        if any(isinstance(a, ast.Starred) for a in node.args) or any(
            kw.arg is None for kw in node.keywords
        ):
            return  # *args / **kwargs: not statically analysable
        kw_names = {kw.arg for kw in node.keywords if kw.arg is not None}
        if kw_names & set(_SEED_PARAMS):
            return
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id in _SEED_PARAMS:
                return
            if isinstance(arg, ast.Attribute) and arg.attr in _SEED_PARAMS:
                return
        n_pos = len(node.args)
        required = min(sig.required for sig in sigs)
        n_supplied = n_pos + len(kw_names)
        if n_supplied < required:
            return  # cannot be this callee (missing required params)
        # Positionally covered seed params count as threaded.
        if any(pos < n_pos for sig in sigs for pos in sig.seed_positions()):
            return
        seed_names = sorted(
            {p for sig in sigs for p in sig.params if p in _SEED_PARAMS}
        )
        self._emit(
            "SIM101",
            node,
            f"`{name}()` accepts {'/'.join(seed_names)} but this call "
            "threads neither, breaking the seed chain of the enclosing "
            f"function (which takes {'/'.join(sorted(self._seed_scope[-1]))})",
        )

    # -- SIM102 + seed scope on function definitions --------------------

    def _visit_funcdef(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        all_args = args.posonlyargs + args.args + args.kwonlyargs
        defaults: List[Optional[ast.expr]] = [None] * (
            len(args.posonlyargs) + len(args.args) - len(args.defaults)
        )
        defaults.extend(args.defaults)
        defaults.extend(args.kw_defaults)
        for arg, default in zip(all_args, defaults):
            annotation_text = (
                ast.unparse(arg.annotation) if arg.annotation is not None else ""
            )
            seedish = arg.arg in _SEED_PARAMS or "Generator" in annotation_text
            if (
                seedish
                and default is not None
                and isinstance(default, ast.Constant)
                and default.value is None
                and not _annotation_is_optional(arg.annotation)
            ):
                self._emit(
                    "SIM102",
                    arg,
                    f"parameter `{arg.arg}: {annotation_text} = None` "
                    "defaults to None but the annotation is not "
                    "Optional — annotate "
                    f"`Optional[{annotation_text}]`",
                )
        seed_params = {a.arg for a in all_args if a.arg in _SEED_PARAMS}
        self._seed_scope.append(seed_params)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()
        self._seed_scope.pop()

    visit_FunctionDef = _visit_funcdef
    visit_AsyncFunctionDef = _visit_funcdef

    # -- SIM003 on iteration sites --------------------------------------

    def _is_unordered_iterable(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset") and not any(
                isinstance(a, ast.Starred) for a in node.args
            )
        return False

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered_iterable(node.iter):
            self._emit(
                "SIM003",
                node.iter,
                "iterating an unordered set — wrap in sorted() so "
                "results cannot depend on hash order",
            )
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            if self._is_unordered_iterable(gen.iter):
                self._emit(
                    "SIM003",
                    gen.iter,
                    "comprehension over an unordered set — wrap in "
                    "sorted() so results cannot depend on hash order",
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


# ----------------------------------------------------------------------
# Cross-file rules
# ----------------------------------------------------------------------

def _check_engine_parity(files: Sequence[_SourceFile], index: _Index) -> List[Finding]:
    hierarchy = index.find_class("cachesim/hierarchy.py", "CacheHierarchy")
    engine = index.find_class("cachesim/engine.py", "FastEngine")
    if hierarchy is None or engine is None:
        return []
    findings: List[Finding] = []

    def emit(sig_map: Dict[str, _FuncSig], message: str) -> None:
        anchor = next(iter(sig_map.values()))
        findings.append(
            Finding(
                code="SIM201",
                path=anchor.path,
                line=anchor.line,
                col=1,
                message=message,
            )
        )

    for method, extras in _PARITY_METHODS.items():
        h_sig = hierarchy.get(method)
        e_sig = engine.get(method)
        if h_sig is None or e_sig is None:
            missing = "CacheHierarchy" if h_sig is None else "FastEngine"
            emit(
                engine if h_sig is None else hierarchy,
                f"access-API method `{method}` missing from {missing} — "
                "the engines must expose the same surface",
            )
            continue
        h_params = set(h_sig.params) - extras["hierarchy"]
        e_params = set(e_sig.params) - extras["engine"]
        if h_params != e_params:
            only_h = sorted(h_params - e_params)
            only_e = sorted(e_params - h_params)
            drift = []
            if only_h:
                drift.append(f"CacheHierarchy-only kwargs {only_h}")
            if only_e:
                drift.append(f"FastEngine-only kwargs {only_e}")
            emit(
                hierarchy,
                f"access-API method `{method}` signature drift: "
                + "; ".join(drift),
            )
    return findings


def _registry_imports(registry: _SourceFile) -> Set[str]:
    modules: Set[str] = set()
    for node in ast.walk(registry.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "repro.experiments":
                modules.update(alias.name for alias in node.names)
            elif node.module.startswith("repro.experiments."):
                modules.add(node.module.rsplit(".", 1)[1])
    return modules


def _check_experiment_hygiene(files: Sequence[_SourceFile]) -> List[Finding]:
    registry = next(
        (f for f in files if f.rel.replace("\\", "/").endswith("lab/registry.py")),
        None,
    )
    experiments = [
        f
        for f in files
        if f.path.parent.name == "experiments" and f.path.name != "__init__.py"
    ]
    if not experiments:
        return []
    findings: List[Finding] = []
    registered = _registry_imports(registry) if registry is not None else None
    for src in experiments:
        if src.support_module:
            continue
        module = src.path.stem
        has_runner = False
        has_serializer = False
        for node in src.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("run_"):
                    has_runner = True
                if node.name.endswith("_to_dict"):
                    has_serializer = True
        if not has_runner or not has_serializer:
            missing = []
            if not has_runner:
                missing.append("a `run_*` entry point")
            if not has_serializer:
                missing.append("a `*_to_dict` serializer")
            findings.append(
                Finding(
                    code="SIM302",
                    path=src.rel,
                    line=1,
                    col=1,
                    message=(
                        f"experiment module `{module}` misses "
                        + " and ".join(missing)
                        + " — every experiment must honour the "
                        "--seed/--json contract (mark deliberate "
                        "libraries with `# simcheck: support-module`)"
                    ),
                )
            )
        if registered is not None and module not in registered:
            findings.append(
                Finding(
                    code="SIM301",
                    path=src.rel,
                    line=1,
                    col=1,
                    message=(
                        f"experiment module `{module}` is not imported "
                        "by lab/registry.py — register it so `repro lab "
                        "run --all` and CI cover it (or mark it "
                        "`# simcheck: support-module`)"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _load(path: Path, root: Path) -> Optional[_SourceFile]:
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError) as exc:
        print(f"simcheck: cannot parse {path}: {exc}", file=sys.stderr)
        return None
    try:
        rel = str(path.relative_to(root))
    except ValueError:
        rel = str(path)
    suppressions, file_ignores, support = _parse_suppressions(text)
    return _SourceFile(
        path=path,
        rel=rel,
        tree=tree,
        suppressions=suppressions,
        file_ignores=file_ignores,
        support_module=support,
    )


def _apply_suppressions(
    findings: Iterable[Finding],
    files: Dict[str, _SourceFile],
) -> List[Finding]:
    out: List[Finding] = []
    for finding in findings:
        src = files.get(finding.path)
        suppressed = False
        if src is not None:
            if finding.code in src.file_ignores:
                suppressed = True
            codes = src.suppressions.get(finding.line, "absent")
            if codes is None:
                suppressed = True
            elif isinstance(codes, set) and finding.code in codes:
                suppressed = True
        if suppressed:
            finding = Finding(
                code=finding.code,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message,
                suppressed=True,
            )
        out.append(finding)
    return out


def run_simcheck(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Set[str]] = None,
    exclude: Optional[Set[str]] = None,
) -> CheckResult:
    """Run every rule over *paths* (files or directories).

    Args:
        paths: what to scan.
        root: base directory findings are reported relative to
            (default: the current working directory).
        select: restrict to a subset of rule codes.
        exclude: drop these rule codes (applied after *select*).

    Returns:
        A :class:`CheckResult`; ``result.active`` gates the exit code.
    """
    root = root if root is not None else Path.cwd()
    files = [
        src
        for src in (_load(p, root) for p in collect_files(paths))
        if src is not None
    ]
    index = _Index(files)
    findings: List[Finding] = []
    for src in files:
        visitor = _FileVisitor(src, index)
        visitor.visit(src.tree)
        findings.extend(visitor.findings)
    findings.extend(_check_engine_parity(files, index))
    findings.extend(_check_experiment_hygiene(files))
    if select:
        findings = [f for f in findings if f.code in select]
    if exclude:
        findings = [f for f in findings if f.code not in exclude]
    findings = _apply_suppressions(findings, {src.rel: src for src in files})
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return CheckResult(findings=findings, files=len(files))


def format_result(result: CheckResult, mode: str = "text") -> str:
    """Render a result as ``text``, ``json`` or ``github`` output."""
    if mode == "json":
        return json.dumps(
            {
                "files": result.files,
                "findings": [f.as_dict() for f in result.active],
                "suppressed": [f.as_dict() for f in result.suppressed],
            },
            indent=2,
            sort_keys=True,
        )
    lines: List[str] = []
    for finding in result.active:
        lines.append(finding.github() if mode == "github" else finding.text())
    lines.append(
        f"simcheck: {len(result.active)} finding(s), "
        f"{len(result.suppressed)} suppressed, {result.files} file(s) checked"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also reachable as ``repro check``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="simcheck",
        description="Static analysis of simulation-determinism invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories (default: src/repro)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--github", action="store_true", help="GitHub Actions annotations"
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        default=None,
        help="comma-separated rule codes to run",
    )
    parser.add_argument(
        "--exclude-rules",
        dest="exclude_rules",
        default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    roots = [Path(p) for p in (args.paths or [])]
    if not roots:
        default = Path("src/repro")
        if not default.is_dir():
            print(
                "simcheck: no paths given and ./src/repro not found",
                file=sys.stderr,
            )
            return 2
        roots = [default]
    select = (
        {c.strip() for c in args.select.split(",") if c.strip()}
        if args.select
        else None
    )
    exclude = (
        {c.strip() for c in args.exclude_rules.split(",") if c.strip()}
        if args.exclude_rules
        else None
    )
    result = run_simcheck(roots, select=select, exclude=exclude)
    mode = "json" if args.json else ("github" if args.github else "text")
    print(format_result(result, mode))
    return 1 if result.active else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
