"""CacheSanitizer: runtime shadow-state checking for the simulator.

The simulator's correctness rests on memory-model invariants the test
suite can only sample: an mbuf is never used or freed twice, NIC DMA
never escapes the element it targets, a cache line is resident in
exactly the slice its address hashes to, occupancy counters never count
a line twice, and CAT/DDIO way masks are honoured by every fill path.
The real hardware enforces these for free; the simulation must *check*
them.  CacheSanitizer is the ASan/TSan-style answer: an opt-in
instrumentation layer that shadows the mempool and hierarchy with
canary state and raises a structured :class:`SanitizerError` — carrying
an access-backtrace ring buffer — the moment an invariant breaks.

Enabling it
-----------

* ``RF_SANITIZE=1`` in the environment: every :class:`~repro.dpdk.
  mempool.Mempool` and :class:`~repro.cachesim.hierarchy.CacheHierarchy`
  built afterwards joins one process-global sanitizer (so DMA span
  checks see every pool).  This is how the CI ``sanitize-smoke`` job
  runs the whole lab matrix.
* ``CacheHierarchy(..., sanitize=True)`` / ``build_hierarchy(spec,
  sanitize=True)``: a private sanitizer for that hierarchy only.
* Pass one explicit ``sanitizer=CacheSanitizer()`` object to the pools
  and hierarchies that should share shadow state (what the
  fault-injection tests do).

The sanitizer never mutates simulation state — runs under
``RF_SANITIZE=1`` are bit-identical to unsanitized runs (asserted by
``tests/test_sanitizer.py`` and by the CI job comparing a sanitized
lab run against the golden baselines).

What it checks
--------------

========================  =====================================================
kind                      invariant
========================  =====================================================
``double-free``           an mbuf returned to its pool twice
``use-after-free``        a freed mbuf mutated (``append``/``set_headroom``)
``dma-span-overrun``      a DMA span escaping its mempool element
``dma-into-free``         a DMA write into an element not currently allocated
``double-residency``      a line resident in a slice it does not hash to, or
                          in two slices at once
``double-count``          a line occupying two ways of a set / shadow-map and
                          tag array disagreeing (occupancy counted twice)
``cat-violation``         a fill landing outside the CAT/DDIO way mask
``pool-corruption``       free-stack size disagreeing with the shadow free set
========================  =====================================================

Cache-state checks run as rotating partial scans every ``interval``
line events (cheap enough for whole lab runs; ``scan(h, full=True)``
sweeps everything at once).  Mbuf and DMA checks are exact and
immediate.
"""

from __future__ import annotations

import os
import weakref
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

__all__ = [
    "CacheSanitizer",
    "SanitizerError",
    "default_sanitizer",
    "resolve_sanitizer",
    "sanitizer_enabled",
]

#: Environment variable that turns the process-global sanitizer on.
ENV_VAR = "RF_SANITIZE"

#: Environment override for the partial-scan cadence (line events).
ENV_INTERVAL = "RF_SANITIZE_INTERVAL"

_TRUTHY = ("1", "true", "yes", "on")


def sanitizer_enabled() -> bool:
    """Return whether ``RF_SANITIZE`` enables the global sanitizer."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


_DEFAULT: Optional["CacheSanitizer"] = None


def default_sanitizer() -> Optional["CacheSanitizer"]:
    """The process-global sanitizer, or ``None`` when not enabled.

    Created on first use once ``RF_SANITIZE`` is truthy; shared by every
    pool and hierarchy built afterwards so DMA span checks can resolve
    any registered pool's memory.
    """
    global _DEFAULT
    if not sanitizer_enabled():
        return None
    if _DEFAULT is None:
        interval = int(os.environ.get(ENV_INTERVAL, "0") or 0)
        _DEFAULT = CacheSanitizer(interval=interval if interval > 0 else None)
    return _DEFAULT


def resolve_sanitizer(
    sanitize: Optional[bool],
    sanitizer: Optional["CacheSanitizer"],
) -> Optional["CacheSanitizer"]:
    """Resolve the (``sanitize=``, ``sanitizer=``) constructor kwargs.

    An explicit object wins; ``sanitize=True`` builds a private
    instance; ``sanitize=False`` forces off; ``None`` defers to the
    ``RF_SANITIZE`` environment switch.
    """
    if sanitizer is not None:
        return sanitizer
    if sanitize is True:
        return CacheSanitizer()
    if sanitize is False:
        return None
    return default_sanitizer()


class SanitizerError(RuntimeError):
    """A violated simulation invariant, with diagnostic context.

    Attributes:
        kind: machine-readable violation class (see the module table).
        details: structured facts about the violation (addresses,
            indices, pool names — all plain values).
        backtrace: the most recent sanitizer events (op, details)
            leading up to the violation, oldest first.
    """

    def __init__(
        self,
        kind: str,
        message: str,
        details: Optional[Dict[str, Any]] = None,
        backtrace: Tuple[Tuple[int, str, Dict[str, Any]], ...] = (),
    ) -> None:
        self.kind = kind
        self.message = message
        self.details: Dict[str, Any] = dict(details or {})
        self.backtrace = backtrace
        trail = "".join(
            f"\n    #{seq} {op} {info}" for seq, op, info in backtrace[-8:]
        )
        super().__init__(
            f"[{kind}] {message}"
            + (f"\n  details: {self.details}" if self.details else "")
            + (f"\n  recent events (oldest first):{trail}" if trail else "")
        )

    def __reduce__(
        self,
    ) -> Tuple[Any, Tuple[str, str, Dict[str, Any], Tuple[Any, ...]]]:
        # Exceptions unpickle via cls(*args); the default args tuple is
        # the formatted string, which would crash the lab runner's
        # result marshalling (BrokenProcessPool) instead of failing the
        # one task that hit the violation.
        return (
            SanitizerError,
            (self.kind, self.message, self.details, self.backtrace),
        )


class CacheSanitizer:
    """Shadow state and invariant checks for pools and hierarchies.

    Args:
        interval: line events between rotating partial scans of the
            LLC shadow state (``RF_SANITIZE_INTERVAL`` overrides the
            default for the global instance).
        scan_sets: how many ``(slice, set)`` pairs each partial scan
            covers; the cursor rotates so the whole LLC is swept every
            ``ceil(n_slices * n_sets / scan_sets)`` scans.
        ring_size: capacity of the event ring buffer attached to every
            :class:`SanitizerError`.
        strict_cat: also verify, during scans, that every occupied way
            is inside the union of defined CAT masks and the DDIO ways
            whenever CAT is enabled.
    """

    def __init__(
        self,
        interval: Optional[int] = None,
        scan_sets: int = 512,
        ring_size: int = 64,
        strict_cat: bool = True,
    ) -> None:
        self.interval = interval if interval is not None else 16384
        self.scan_sets = scan_sets
        self.strict_cat = strict_cat
        self.events: Deque[Tuple[int, str, Dict[str, Any]]] = deque(
            maxlen=ring_size
        )
        self._seq = 0
        self._tick_count = 0
        self._cursor = 0
        # Registered pools, weakly referenced: entries outlive the
        # experiment that built them only until the pool is collected,
        # so stale segments can never shadow a live pool's addresses.
        self._pools: List["weakref.ref[Any]"] = []
        self.violations = 0
        self.scans = 0

    # ------------------------------------------------------------------
    # Event ring buffer
    # ------------------------------------------------------------------

    def record(self, op: str, **details: Any) -> None:
        """Append one event to the backtrace ring buffer."""
        self._seq += 1
        self.events.append((self._seq, op, details))

    def backtrace(self) -> Tuple[Tuple[int, str, Dict[str, Any]], ...]:
        """Snapshot of the event ring buffer, oldest first."""
        return tuple(self.events)

    def _raise(self, kind: str, message: str, **details: Any) -> None:
        self.violations += 1
        raise SanitizerError(kind, message, details, self.backtrace())

    # ------------------------------------------------------------------
    # Mempool / mbuf lifecycle
    # ------------------------------------------------------------------

    def register_pool(self, pool: Any) -> None:
        """Start shadowing a mempool (called from ``Mempool.__init__``).

        The pool must expose ``name``, ``base_phys``, ``element_size``,
        ``capacity`` and ``mbufs``; the sanitizer stores its shadow
        free-set on the pool itself (``_san_free``) so the state dies
        with the pool.
        """
        pool._san_free = set(range(pool.capacity))
        # A physical range has exactly one owner: a new pool evicts any
        # previously registered pool it overlaps (experiments run back
        # to back in one process rebuild their pools at the same
        # physical base, and the stale pool may not be collected yet).
        base = pool.base_phys
        end = base + pool.element_size * pool.capacity
        kept: List["weakref.ref[Any]"] = []
        for ref in self._pools:
            old = ref()
            if old is None or old is pool:
                continue
            old_end = old.base_phys + old.element_size * old.capacity
            if old.base_phys < end and base < old_end:
                continue
            kept.append(ref)
        self._pools = kept
        self._pools.append(weakref.ref(pool))
        self.record(
            "register-pool",
            pool=pool.name,
            base=pool.base_phys,
            elements=pool.capacity,
            element_size=pool.element_size,
        )

    def on_alloc(self, pool: Any, mbuf: Any) -> None:
        """An mbuf left the free stack."""
        pool._san_free.discard(mbuf.index)
        self.record("alloc", pool=pool.name, index=mbuf.index)

    def on_free(self, pool: Any, mbuf: Any) -> None:
        """An mbuf is being returned to the pool; flags double frees."""
        free: Set[int] = pool._san_free
        if mbuf.index in free:
            self.record("free", pool=pool.name, index=mbuf.index)
            self._raise(
                "double-free",
                f"mbuf {mbuf.index} of pool {pool.name!r} freed twice",
                pool=pool.name,
                index=mbuf.index,
                base_phys=mbuf.base_phys,
            )
        free.add(mbuf.index)
        self.record("free", pool=pool.name, index=mbuf.index)

    def check_mbuf_live(self, mbuf: Any, op: str) -> None:
        """Flag mutation of an mbuf that sits on the free stack."""
        pool = mbuf.pool
        if pool is None:
            return
        if mbuf.index in pool._san_free:
            self.record(op, pool=pool.name, index=mbuf.index)
            self._raise(
                "use-after-free",
                f"{op}() on freed mbuf {mbuf.index} of pool {pool.name!r}",
                pool=pool.name,
                index=mbuf.index,
                op=op,
                base_phys=mbuf.base_phys,
            )

    # ------------------------------------------------------------------
    # DMA span containment
    # ------------------------------------------------------------------

    def check_dma_span(self, address: int, size: int, write: bool) -> None:
        """Validate a DMA span against every registered pool segment.

        A span that intersects a pool's memory must stay inside one
        element's buffer region (metadata struct excluded — the NIC
        never DMAs over an mbuf header); writes must additionally
        target a currently-allocated element.  Spans outside every
        registered pool (descriptor rings, KVS slabs) are not checked.
        """
        op = "dma-write" if write else "dma-read"
        compact = False
        for ref in self._pools:
            pool = ref()
            if pool is None:
                compact = True
                continue
            base = pool.base_phys
            end = base + pool.element_size * pool.capacity
            if address + size <= base or address >= end:
                continue
            self.record(op, address=address, size=size, pool=pool.name)
            element = (address - base) // pool.element_size
            elem_base = base + element * pool.element_size
            struct_size = pool.mbufs[0].buf_phys - pool.mbufs[0].base_phys
            buf_start = elem_base + struct_size
            elem_end = elem_base + pool.element_size
            if address < buf_start or address + size > elem_end:
                self._raise(
                    "dma-span-overrun",
                    f"{op} [{address:#x}, {address + size:#x}) escapes "
                    f"element {element} of pool {pool.name!r} "
                    f"(buffer region [{buf_start:#x}, {elem_end:#x}))",
                    pool=pool.name,
                    element=element,
                    address=address,
                    size=size,
                    buffer_start=buf_start,
                    buffer_end=elem_end,
                )
            if write and element in pool._san_free:
                self._raise(
                    "dma-into-free",
                    f"dma-write into free element {element} of pool "
                    f"{pool.name!r}",
                    pool=pool.name,
                    element=element,
                    address=address,
                    size=size,
                )
            break
        if compact:
            self._pools = [r for r in self._pools if r() is not None]

    # ------------------------------------------------------------------
    # Hierarchy shadow scans
    # ------------------------------------------------------------------

    def tick(self, hierarchy: Any, events: int = 1) -> None:
        """Count line events; run a partial scan every ``interval``."""
        self._tick_count += events
        if self._tick_count >= self.interval:
            self._tick_count = 0
            self.scan(hierarchy)

    def scan(self, hierarchy: Any, full: bool = False) -> None:
        """Validate the LLC shadow state (and pool shadow sets).

        Partial scans check a rotating window of ``scan_sets``
        ``(slice, set)`` pairs; ``full=True`` sweeps every set and
        additionally cross-checks that no line is resident in two
        slices at once.

        Raises:
            SanitizerError: on the first violation found.
        """
        llc = hierarchy.llc
        n_slices = llc.n_slices
        n_sets = llc.n_sets
        total = n_slices * n_sets
        count = total if full else min(self.scan_sets, total)
        self.scans += 1
        self.record("scan", full=full, cursor=self._cursor, sets=count)

        allowed_union: Optional[Set[int]] = None
        if self.strict_cat and llc.cat.is_enabled():
            mask = 0
            for clos_mask in llc.cat._clos_masks.values():
                mask |= clos_mask
            allowed_union = {w for w in range(llc.n_ways) if mask & (1 << w)}
            allowed_union.update(llc.ddio_way_tuple)
            if len(allowed_union) == llc.n_ways:
                allowed_union = None  # every way reachable: nothing to check

        slice_of = llc.hash.slice_of
        cursor = 0 if full else self._cursor
        for k in range(count):
            pos = (cursor + k) % total
            slc, set_i = divmod(pos, n_sets)
            slice_cache = llc.slices[slc]
            where = slice_cache._where[set_i]
            tags = slice_cache._tags[set_i]
            valid = sum(1 for t in tags if t is not None)
            if valid != len(where):
                self._raise(
                    "double-count",
                    f"slice {slc} set {set_i}: {valid} valid ways but "
                    f"{len(where)} shadow-mapped lines — a line is "
                    "counted twice in occupancy",
                    slice=slc,
                    set=set_i,
                    valid_ways=valid,
                    mapped_lines=len(where),
                )
            for line, way in where.items():
                if tags[way] != line:
                    self._raise(
                        "double-count",
                        f"slice {slc} set {set_i} way {way}: shadow map "
                        f"says line {line:#x} but tag array holds "
                        f"{tags[way]!r}",
                        slice=slc,
                        set=set_i,
                        way=way,
                        line=line,
                    )
                home = slice_of(line)
                if home != slc:
                    self._raise(
                        "double-residency",
                        f"line {line:#x} resident in slice {slc} but "
                        f"hashes to slice {home}",
                        line=line,
                        resident_slice=slc,
                        home_slice=home,
                        set=set_i,
                        way=way,
                    )
                if allowed_union is not None and way not in allowed_union:
                    self._raise(
                        "cat-violation",
                        f"line {line:#x} occupies way {way} of slice "
                        f"{slc}, outside every CAT mask and the DDIO "
                        "ways",
                        line=line,
                        slice=slc,
                        set=set_i,
                        way=way,
                        allowed=sorted(allowed_union),
                    )
        if not full:
            self._cursor = (cursor + count) % total

        if full:
            seen: Dict[int, int] = {}
            for slc in range(n_slices):
                for line in llc.slices[slc].lines():
                    other = seen.get(line)
                    if other is not None:
                        self._raise(
                            "double-residency",
                            f"line {line:#x} resident in slices {other} "
                            f"and {slc} simultaneously",
                            line=line,
                            slices=[other, slc],
                        )
                    seen[line] = slc

        compact = False
        for ref in self._pools:
            pool = ref()
            if pool is None:
                compact = True
                continue
            if len(pool._san_free) != pool.available:
                self._raise(
                    "pool-corruption",
                    f"pool {pool.name!r}: free stack holds "
                    f"{pool.available} elements but the shadow set "
                    f"tracks {len(pool._san_free)}",
                    pool=pool.name,
                    stack=pool.available,
                    shadow=len(pool._san_free),
                )
        if compact:
            self._pools = [r for r in self._pools if r() is not None]

    # ------------------------------------------------------------------
    # Fill-time way-mask check (reference engine path)
    # ------------------------------------------------------------------

    def check_fill_way(
        self,
        llc: Any,
        slice_index: int,
        line: int,
        way: Optional[int],
        allowed: Optional[Tuple[int, ...]],
        io: bool,
    ) -> None:
        """Verify a masked fill landed inside its way mask.

        Called by :meth:`SlicedLLC.fill` after a fill that carried a
        CAT or DDIO way restriction and *newly inserted* the line
        (refresh-in-place never migrates ways, so pre-existing
        placements are exempt).
        """
        if allowed is None or way is None or way in allowed:
            return
        kind = "cat-violation"
        source = "DDIO" if io else "CAT"
        self._raise(
            kind,
            f"{source} fill of line {line:#x} landed in way {way} of "
            f"slice {slice_index}, outside allowed ways {tuple(allowed)}",
            line=line,
            slice=slice_index,
            way=way,
            allowed=list(allowed),
            io=io,
        )
