"""Module import graph + call graph over the project's Python sources.

The graph resolves considerably more than a name index:

* **methods** — ``self.method()`` walks the enclosing class and its
  project-local bases; ``obj.method()`` uses local type inference
  (``obj = ClassName(...)`` assignments, parameter annotations, and
  per-class attribute types recovered from ``__init__``);
* **decorators** — a decorated function keeps its identity (call edges
  into the name reach the def) and the decorator expression itself
  becomes a ``decorator`` edge;
* **``functools.partial``** — ``partial(f, ...)`` adds a ``partial``
  edge to ``f`` from the enclosing function;
* **callable references** — a function passed as an argument or
  keyword (``ExperimentSpec(runner=run_fig04)``,
  ``set_defaults(func=_cmd_check)``) adds a ``ref`` edge, so the lab
  registry's entry points stay connected to the graph;
* **string-named entry points** — ``ExperimentSpec(name="fig04",
  runner=run_fig04)`` records ``"fig04" -> <node id>`` in
  :attr:`CallGraph.entry_points`, and ``getattr(obj, "method")(...)``
  with a constant string resolves like an attribute access.

Node ids are ``"<rel-path>::<qualname>"`` (``repro/dpdk/pmd.py::
PollModeDriver.rx_burst``).  Construction sorts the input file list
and every internal index, so the graph is a pure function of the file
*set* — module ordering cannot change it (property-tested).
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.simcheck import collect_files

__all__ = [
    "CallGraph",
    "CallSite",
    "FuncNode",
    "build_callgraph",
]

#: Method names shared with dict/list/str builtins: never resolved by
#: name alone (a unique-name fallback would invent edges to them).
_AMBIGUOUS_METHODS: Set[str] = {
    "get",
    "items",
    "values",
    "keys",
    "update",
    "copy",
    "pop",
    "append",
    "extend",
    "add",
    "remove",
    "sort",
    "split",
    "join",
    "read",
    "write",
    "run",
    "close",
    "open",
    "format",
    "count",
    "index",
    "insert",
    "clear",
}

#: ``Callable[..., X]`` in an annotation: calling the annotated name
#: yields an ``X``.
_CALLABLE_RETURN_RE = re.compile(
    r"Callable\[.*?,\s*(?:[\"'])?([A-Za-z_][A-Za-z0-9_\.]*)(?:[\"'])?\]\s*$"
)

#: ``List[X]`` / ``Sequence[X]`` / ... in an annotation: iterating the
#: annotated name yields ``X`` values.
_CONTAINER_ELEM_RE = re.compile(
    r"^(?:typing\.)?(?:List|Sequence|Tuple|Iterable|Iterator|Set|"
    r"FrozenSet|Deque|list|tuple|set|frozenset)"
    r"\[\s*(?:[\"'])?([A-Za-z_][A-Za-z0-9_\.]*)"
)


@dataclass(frozen=True)
class CallSite:
    """One resolved edge: *caller* invokes (or references) *callee*."""

    callee: str
    line: int
    col: int
    #: How many loops enclose the callsite inside the calling function.
    loop_depth: int
    #: ``call`` | ``ref`` | ``decorator`` | ``partial`` | ``getattr``.
    kind: str


@dataclass
class FuncNode:
    """One function or method definition in the scanned tree."""

    node_id: str
    rel: str
    module: str
    name: str
    qualname: str
    class_name: Optional[str]
    line: int
    params: List[str]
    defaults: Dict[str, bool]  # param name -> has a default value
    decorators: List[str]
    tree: ast.AST = field(repr=False)

    def seed_params(self) -> List[str]:
        """Parameters that carry determinism (``seed``/``rng``)."""
        return [p for p in self.params if p in ("seed", "rng")]


@dataclass
class _ClassInfo:
    rel: str
    name: str
    line: int
    bases: List[str]
    methods: Dict[str, str]  # method name -> node id
    attr_types: Dict[str, str]  # self.<attr> -> class name
    attr_elem_types: Dict[str, str]  # self.<attr> -> element class name


class CallGraph:
    """The whole-program view: functions, edges, imports, entry points."""

    def __init__(self) -> None:
        self.functions: Dict[str, FuncNode] = {}
        self.edges: Dict[str, List[CallSite]] = {}
        #: module rel-path -> sorted rel-paths it imports (project-only).
        self.imports: Dict[str, List[str]] = {}
        #: registry string name -> node id (``ExperimentSpec(name=...,
        #: runner=...)`` and friends).
        self.entry_points: Dict[str, str] = {}
        self.files: int = 0
        self._classes: Dict[str, _ClassInfo] = {}  # "<rel>::<Class>"

    # -- queries -------------------------------------------------------

    def callees_of(self, node_id: str) -> List[CallSite]:
        """Outgoing edges of one function, in source order."""
        return list(self.edges.get(node_id, []))

    def callers_of(self, node_id: str) -> List[str]:
        """Ids of every function with an edge into *node_id*, sorted."""
        return sorted(
            caller
            for caller, sites in self.edges.items()
            if any(site.callee == node_id for site in sites)
        )

    def n_edges(self) -> int:
        """Total resolved edges."""
        return sum(len(sites) for sites in self.edges.values())

    def find(self, pattern: str) -> List[str]:
        """Node ids whose qualname equals or ends with *pattern*.

        ``"PollModeDriver.rx_burst"`` and ``"run_fleet_cell"`` both
        work; matches are sorted for determinism.
        """
        out = []
        for node_id, fn in self.functions.items():
            if fn.qualname == pattern or fn.qualname.endswith("." + pattern):
                out.append(node_id)
        return sorted(out)

    def class_info(self, rel: str, name: str) -> Optional[_ClassInfo]:
        """Class metadata by defining file + class name."""
        return self._classes.get(f"{rel}::{name}")

    def classes_named(self, name: str) -> List[_ClassInfo]:
        """Every project class called *name*, sorted by defining file."""
        return sorted(
            (c for c in self._classes.values() if c.name == name),
            key=lambda c: c.rel,
        )

    def class_has_method(self, class_name: str, method: str) -> bool:
        """Whether any project class named *class_name* defines *method*."""
        return any(method in c.methods for c in self.classes_named(class_name))

    def overrides_of(self, class_name: str, method: str) -> List[str]:
        """Node ids of *method* overrides in subclasses of *class_name*.

        Used for dispatch widening: a call that resolves to an abstract
        base method really executes one of these bodies.
        """
        out: List[str] = []
        for key in sorted(self._classes):
            info = self._classes[key]
            if info.name == class_name or method not in info.methods:
                continue
            if self._derives_from(info, class_name):
                out.append(info.methods[method])
        return sorted(out)

    def _derives_from(self, info: _ClassInfo, base_name: str) -> bool:
        seen: Set[str] = set()
        queue = list(info.bases)
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            if name == base_name:
                return True
            for cls in self.classes_named(name):
                queue.extend(cls.bases)
        return False


# ----------------------------------------------------------------------
# Per-file parsing
# ----------------------------------------------------------------------


class _Aliases:
    """Local name -> dotted path, from the file's import statements."""

    def __init__(self, tree: ast.Module) -> None:
        self.map: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.map[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.map[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def dotted(self, name: str) -> Optional[str]:
        return self.map.get(name)


@dataclass
class _Source:
    path: Path
    rel: str
    module: str
    tree: ast.Module
    aliases: _Aliases


def _rel_to_module(rel: str) -> str:
    rel = rel.replace("\\", "/")
    if rel.endswith("/__init__.py"):
        rel = rel[: -len("/__init__.py")]
    elif rel.endswith(".py"):
        rel = rel[: -len(".py")]
    return rel.replace("/", ".")


def _load_sources(paths: Sequence[Path], root: Path) -> List[_Source]:
    sources: List[_Source] = []
    for path in collect_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError) as exc:
            print(f"deepcheck: cannot parse {path}: {exc}", file=sys.stderr)
            continue
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        rel = rel.replace("\\", "/")
        sources.append(
            _Source(
                path=path,
                rel=rel,
                module=_rel_to_module(rel),
                tree=tree,
                aliases=_Aliases(tree),
            )
        )
    sources.sort(key=lambda s: s.rel)
    return sources


def _iter_defs(
    tree: ast.Module,
) -> Iterator[Tuple[Optional[ast.ClassDef], ast.AST]]:
    """Yield ``(owning class or None, funcdef)`` for every def.

    Nested functions are yielded with their outermost owner so their
    bodies still contribute callsites (attributed to the enclosing
    def via ``_funcdef_for_walk``).
    """
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node, sub


def _params_of(node: ast.AST) -> Tuple[List[str], Dict[str, bool]]:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    n_positional = len(names)
    n_defaults = len(args.defaults)
    has_default = {
        name: i >= n_positional - n_defaults for i, name in enumerate(names)
    }
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        names.append(arg.arg)
        has_default[arg.arg] = default is not None
    return names, has_default


def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """The class name an annotation pins, if recoverable.

    Handles plain names (``Mbuf``), dotted names, ``Optional[X]`` and
    ``Callable[..., X]`` (the *return* type — calling the annotated
    name yields an ``X``).
    """
    if annotation is None:
        return None
    text = ast.unparse(annotation)
    match = _CALLABLE_RETURN_RE.search(text)
    if match is not None:
        return match.group(1).rsplit(".", 1)[-1]
    text = text.strip("'\"")
    for wrapper in ("Optional[", "typing.Optional["):
        if text.startswith(wrapper) and text.endswith("]"):
            text = text[len(wrapper) : -1]
    # PEP 604 optional: ``X | None`` / ``None | X``.
    parts = [p.strip() for p in text.split("|")]
    non_none = [p for p in parts if p != "None"]
    if len(non_none) == 1:
        text = non_none[0]
    name = text.rsplit(".", 1)[-1]
    if name and name[0].isupper() and name.isidentifier():
        return name
    return None


def _annotation_elem_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """The element class of a container annotation, if recoverable.

    ``List[NetworkFunction]`` -> ``NetworkFunction``: iterating the
    annotated value yields instances of that class.
    """
    if annotation is None:
        return None
    text = ast.unparse(annotation).strip("'\"")
    for wrapper in ("Optional[", "typing.Optional["):
        if text.startswith(wrapper) and text.endswith("]"):
            text = text[len(wrapper) : -1]
    match = _CONTAINER_ELEM_RE.match(text)
    if match is None:
        return None
    name = match.group(1).rsplit(".", 1)[-1]
    if name and name[0].isupper() and name.isidentifier():
        return name
    return None


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------


class _Builder:
    def __init__(self, sources: List[_Source]) -> None:
        self.sources = sources
        self.graph = CallGraph()
        self.graph.files = len(sources)
        #: dotted module -> rel path.
        self.module_index: Dict[str, str] = {
            src.module: src.rel for src in sources
        }
        #: function name -> sorted node ids (module-level defs only).
        self.by_name: Dict[str, List[str]] = {}
        #: method name -> sorted node ids (across every class).
        self.by_method: Dict[str, List[str]] = {}
        #: class name -> sorted "<rel>::<Class>" keys.
        self.class_keys: Dict[str, List[str]] = {}
        #: "<rel>::<qualname>" ids of module-level functions per module.
        self.module_funcs: Dict[str, Dict[str, str]] = {}

    # -- pass 1: declarations ------------------------------------------

    def collect(self) -> None:
        for src in self.sources:
            self.module_funcs.setdefault(src.rel, {})
            for node in src.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._collect_class(src, node)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._collect_function(src, None, node)
        for index in (self.by_name, self.by_method, self.class_keys):
            for key in index:
                index[key].sort()

    def _collect_function(
        self,
        src: _Source,
        owner: Optional[ast.ClassDef],
        node: ast.AST,
    ) -> FuncNode:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qualname = f"{owner.name}.{node.name}" if owner else node.name
        node_id = f"{src.rel}::{qualname}"
        params, defaults = _params_of(node)
        fn = FuncNode(
            node_id=node_id,
            rel=src.rel,
            module=src.module,
            name=node.name,
            qualname=qualname,
            class_name=owner.name if owner else None,
            line=node.lineno,
            params=params,
            defaults=defaults,
            decorators=[ast.unparse(d) for d in node.decorator_list],
            tree=node,
        )
        self.graph.functions[node_id] = fn
        if owner is None:
            self.by_name.setdefault(node.name, []).append(node_id)
            self.module_funcs[src.rel][node.name] = node_id
        else:
            self.by_method.setdefault(node.name, []).append(node_id)
        return fn

    def _collect_class(self, src: _Source, node: ast.ClassDef) -> None:
        methods: Dict[str, str] = {}
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._collect_function(src, node, sub)
                methods[sub.name] = fn.node_id
        bases = []
        for base in node.bases:
            text = ast.unparse(base).rsplit(".", 1)[-1]
            if text.isidentifier():
                bases.append(text)
        info = _ClassInfo(
            rel=src.rel,
            name=node.name,
            line=node.lineno,
            bases=bases,
            methods=methods,
            attr_types={},
            attr_elem_types={},
        )
        self.graph._classes[f"{src.rel}::{node.name}"] = info
        self.class_keys.setdefault(node.name, []).append(
            f"{src.rel}::{node.name}"
        )

    # -- pass 2: per-class attribute types -----------------------------

    def infer_attr_types(self) -> None:
        for key in sorted(self.graph._classes):
            info = self.graph._classes[key]
            for method_id in sorted(info.methods.values()):
                fn = self.graph.functions[method_id]
                assert isinstance(
                    fn.tree, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                src = self._source_for(fn.rel)
                param_types = self._param_types(src, fn.tree)
                for stmt in ast.walk(fn.tree):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    annotation: Optional[ast.expr] = None
                    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                        target, value = stmt.targets[0], stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        target, value = stmt.target, stmt.value
                        annotation = stmt.annotation
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    cls = _annotation_class(annotation)
                    if cls is None and value is not None:
                        cls = self._value_class(src, value, param_types)
                    if cls is not None and target.attr not in info.attr_types:
                        info.attr_types[target.attr] = cls
                    elem = _annotation_elem_class(annotation)
                    if elem is None and value is not None:
                        elem = self._value_elem_class(fn.tree, value)
                    if (
                        elem is not None
                        and elem in self.class_keys
                        and target.attr not in info.attr_elem_types
                    ):
                        info.attr_elem_types[target.attr] = elem

    def _param_types(
        self,
        src: _Source,
        node: ast.AST,
    ) -> Dict[str, str]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        types: Dict[str, str] = {}
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            cls = _annotation_class(arg.annotation)
            if cls is not None and cls in self.class_keys:
                types[arg.arg] = cls
        return types

    def _value_elem_class(
        self, func: ast.AST, value: ast.expr
    ) -> Optional[str]:
        """Element class of ``self.x = list(param)`` / ``= param``.

        Looks the name up in the enclosing function's *container*
        parameter annotations (``nfs: Sequence[NetworkFunction]``).
        """
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        name: Optional[str] = None
        if isinstance(value, ast.Name):
            name = value.id
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("list", "tuple", "sorted")
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Name)
        ):
            name = value.args[0].id
        if name is None:
            return None
        args = func.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.arg == name:
                return _annotation_elem_class(arg.annotation)
        return None

    def _value_class(
        self,
        src: _Source,
        value: ast.expr,
        local_types: Dict[str, str],
        attr_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """The project class an expression evaluates to, if inferable."""
        if (
            attr_types is not None
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            # `hierarchy = self.hierarchy` keeps the attribute's class.
            return attr_types.get(value.attr)
        if isinstance(value, ast.Call):
            callee = value.func
            if isinstance(callee, ast.Name):
                name = callee.id
                dotted = src.aliases.dotted(name)
                if dotted is not None:
                    name = dotted.rsplit(".", 1)[-1]
                if name in self.class_keys:
                    return name
                # Calling a Callable[..., X]-annotated local.
                if callee.id in local_types:
                    return local_types[callee.id]
            elif isinstance(callee, ast.Attribute):
                if callee.attr in self.class_keys:
                    return callee.attr
        elif isinstance(value, ast.Name) and value.id in local_types:
            return local_types[value.id]
        return None

    # -- pass 3: imports + edges ---------------------------------------

    def link(self) -> None:
        for src in self.sources:
            self._link_imports(src)
            for owner, node in _iter_defs(src.tree):
                fn_id = (
                    f"{src.rel}::{owner.name}.{node.name}"  # type: ignore[union-attr]
                    if owner
                    else f"{src.rel}::{node.name}"  # type: ignore[union-attr]
                )
                self._link_function(src, owner, node, fn_id)
        for caller in self.graph.edges:
            self.graph.edges[caller].sort(key=lambda s: (s.line, s.col, s.callee))

    def _link_imports(self, src: _Source) -> None:
        targets: Set[str] = set()
        for node in ast.walk(src.tree):
            modules: List[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                modules = [node.module] + [
                    f"{node.module}.{alias.name}" for alias in node.names
                ]
            for dotted in modules:
                rel = self.module_index.get(dotted)
                if rel is not None and rel != src.rel:
                    targets.add(rel)
        self.graph.imports[src.rel] = sorted(targets)

    def _link_function(
        self,
        src: _Source,
        owner: Optional[ast.ClassDef],
        node: ast.AST,
        fn_id: str,
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        local_types = self._param_types(src, node)
        attr_types: Optional[Dict[str, str]] = None
        if owner is not None:
            info = self.graph.class_info(src.rel, owner.name)
            if info is not None:
                attr_types = info.attr_types
        # One linear pre-pass for `x = ClassName(...)` local inference.
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    cls = self._value_class(
                        src, stmt.value, local_types, attr_types
                    )
                    if cls is not None:
                        local_types.setdefault(target.id, cls)
        # `for nf in self.nfs:` / `for nf in nfs:` — loop targets take
        # the container's element class.
        elem_params: Dict[str, str] = {}
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            elem = _annotation_elem_class(arg.annotation)
            if elem is not None and elem in self.class_keys:
                elem_params[arg.arg] = elem
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            elem = self._iter_elem_class(src, owner, stmt.iter, elem_params)
            if elem is not None and elem in self.class_keys:
                local_types.setdefault(stmt.target.id, elem)
        sites: List[CallSite] = self.graph.edges.setdefault(fn_id, [])
        for decorator in node.decorator_list:
            target = self._resolve_expr(src, owner, decorator, local_types)
            if target is not None:
                sites.append(
                    CallSite(
                        callee=target,
                        line=decorator.lineno,
                        col=decorator.col_offset,
                        loop_depth=0,
                        kind="decorator",
                    )
                )
        self._walk_body(src, owner, node, local_types, sites)

    def _walk_body(
        self,
        src: _Source,
        owner: Optional[ast.ClassDef],
        func: ast.AST,
        local_types: Dict[str, str],
        sites: List[CallSite],
    ) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))

        def visit(node: ast.AST, loop_depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_depth = loop_depth
                if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                    child_depth += 1
                elif isinstance(
                    child,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                ):
                    child_depth += 1
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and child is not func:
                    # Nested defs contribute their own callsites at the
                    # enclosing function's current loop depth.
                    pass
                if isinstance(child, ast.Call):
                    self._link_call(
                        src, owner, child, local_types, sites, child_depth
                    )
                visit(child, child_depth)

        visit(func, 0)

    def _link_call(
        self,
        src: _Source,
        owner: Optional[ast.ClassDef],
        call: ast.Call,
        local_types: Dict[str, str],
        sites: List[CallSite],
        loop_depth: int,
    ) -> None:
        kind = "call"
        target: Optional[str] = None
        func = call.func
        # functools.partial(f, ...) -> partial edge to f.
        dotted = self._dotted(src, func)
        if dotted in ("functools.partial", "partial"):
            if call.args:
                target = self._resolve_expr(
                    src, owner, call.args[0], local_types
                )
                if target is not None:
                    sites.append(
                        CallSite(
                            callee=target,
                            line=call.lineno,
                            col=call.col_offset,
                            loop_depth=loop_depth,
                            kind="partial",
                        )
                    )
            target = None
        # getattr(obj, "method")(...) -> getattr edge.
        elif (
            isinstance(func, ast.Call)
            and isinstance(func.func, ast.Name)
            and func.func.id == "getattr"
            and len(func.args) >= 2
            and isinstance(func.args[1], ast.Constant)
            and isinstance(func.args[1].value, str)
        ):
            target = self._resolve_attr(
                src, owner, func.args[0], func.args[1].value, local_types
            )
            kind = "getattr"
        else:
            target = self._resolve_expr(src, owner, func, local_types)
        if target is not None:
            sites.append(
                CallSite(
                    callee=target,
                    line=call.lineno,
                    col=call.col_offset,
                    loop_depth=loop_depth,
                    kind=kind,
                )
            )
        # Callable references in arguments/keywords -> ref edges, and
        # ExperimentSpec(name="...", runner=...) -> entry point.
        entry_name: Optional[str] = None
        entry_target: Optional[str] = None
        for kw in call.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                if isinstance(kw.value.value, str):
                    entry_name = kw.value.value
            if isinstance(kw.value, (ast.Name, ast.Attribute)):
                ref = self._resolve_expr(src, owner, kw.value, local_types)
                if ref is not None:
                    sites.append(
                        CallSite(
                            callee=ref,
                            line=kw.value.lineno,
                            col=kw.value.col_offset,
                            loop_depth=loop_depth,
                            kind="ref",
                        )
                    )
                    if kw.arg in ("runner", "task_runner", "func"):
                        entry_target = entry_target or ref
        for arg in call.args:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref = self._resolve_expr(src, owner, arg, local_types)
                if ref is not None:
                    sites.append(
                        CallSite(
                            callee=ref,
                            line=arg.lineno,
                            col=arg.col_offset,
                            loop_depth=loop_depth,
                            kind="ref",
                        )
                    )
        if entry_name is not None and entry_target is not None:
            self.graph.entry_points.setdefault(entry_name, entry_target)

    # -- resolution helpers --------------------------------------------

    def _iter_elem_class(
        self,
        src: _Source,
        owner: Optional[ast.ClassDef],
        iterable: ast.expr,
        elem_params: Dict[str, str],
    ) -> Optional[str]:
        """Element class of a ``for`` iterable, if recoverable."""
        if isinstance(iterable, ast.Name):
            return elem_params.get(iterable.id)
        if (
            isinstance(iterable, ast.Attribute)
            and isinstance(iterable.value, ast.Name)
            and iterable.value.id == "self"
            and owner is not None
        ):
            info = self.graph.class_info(src.rel, owner.name)
            if info is not None:
                return info.attr_elem_types.get(iterable.attr)
        return None

    def _source_for(self, rel: str) -> _Source:
        for src in self.sources:
            if src.rel == rel:
                return src
        raise KeyError(rel)

    def _dotted(self, src: _Source, func: ast.expr) -> Optional[str]:
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = src.aliases.dotted(node.id) or node.id
        parts.append(base)
        return ".".join(reversed(parts))

    def _resolve_expr(
        self,
        src: _Source,
        owner: Optional[ast.ClassDef],
        expr: ast.expr,
        local_types: Dict[str, str],
    ) -> Optional[str]:
        """Resolve a callable expression to a node id, or ``None``."""
        if isinstance(expr, ast.Name):
            return self._resolve_name(src, expr.id)
        if isinstance(expr, ast.Attribute):
            receiver = expr.value
            return self._resolve_attr(
                src, owner, receiver, expr.attr, local_types
            )
        return None

    def _resolve_name(self, src: _Source, name: str) -> Optional[str]:
        # 1. A def in the same module.
        local = self.module_funcs.get(src.rel, {}).get(name)
        if local is not None:
            return local
        # 2. An imported project function or class.
        dotted = src.aliases.dotted(name)
        if dotted is not None:
            resolved = self._resolve_dotted(dotted)
            if resolved is not None:
                return resolved
        # 3. A project class in the same module (allocation).
        ctor = self._constructor_for(src.rel, name)
        if ctor is not None:
            return ctor
        # 4. A unique project-wide function name.
        candidates = self.by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        """``repro.dpdk.pmd.PollModeDriver`` -> its constructor, etc."""
        module, _, attr = dotted.rpartition(".")
        rel = self.module_index.get(module)
        if rel is None or not attr:
            # A bare module import cannot be called.
            return None
        fn = self.module_funcs.get(rel, {}).get(attr)
        if fn is not None:
            return fn
        return self._constructor_for(rel, attr)

    def _constructor_for(self, rel: str, class_name: str) -> Optional[str]:
        info = self.graph.class_info(rel, class_name)
        if info is None:
            # The class may live in (or be re-exported from) another
            # module; a unique project-wide name still resolves.
            keys = self.class_keys.get(class_name, [])
            if len(keys) != 1:
                return None
            info = self.graph._classes[keys[0]]
        ctor = self._lookup_method(info, "__init__")
        if ctor is not None:
            return ctor
        # A class with no explicit __init__ anchors at its first method
        # (construction still makes the class hot), else nothing.
        if info.methods:
            return info.methods[sorted(info.methods)[0]]
        return None

    def _lookup_method(self, info: _ClassInfo, method: str) -> Optional[str]:
        """MRO-ish lookup: the class, then its project-local bases."""
        seen: Set[str] = set()
        queue: List[_ClassInfo] = [info]
        while queue:
            current = queue.pop(0)
            key = f"{current.rel}::{current.name}"
            if key in seen:
                continue
            seen.add(key)
            if method in current.methods:
                return current.methods[method]
            for base in current.bases:
                for base_key in self.class_keys.get(base, []):
                    queue.append(self.graph._classes[base_key])
        return None

    def _resolve_attr(
        self,
        src: _Source,
        owner: Optional[ast.ClassDef],
        receiver: ast.expr,
        method: str,
        local_types: Dict[str, str],
    ) -> Optional[str]:
        receiver_class: Optional[_ClassInfo] = None
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and owner is not None:
                receiver_class = self.graph.class_info(src.rel, owner.name)
            elif receiver.id in local_types:
                receiver_class = self._unique_class(local_types[receiver.id])
            else:
                dotted = src.aliases.dotted(receiver.id)
                if dotted is not None:
                    # module.func / package.Class
                    resolved = self._resolve_dotted(f"{dotted}.{method}")
                    if resolved is not None:
                        return resolved
                    cls = dotted.rsplit(".", 1)[-1]
                    receiver_class = self._unique_class(cls)
        elif (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and owner is not None
        ):
            info = self.graph.class_info(src.rel, owner.name)
            if info is not None:
                attr_cls = info.attr_types.get(receiver.attr)
                if attr_cls is not None:
                    receiver_class = self._unique_class(attr_cls)
        if receiver_class is not None:
            resolved = self._lookup_method(receiver_class, method)
            if resolved is not None:
                return resolved
        # Fallback: a method name defined by exactly one project class.
        if method not in _AMBIGUOUS_METHODS:
            candidates = self.by_method.get(method, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _unique_class(self, name: str) -> Optional[_ClassInfo]:
        keys = self.class_keys.get(name, [])
        if not keys:
            return None
        # Identically named classes are rare; the first (sorted) key
        # keeps resolution deterministic either way.
        return self.graph._classes[keys[0]]


def build_callgraph(
    paths: Sequence[Path],
    root: Optional[Path] = None,
) -> CallGraph:
    """Build the whole-program graph for *paths* (files/directories).

    The result is a pure function of the file *set*: inputs are sorted
    and every index iterates in sorted order, so shuffling the input
    list (or the filesystem's directory order) cannot change the graph.
    """
    root = root if root is not None else Path.cwd()
    sources = _load_sources(paths, root)
    builder = _Builder(sources)
    builder.collect()
    builder.infer_attr_types()
    builder.link()
    return builder.graph


def iter_loops(func: ast.AST) -> Iterable[Tuple[ast.AST, int]]:
    """Yield ``(loop node, nesting depth)`` for every loop in a def."""

    def visit(node: ast.AST, depth: int) -> Iterator[Tuple[ast.AST, int]]:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_depth += 1
                yield child, child_depth
            yield from visit(child, child_depth)

    return visit(func, 0)
