"""Hot-path propagation from the dataplane roots + static cost model.

The per-packet path of the reproduction starts at a handful of known
roots — the PMD burst loops, ``ServiceChain`` processing, the KVS
serve loop, and the fleet cell's serve loop.  Everything those
functions reach through the call graph runs once (or many times) *per
packet/request*; everything else runs per experiment.  This module
computes, for every reachable function:

* ``depth`` — minimum call-edge distance from any root;
* ``loop_weight`` — the loop nesting accumulated along the *hottest*
  path from a root: every callsite contributes the number of loops
  enclosing it in its caller, so a function invoked from a doubly
  nested loop three frames below a root carries the product of all
  those loops (capped — cycles in the graph would otherwise spin);
* ``root`` — the root that path starts from.

plus a static per-call cost estimate for each function body (AST node
weights, loop bodies multiplied by :data:`LOOP_FACTOR` per nesting
level).  The vectorization worklist ranks functions by::

    score = est_cost * (1 + loop_weight)

i.e. estimated per-packet cost x static call-frequency weight along
the hottest path from a dataplane root (see docs/CHECKS.md).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.deepcheck.callgraph import CallGraph, FuncNode

__all__ = [
    "DEFAULT_ROOT_PATTERNS",
    "LOOP_FACTOR",
    "MAX_LOOP_WEIGHT",
    "HotInfo",
    "estimate_cost",
    "propagate_hotness",
    "resolve_roots",
    "subtree_cost",
]

#: Qualname (suffix) patterns of the known dataplane roots.  These are
#: the functions the NFV/KVS/fleet serve loops enter per packet or per
#: request; hotness flows down their call trees.
DEFAULT_ROOT_PATTERNS: Tuple[str, ...] = (
    # DPDK poll-mode driver: the per-burst RX/TX path.
    "PollModeDriver.rx_burst",
    "PollModeDriver.tx_burst",
    # NFV chain processing (per packet).
    "ServiceChain.process",
    "DutEnvironment.process_packet",
    # KVS request loop (per request).
    "KvsServer.serve_one",
    "KvsServer.run",
    # Fleet serving (per cell / per request).
    "run_fleet_cell",
    "FleetServer.serve",
)

#: Cost multiplier per loop nesting level in the static cost model.
LOOP_FACTOR = 8

#: Exponent cap for loop nesting (cost model and path weight): beyond
#: triple nesting the estimate is saturated anyway, and the cap is what
#: guarantees propagation terminates on cyclic call graphs.
MAX_LOOP_WEIGHT = 6

#: AST node type -> abstract cost units (very roughly: interpreter
#: dispatch + attribute/materialization overhead a vectorized rewrite
#: would amortize away).
_NODE_COST: Dict[type, int] = {
    ast.Call: 4,
    ast.Attribute: 1,
    ast.Subscript: 1,
    ast.BinOp: 1,
    ast.UnaryOp: 1,
    ast.Compare: 1,
    ast.BoolOp: 1,
    ast.IfExp: 1,
}


@dataclass(frozen=True)
class HotInfo:
    """Hot-path facts for one function."""

    depth: int
    loop_weight: int
    root: str

    def frequency_weight(self) -> int:
        """The ranking multiplier (1 + accumulated loop nesting)."""
        return 1 + self.loop_weight


def resolve_roots(
    graph: CallGraph,
    patterns: Optional[Sequence[str]] = None,
) -> List[str]:
    """Node ids matching the root *patterns* (sorted, deduplicated).

    Unknown patterns are skipped silently: the analyzer must keep
    working while the dataplane is refactored out from under it.
    """
    matched: List[str] = []
    for pattern in patterns if patterns is not None else DEFAULT_ROOT_PATTERNS:
        matched.extend(graph.find(pattern))
    return sorted(set(matched))


def propagate_hotness(
    graph: CallGraph,
    roots: Optional[Sequence[str]] = None,
) -> Dict[str, HotInfo]:
    """Propagate hotness from *roots* down the call graph.

    Monotone fixpoint: a function's ``loop_weight`` is the maximum over
    incoming hot edges of ``caller_weight + callsite_loop_depth``
    (clamped at :data:`MAX_LOOP_WEIGHT` so call-graph cycles — which
    are legal — terminate); ``depth`` is the smallest depth achieving
    that weight.  Deterministic: the worklist drains in sorted order.
    """
    root_ids = (
        list(roots) if roots is not None else resolve_roots(graph)
    )
    hot: Dict[str, HotInfo] = {}
    for root_id in root_ids:
        if root_id in graph.functions:
            hot[root_id] = HotInfo(depth=0, loop_weight=0, root=root_id)
    pending = sorted(hot)
    while pending:
        caller = pending.pop(0)
        info = hot[caller]
        for site in graph.callees_of(caller):
            callee = site.callee
            if callee not in graph.functions:
                continue
            weight = min(info.loop_weight + site.loop_depth, MAX_LOOP_WEIGHT)
            candidate = HotInfo(
                depth=info.depth + 1, loop_weight=weight, root=info.root
            )
            current = hot.get(callee)
            if current is None or (
                candidate.loop_weight,
                -candidate.depth,
            ) > (current.loop_weight, -current.depth):
                hot[callee] = candidate
                if callee not in pending:
                    pending.append(callee)
                    pending.sort()
    return hot


def estimate_cost(fn: FuncNode) -> int:
    """Static per-call cost estimate of one function body.

    Sums :data:`_NODE_COST` weights over the body AST, multiplying
    nodes inside loops by ``LOOP_FACTOR ** nesting`` (comprehensions
    count as loops; nesting capped at 3 levels).  The absolute scale is
    meaningless — only the ordering matters for the worklist.
    """
    total = 0

    def visit(node: ast.AST, loop_depth: int) -> None:
        nonlocal total
        for child in ast.iter_child_nodes(node):
            child_depth = loop_depth
            if isinstance(
                child,
                (
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            ):
                child_depth += 1
            weight = _NODE_COST.get(type(child))
            if weight is not None:
                total += weight * LOOP_FACTOR ** min(child_depth, 3)
            visit(child, child_depth)

    visit(fn.tree, 0)
    return total


#: Saturation ceiling for inclusive costs: deep loop towers multiply
#: fast, and past this point the ordering is already decided.
_COST_CAP = 5_000_000


def subtree_cost(
    graph: CallGraph,
    node_id: str,
    cache: Optional[Dict[str, int]] = None,
) -> int:
    """Inclusive per-call cost: own body + every callee's subtree.

    Each callsite contributes its target's inclusive cost multiplied
    by ``LOOP_FACTOR ** loop_depth`` (the callee runs once per
    iteration).  Calls that resolve to a method of a project base
    class are *dispatch-widened*: the cost charged is the maximum over
    the base method and every subclass override, so an abstract
    ``NetworkFunction.process`` is priced at its most expensive
    implementation.  Cycles are cut (the back edge contributes
    nothing) and results saturate at :data:`_COST_CAP`.
    """
    cache = cache if cache is not None else {}
    return _subtree_cost(graph, node_id, cache, set())


def _subtree_cost(
    graph: CallGraph,
    node_id: str,
    cache: Dict[str, int],
    stack: Set[str],
) -> int:
    cached = cache.get(node_id)
    if cached is not None:
        return cached
    fn = graph.functions.get(node_id)
    if fn is None:
        return 0
    total = estimate_cost(fn)
    stack = stack | {node_id}
    for site in graph.callees_of(node_id):
        if site.kind not in ("call", "getattr", "partial"):
            continue
        factor = LOOP_FACTOR ** min(site.loop_depth, 3)
        candidates = [site.callee]
        callee = graph.functions.get(site.callee)
        if callee is not None and callee.class_name is not None:
            candidates.extend(
                graph.overrides_of(callee.class_name, callee.name)
            )
        best = 0
        for candidate in candidates:
            if candidate in stack:
                continue
            best = max(best, _subtree_cost(graph, candidate, cache, stack))
        total = min(total + factor * best, _COST_CAP)
    cache[node_id] = total
    return total
