"""Interprocedural seed/RNG taint analysis (the ``FLOW0xx`` family).

simcheck's SIM101/102 reason about one file at a time with a
signature index; this pass has the whole call graph, so it can follow
a seed across a call boundary and prove it was dropped on the floor:

* **FLOW001** — a function that *has* a seed/rng in scope calls a
  function that *accepts* one (with a default) without forwarding it.
  The callee silently falls back to its default stream — the exact
  shape of the fig04 dropped-seed bug fixed in PR 3.
* **FLOW002** — a seeded context (seed/rng parameter, or a method of a
  class whose ``__init__`` takes one) constructs a fresh RNG from
  constants only.  Deriving from the ambient seed is fine — the fault
  layer's per-site streams (``default_rng([plan.seed, crc32(site)])``)
  and the purpose-keyed ``default_rng([seed, 101])`` idiom both pass,
  because the constructor arguments are seed-tainted.
* **FLOW003** — code reachable from a lab registry entry point mutates
  a module-level object in place (``append``/``update``/subscript
  store/...).  Lab experiments run in worker processes; module state
  mutated there diverges between workers and silently differs from a
  serial run.  Rebinding a module global (``global X; X = ...``) is
  exempt: the registry's idempotent build-once cache is that idiom.

Taint is syntactic but interprocedural where it matters: a name is
tainted if it is a ``seed``/``rng`` parameter or was assigned from a
tainted expression, and *any* ``<obj>.seed``-like attribute read is
tainted (``plan.seed``, ``self.base_seed``), which is what lets
derived streams through without a type system.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.deepcheck.callgraph import CallGraph, FuncNode
from repro.analysis.simcheck import Finding

__all__ = [
    "RNG_CONSTRUCTORS",
    "SEED_ATTRS",
    "analyze_seed_flow",
    "collect_module_globals",
    "tainted_names",
    "worker_reachable",
]

#: Attribute names whose *read* carries determinism taint.
SEED_ATTRS: Set[str] = {
    "seed",
    "rng",
    "_rng",
    "base_seed",
    "seed_seq",
    "streams",
}

#: Callable names that construct a fresh RNG stream.
RNG_CONSTRUCTORS: Set[str] = {
    "default_rng",
    "RandomState",
    "Random",
    "SeedSequence",
    "PCG64",
    "Philox",
}

#: Method names that mutate a list/dict/set in place.
_MUTATORS: Set[str] = {
    "append",
    "extend",
    "add",
    "update",
    "insert",
    "setdefault",
    "remove",
    "discard",
    "clear",
    "popitem",
}


def _iter_calls(fn: FuncNode) -> Iterator[Tuple[ast.Call, int]]:
    """Yield ``(call, loop_depth)`` for every call in *fn*'s body."""

    def visit(node: ast.AST, depth: int) -> Iterator[Tuple[ast.Call, int]]:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(
                child,
                (
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            ):
                child_depth += 1
            if isinstance(child, ast.Call):
                yield child, child_depth
            yield from visit(child, child_depth)

    return visit(fn.tree, 0)


def _expr_tainted(expr: ast.expr, tainted: Set[str]) -> bool:
    """Whether *expr* contains any seed-tainted name or attribute."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
        if isinstance(node, ast.Attribute) and node.attr in SEED_ATTRS:
            return True
    return False


def tainted_names(fn: FuncNode) -> Set[str]:
    """Seed-tainted local names of *fn*: seed params + assignments.

    Two fixed propagation passes over the assignments in source order —
    enough for the straight-line ``rng = default_rng(seed)`` /
    ``streams = make_streams(rng)`` chains this codebase writes.
    """
    tainted: Set[str] = set(fn.seed_params())
    for _ in range(2):
        for node in ast.walk(fn.tree):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _expr_tainted(value, tainted):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            tainted.add(elt.id)
    return tainted


def _class_is_seeded(graph: CallGraph, fn: FuncNode) -> bool:
    """Whether *fn* is a method of a class whose ``__init__`` is seeded."""
    if fn.class_name is None:
        return False
    info = graph.class_info(fn.rel, fn.class_name)
    if info is None:
        return False
    ctor_id = info.methods.get("__init__")
    if ctor_id is None:
        return False
    return bool(graph.functions[ctor_id].seed_params())


def _call_target(
    graph: CallGraph, fn: FuncNode, call: ast.Call
) -> Optional[FuncNode]:
    """The resolved callee of one AST call, matched by position."""
    for site in graph.callees_of(fn.node_id):
        if (
            site.line == call.lineno
            and site.col == call.col_offset
            and site.kind in ("call", "getattr")
        ):
            return graph.functions.get(site.callee)
    return None


def _callable_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _seed_forwarded(call: ast.Call, callee: FuncNode, tainted: Set[str]) -> bool:
    """Whether *call* threads a seed into *callee* by any route."""
    seed_params = callee.seed_params()
    # Explicit keyword, or a **kwargs splat that could carry one.
    for kw in call.keywords:
        if kw.arg is None or kw.arg in seed_params:
            return True
    # Enough positionals to cover the first seed parameter.
    positions = [callee.params.index(p) for p in seed_params]
    if positions and len(call.args) > min(positions):
        return True
    # Any tainted expression anywhere in the call (seed wrapped in a
    # config object, rng passed under another parameter name, ...).
    for arg in call.args:
        if _expr_tainted(arg, tainted):
            return True
    for kw in call.keywords:
        if _expr_tainted(kw.value, tainted):
            return True
    return False


def _flow001(graph: CallGraph, fn: FuncNode, tainted: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    seen_lines: Set[int] = set()
    for call, _depth in _iter_calls(fn):
        callee = _call_target(graph, fn, call)
        if callee is None or callee.node_id == fn.node_id:
            continue
        seed_params = callee.seed_params()
        # Only defaulted seed params can be dropped *silently*; a
        # mandatory one raises TypeError at the callsite.
        if not seed_params or not all(
            callee.defaults.get(p, False) for p in seed_params
        ):
            continue
        if _seed_forwarded(call, callee, tainted):
            continue
        if call.lineno in seen_lines:
            continue
        seen_lines.add(call.lineno)
        findings.append(
            Finding(
                code="FLOW001",
                path=fn.rel,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"seed/rng in scope but not forwarded to "
                    f"'{callee.qualname}' (accepts "
                    f"'{', '.join(seed_params)}'): the callee falls back "
                    f"to its default stream (fig04 dropped-seed class)"
                ),
            )
        )
    return findings


def _flow002(graph: CallGraph, fn: FuncNode, tainted: Set[str]) -> List[Finding]:
    seeded = bool(fn.seed_params()) or _class_is_seeded(graph, fn)
    if not seeded:
        return []
    findings: List[Finding] = []
    for call, _depth in _iter_calls(fn):
        if _callable_name(call) not in RNG_CONSTRUCTORS:
            continue
        args: List[ast.expr] = list(call.args) + [
            kw.value for kw in call.keywords
        ]
        if any(_expr_tainted(arg, tainted) for arg in args):
            continue  # derived stream (plan.seed, [seed, purpose], ...)
        findings.append(
            Finding(
                code="FLOW002",
                path=fn.rel,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"'{_callable_name(call)}' re-seeded from constants "
                    f"inside seeded '{fn.qualname}': derive the stream "
                    f"from the ambient seed instead"
                ),
            )
        )
    return findings


def collect_module_globals(tree: ast.Module) -> Set[str]:
    """Module-level names bound by assignment (mutation candidates)."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def worker_reachable(graph: CallGraph) -> Dict[str, str]:
    """Node id -> the registry entry point that reaches it.

    BFS from every string-named entry point (``ExperimentSpec(name=...,
    runner=...)`` and split ``task_runner`` targets) over all edge
    kinds — this is the code that executes inside lab worker processes.
    """
    origin: Dict[str, str] = {}
    pending: List[str] = []
    for name in sorted(graph.entry_points):
        target = graph.entry_points[name]
        if target in graph.functions and target not in origin:
            origin[target] = name
            pending.append(target)
    while pending:
        current = pending.pop(0)
        for site in graph.callees_of(current):
            callee = site.callee
            if callee in graph.functions and callee not in origin:
                origin[callee] = origin[current]
                pending.append(callee)
    return origin


def _local_names(fn: FuncNode) -> Set[str]:
    """Names bound inside *fn* (params, assignments, loop targets)."""
    bound: Set[str] = set(fn.params)
    for node in ast.walk(fn.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        bound.add(sub.id)
        elif isinstance(node, (ast.AnnAssign, ast.For, ast.AsyncFor)):
            target = node.target
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return bound


def _flow003(
    fn: FuncNode,
    module_globals: Set[str],
    entry: str,
) -> List[Finding]:
    declared_global: Set[str] = set()
    for node in ast.walk(fn.tree):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    # A name rebound or bound locally shadows the module global —
    # unless declared `global`, in which case plain rebinding is the
    # exempt cache idiom and only in-place mutation is flagged.
    shadowed = _local_names(fn) - declared_global
    candidates = module_globals - shadowed
    findings: List[Finding] = []
    for node in ast.walk(fn.tree):
        name: Optional[str] = None
        where: Optional[ast.AST] = None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in candidates
        ):
            name, where = node.func.value.id, node
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                list(node.targets)
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in candidates
                ):
                    name, where = target.value.id, node
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(target, ast.Name)
                    and target.id in declared_global
                    and target.id in module_globals
                ):
                    name, where = target.id, node
        if name is not None and where is not None:
            findings.append(
                Finding(
                    code="FLOW003",
                    path=fn.rel,
                    line=getattr(where, "lineno", fn.line),
                    col=getattr(where, "col_offset", 0),
                    message=(
                        f"module-level '{name}' mutated in place on a "
                        f"lab-worker path (reached from entry point "
                        f"'{entry}'): state diverges across worker "
                        f"processes"
                    ),
                )
            )
    return findings


def analyze_seed_flow(
    graph: CallGraph,
    module_trees: Optional[Dict[str, ast.Module]] = None,
) -> List[Finding]:
    """Run FLOW001/002/003 over the whole graph; sorted findings.

    *module_trees* (rel path -> parsed module) enables FLOW003's
    module-global collection; without it only FLOW001/002 run.
    """
    findings: List[Finding] = []
    globals_by_rel: Dict[str, Set[str]] = {}
    if module_trees:
        for rel in sorted(module_trees):
            globals_by_rel[rel] = collect_module_globals(module_trees[rel])
    reachable = worker_reachable(graph)
    for node_id in sorted(graph.functions):
        fn = graph.functions[node_id]
        tainted = tainted_names(fn)
        has_context = bool(tainted) or _class_is_seeded(graph, fn)
        if has_context:
            findings.extend(_flow001(graph, fn, tainted))
            findings.extend(_flow002(graph, fn, tainted))
        entry = reachable.get(node_id)
        if entry is not None and globals_by_rel.get(fn.rel):
            findings.extend(_flow003(fn, globals_by_rel[fn.rel], entry))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
