"""deepcheck: whole-program static analysis for the reproduction.

Where :mod:`repro.analysis.simcheck` lints one file at a time against
the repo's determinism conventions, deepcheck builds a *whole-program*
view — a module import graph and a call graph that resolves methods,
decorators, ``functools.partial`` targets and the lab registry's
string-named entry points — and runs three passes on top of it:

1. **Hot-path propagation** (:mod:`~repro.analysis.deepcheck.hotpath`):
   seeds known dataplane roots (the PMD burst loops, ``ServiceChain``
   processing, the KVS serve loop, ``run_fleet_cell``) and propagates
   hotness through call edges, accumulating the loop depth of every
   callsite on the way down.
2. **Interprocedural seed/RNG taint**
   (:mod:`~repro.analysis.deepcheck.dataflow`): real data-flow across
   call boundaries — dropped seeds (the fig04 class of bug), RNG
   streams re-seeded from constants, and module-level state mutated in
   code that runs inside lab worker processes.
3. **Rule families** (:mod:`~repro.analysis.deepcheck.rules`):
   ``PERF0xx`` (scalar Python on hot paths: per-packet loops, object
   allocation and attribute churn in hot loops, ``list.append``,
   per-element numpy calls, scalar engine calls where a batch API
   exists) and ``FLOW0xx`` (the seed/state findings above).

The headline artifact is the **ranked vectorization worklist**
(:mod:`~repro.analysis.deepcheck.report`): hot functions ordered by
estimated per-packet cost x call-frequency weight, the execution plan
for the ROADMAP item-2 vectorized-dataplane refactor.

Run it as ``repro deepcheck report|worklist|graph``; see
``docs/CHECKS.md`` ("Deep checks") for the rule catalogue, the ranking
formula and the suppression-baseline workflow.
"""

from repro.analysis.deepcheck.callgraph import (
    CallGraph,
    CallSite,
    FuncNode,
    build_callgraph,
)
from repro.analysis.deepcheck.hotpath import (
    DEFAULT_ROOT_PATTERNS,
    HotInfo,
    estimate_cost,
    propagate_hotness,
    resolve_roots,
)
from repro.analysis.deepcheck.report import (
    DEEP_RULES,
    DeepcheckResult,
    WorklistEntry,
    analyze,
    load_baseline,
    write_baseline,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "DEEP_RULES",
    "DEFAULT_ROOT_PATTERNS",
    "DeepcheckResult",
    "FuncNode",
    "HotInfo",
    "WorklistEntry",
    "analyze",
    "build_callgraph",
    "estimate_cost",
    "load_baseline",
    "propagate_hotness",
    "resolve_roots",
    "write_baseline",
]
