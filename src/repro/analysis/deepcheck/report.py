"""Deepcheck orchestration: findings, baselines, the ranked worklist.

``analyze()`` builds the call graph, propagates hotness, runs the
FLOW and PERF passes, applies the two suppression layers, and ranks
every hot function into the **vectorization worklist**::

    score = subtree_cost * (1 + loop_weight)

estimated *inclusive* per-call cost (own AST weights plus every
callee's subtree, dispatch-widened over subclass overrides) times the
static call-frequency weight accumulated along the hottest path from a
dataplane root.  The top of the list is the execution plan for the
ROADMAP item-2 vectorized-dataplane refactor.

Suppression layers:

* ``# deepcheck: ignore[CODE,...]`` on the offending line — for
  *justified* exceptions (intentional scalar reference paths); the
  justification lives in the surrounding code.
* A committed **baseline file** (JSON) of finding fingerprints
  ``"CODE:path:symbol"`` — pre-existing findings accepted as debt.
  Fingerprints use the enclosing function, not line numbers, so the
  baseline survives unrelated edits.  CI fails on any finding not in
  the baseline; ``--write-baseline`` refreshes it deliberately.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.deepcheck.callgraph import (
    CallGraph,
    build_callgraph,
)
from repro.analysis.deepcheck.dataflow import analyze_seed_flow
from repro.analysis.deepcheck.hotpath import (
    HotInfo,
    estimate_cost,
    propagate_hotness,
    resolve_roots,
    subtree_cost,
)
from repro.analysis.deepcheck.rules import perf_findings
from repro.analysis.simcheck import Finding, collect_files

__all__ = [
    "DEEP_RULES",
    "DeepcheckResult",
    "WorklistEntry",
    "analyze",
    "fingerprint",
    "format_report",
    "format_worklist",
    "load_baseline",
    "write_baseline",
]

#: Rule catalogue (code -> one-line description), mirrored in
#: docs/CHECKS.md.
DEEP_RULES: Dict[str, str] = {
    "PERF001": "per-item call to a project function inside a hot loop",
    "PERF002": "object allocation inside a hot loop",
    "PERF003": "list.append accumulation inside a hot loop",
    "PERF004": "numpy call inside a scalar hot loop",
    "PERF005": "scalar engine call in a hot loop where a batch API exists",
    "FLOW001": "seed/rng in scope but not forwarded across a call boundary",
    "FLOW002": "RNG re-seeded from constants inside a seeded context",
    "FLOW003": "module-level state mutated on a lab-worker path",
}

_SUPPRESS_RE = re.compile(
    r"#\s*deepcheck:\s*ignore\[(?P<codes>[A-Z0-9,\s]+)\]"
)

_BASELINE_VERSION = 1


@dataclass(frozen=True)
class WorklistEntry:
    """One hot function, ranked for vectorization."""

    node_id: str
    path: str
    qualname: str
    line: int
    root: str
    depth: int
    loop_weight: int
    est_cost: int
    subtree: int
    score: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "path": self.path,
            "qualname": self.qualname,
            "line": self.line,
            "root": self.root,
            "depth": self.depth,
            "loop_weight": self.loop_weight,
            "est_cost": self.est_cost,
            "subtree": self.subtree,
            "score": self.score,
        }


@dataclass
class DeepcheckResult:
    """Everything one deepcheck run produced."""

    files: int
    n_functions: int
    n_edges: int
    n_entry_points: int
    roots: List[str]
    hot_count: int
    worklist: List[WorklistEntry]
    active: List[Finding]
    suppressed: List[Finding]
    baselined: List[Finding]
    graph: CallGraph = dataclasses.field(repr=False)

    def summary(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "functions": self.n_functions,
            "edges": self.n_edges,
            "entry_points": self.n_entry_points,
            "roots": self.roots,
            "hot_functions": self.hot_count,
            "findings": len(self.active),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }


def _load_trees(
    paths: Sequence[Path], root: Path
) -> Tuple[Dict[str, ast.Module], Dict[str, List[str]]]:
    """rel path -> parsed module + raw lines (for suppressions)."""
    trees: Dict[str, ast.Module] = {}
    lines: Dict[str, List[str]] = {}
    for path in collect_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError) as exc:
            print(f"deepcheck: cannot parse {path}: {exc}", file=sys.stderr)
            continue
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        rel = rel.replace("\\", "/")
        trees[rel] = tree
        lines[rel] = text.splitlines()
    return trees, lines


def _suppressions_for(lines: List[str]) -> Dict[int, Set[str]]:
    """line number -> codes suppressed by a ``# deepcheck:`` comment."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {
            c.strip() for c in match.group("codes").split(",") if c.strip()
        }
        out.setdefault(lineno, set()).update(codes)
    return out


def _symbol_for(graph: CallGraph, rel: str, line: int) -> str:
    """Qualname of the function enclosing *line* in *rel* (or module)."""
    best: Optional[str] = None
    best_line = -1
    for fn in graph.functions.values():
        if fn.rel == rel and fn.line <= line and fn.line > best_line:
            best, best_line = fn.qualname, fn.line
    return best if best is not None else "<module>"


def fingerprint(graph: CallGraph, finding: Finding) -> str:
    """Stable id of a finding: ``CODE:path:enclosing-symbol``.

    No line numbers — the baseline survives edits that move code
    around without changing what the finding is about.
    """
    symbol = _symbol_for(graph, finding.path, finding.line)
    return f"{finding.code}:{finding.path}:{symbol}"


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints accepted by the committed baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "fingerprints" not in data:
        raise ValueError(f"not a deepcheck baseline: {path}")
    return set(data["fingerprints"])


def write_baseline(path: Path, graph: CallGraph, findings: Sequence[Finding]) -> None:
    """Write the baseline covering *findings* (sorted, deduplicated)."""
    prints = sorted({fingerprint(graph, f) for f in findings})
    path.write_text(
        json.dumps(
            {"version": _BASELINE_VERSION, "fingerprints": prints},
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )


def _build_worklist(
    graph: CallGraph, hot: Dict[str, HotInfo]
) -> List[WorklistEntry]:
    entries: List[WorklistEntry] = []
    cost_cache: Dict[str, int] = {}
    for node_id in sorted(hot):
        fn = graph.functions[node_id]
        info = hot[node_id]
        entries.append(
            WorklistEntry(
                node_id=node_id,
                path=fn.rel,
                qualname=fn.qualname,
                line=fn.line,
                root=info.root,
                depth=info.depth,
                loop_weight=info.loop_weight,
                est_cost=estimate_cost(fn),
                subtree=subtree_cost(graph, node_id, cost_cache),
                score=subtree_cost(graph, node_id, cost_cache)
                * info.frequency_weight(),
            )
        )
    entries.sort(key=lambda e: (-e.score, e.node_id))
    return entries


def analyze(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    root_patterns: Optional[Sequence[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> DeepcheckResult:
    """Run the full deepcheck pipeline over *paths*.

    Args:
        paths: files or directories to scan.
        root: base directory findings are reported relative to.
        root_patterns: override the dataplane root patterns.
        baseline: accepted fingerprints; matching findings move to
            ``baselined`` instead of ``active``.
    """
    root = root if root is not None else Path.cwd()
    graph = build_callgraph(paths, root=root)
    trees, lines = _load_trees(paths, root)
    roots = resolve_roots(graph, root_patterns)
    hot = propagate_hotness(graph, roots)
    findings = perf_findings(graph, hot, trees) + analyze_seed_flow(
        graph, trees
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    active: List[Finding] = []
    suppressed: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        codes = _suppressions_for(lines.get(finding.path, [])).get(
            finding.line, set()
        )
        if finding.code in codes:
            suppressed.append(dataclasses.replace(finding, suppressed=True))
        elif baseline and fingerprint(graph, finding) in baseline:
            baselined.append(dataclasses.replace(finding, suppressed=True))
        else:
            active.append(finding)
    return DeepcheckResult(
        files=graph.files,
        n_functions=len(graph.functions),
        n_edges=graph.n_edges(),
        n_entry_points=len(graph.entry_points),
        roots=roots,
        hot_count=len(hot),
        worklist=_build_worklist(graph, hot),
        active=active,
        suppressed=suppressed,
        baselined=baselined,
        graph=graph,
    )


def format_worklist(
    result: DeepcheckResult, mode: str = "text", top: Optional[int] = None
) -> str:
    """Render the ranked vectorization worklist."""
    entries = result.worklist if top is None else result.worklist[:top]
    if mode == "json":
        return json.dumps(
            {
                "ranking": "score = subtree_cost * (1 + loop_weight)",
                "worklist": [e.as_dict() for e in entries],
            },
            indent=2,
            sort_keys=True,
        )
    lines = [
        f"vectorization worklist — top {len(entries)} of "
        f"{len(result.worklist)} hot functions "
        f"(score = subtree cost x (1 + loop_weight))",
        f"{'#':>3} {'score':>9} {'subtree':>8} {'own':>6} {'lw':>3} "
        f"{'d':>2}  location",
    ]
    for rank, entry in enumerate(entries, start=1):
        lines.append(
            f"{rank:>3} {entry.score:>9} {entry.subtree:>8} "
            f"{entry.est_cost:>6} {entry.loop_weight:>3} {entry.depth:>2}  "
            f"{entry.path}:{entry.line} {entry.qualname}"
        )
    return "\n".join(lines)


def format_report(
    result: DeepcheckResult, mode: str = "text", top: int = 10
) -> str:
    """Render findings + summary (text/json/github)."""
    if mode == "json":
        return json.dumps(
            {
                "summary": result.summary(),
                "findings": [f.as_dict() for f in result.active],
                "suppressed": [f.as_dict() for f in result.suppressed],
                "baselined": [f.as_dict() for f in result.baselined],
                "worklist": [e.as_dict() for e in result.worklist],
            },
            indent=2,
            sort_keys=True,
        )
    lines: List[str] = []
    for finding in result.active:
        lines.append(finding.github() if mode == "github" else finding.text())
    summary = result.summary()
    lines.append(
        f"deepcheck: {summary['files']} files, "
        f"{summary['functions']} functions, {summary['edges']} edges, "
        f"{summary['hot_functions']} hot from {len(result.roots)} roots; "
        f"{len(result.active)} findings "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined)"
    )
    if result.active:
        lines.append("")
        lines.append(format_worklist(result, "text", top=top))
    return "\n".join(lines)
