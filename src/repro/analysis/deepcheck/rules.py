"""Hot-path performance rules (the ``PERF0xx`` family).

These rules only fire inside functions the hot-path propagation
reached from a dataplane root (:mod:`~repro.analysis.deepcheck.hotpath`)
— scalar Python in cold setup code is fine; the same line inside the
per-packet path is the 10-100x headroom ROADMAP item 2 is after.

* **PERF001** — a loop on the hot path invokes a project function per
  iteration (the per-mbuf Python loop: ``for mbuf in burst:
  hierarchy.read(...)``).  The fix is a batch API; intentional scalar
  *reference* paths carry a justified ``# deepcheck: ignore[PERF001]``.
* **PERF002** — object allocation inside a hot loop (a resolved call
  to a project class ``__init__``).  Allocate outside, or pool.
* **PERF003** — ``list.append`` accumulation inside a hot loop;
  preallocate or build arrays instead.
* **PERF004** — a numpy call inside a scalar hot loop: per-element
  numpy dispatch costs more than the arithmetic it does; hoist it out
  of the loop and operate on the whole array once.
* **PERF005** — a scalar engine call in a hot loop where the callee's
  class also ships a batch variant (``read`` vs ``read_batch`` /
  ``access_batch``): the batch API already exists, use it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.deepcheck.callgraph import CallGraph, FuncNode
from repro.analysis.deepcheck.hotpath import HotInfo
from repro.analysis.simcheck import Finding

__all__ = ["perf_findings"]

#: Batch-variant suffix/names PERF005 looks for on the callee's class.
_BATCH_NAMES = ("{name}_batch", "access_batch", "{name}s_batch")


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy module in this file."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def _iter_calls_with_depth(fn: FuncNode) -> Iterator[Tuple[ast.Call, int]]:
    def visit(node: ast.AST, depth: int) -> Iterator[Tuple[ast.Call, int]]:
        for child in ast.iter_child_nodes(node):
            child_depth = depth
            if isinstance(
                child,
                (
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.ListComp,
                    ast.SetComp,
                    ast.DictComp,
                    ast.GeneratorExp,
                ),
            ):
                child_depth += 1
            if isinstance(child, ast.Call):
                yield child, child_depth
            yield from visit(child, child_depth)

    return visit(fn.tree, 0)


def _resolved_callee(
    graph: CallGraph, fn: FuncNode, call: ast.Call
) -> Optional[FuncNode]:
    for site in graph.callees_of(fn.node_id):
        if (
            site.line == call.lineno
            and site.col == call.col_offset
            and site.kind in ("call", "getattr")
        ):
            return graph.functions.get(site.callee)
    return None


def _batch_variant(graph: CallGraph, callee: FuncNode) -> Optional[str]:
    """Name of a batch API on the callee's class, if one exists."""
    if callee.class_name is None:
        return None
    for template in _BATCH_NAMES:
        candidate = template.format(name=callee.name)
        if candidate == callee.name:
            continue
        if graph.class_has_method(callee.class_name, candidate):
            return candidate
    return None


def _check_function(
    graph: CallGraph,
    fn: FuncNode,
    info: HotInfo,
    numpy_names: Set[str],
) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[str, int]] = set()

    def emit(code: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", fn.line)
        if (code, line) in seen:
            return
        seen.add((code, line))
        findings.append(
            Finding(
                code=code,
                path=fn.rel,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    hot_tag = (
        f"hot path: depth {info.depth} from {info.root.split('::')[-1]}"
    )
    for call, depth in _iter_calls_with_depth(fn):
        if depth < 1:
            continue
        callee = _resolved_callee(graph, fn, call)
        if callee is not None and callee.node_id != fn.node_id:
            if callee.name == "__init__":
                emit(
                    "PERF002",
                    call,
                    f"'{callee.class_name}' allocated inside a hot loop "
                    f"({hot_tag}); allocate outside the loop or pool",
                )
            else:
                batch = _batch_variant(graph, callee)
                if batch is not None:
                    emit(
                        "PERF005",
                        call,
                        f"scalar '{callee.qualname}' called per "
                        f"iteration but '{callee.class_name}.{batch}' "
                        f"exists ({hot_tag}); use the batch API",
                    )
                else:
                    emit(
                        "PERF001",
                        call,
                        f"per-item call to '{callee.qualname}' inside a "
                        f"hot loop ({hot_tag}); batch the loop body",
                    )
            continue
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue
        receiver = func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in numpy_names
        ):
            emit(
                "PERF004",
                call,
                f"numpy call 'np.{func.attr}' inside a scalar hot loop "
                f"({hot_tag}); hoist it and operate on the whole array",
            )
        elif func.attr == "append" and isinstance(receiver, ast.Name):
            emit(
                "PERF003",
                call,
                f"'{receiver.id}.append' accumulation inside a hot loop "
                f"({hot_tag}); preallocate or vectorize",
            )
    return findings


def perf_findings(
    graph: CallGraph,
    hot: Dict[str, HotInfo],
    module_trees: Optional[Dict[str, ast.Module]] = None,
) -> List[Finding]:
    """Run PERF001-005 over every hot function; sorted findings."""
    numpy_by_rel: Dict[str, Set[str]] = {}
    if module_trees:
        for rel in sorted(module_trees):
            numpy_by_rel[rel] = _numpy_aliases(module_trees[rel])
    findings: List[Finding] = []
    for node_id in sorted(hot):
        fn = graph.functions.get(node_id)
        if fn is None:
            continue
        findings.extend(
            _check_function(
                graph, fn, hot[node_id], numpy_by_rel.get(fn.rel, set())
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
