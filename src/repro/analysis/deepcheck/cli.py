"""``repro deepcheck`` subcommands: report, worklist, graph."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.deepcheck.report import (
    DEEP_RULES,
    analyze,
    format_report,
    format_worklist,
    load_baseline,
    write_baseline,
)

__all__ = ["add_deepcheck_parser", "main"]


def _paths_and_root(args: argparse.Namespace) -> Tuple[List[Path], Path]:
    if args.paths:
        return [Path(p) for p in args.paths], Path.cwd()
    # Default to the installed repro package itself, so `repro
    # deepcheck` works from any working directory.
    pkg = Path(__file__).resolve().parent.parent.parent
    return [pkg], pkg.parent


def _root_patterns(args: argparse.Namespace) -> Optional[List[str]]:
    if not args.roots:
        return None
    return [p.strip() for p in args.roots.split(",") if p.strip()]


def _cmd_report(args: argparse.Namespace) -> int:
    if args.list_rules:
        for code in sorted(DEEP_RULES):
            print(f"{code}  {DEEP_RULES[code]}")
        return 0
    paths, root = _paths_and_root(args)
    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and baseline_path.exists():
        baseline = load_baseline(baseline_path)
    result = analyze(
        paths, root=root, root_patterns=_root_patterns(args), baseline=baseline
    )
    if args.write_baseline:
        if baseline_path is None:
            print(
                "deepcheck: --write-baseline needs --baseline FILE",
                file=sys.stderr,
            )
            return 2
        write_baseline(baseline_path, result.graph, result.active)
        print(
            f"deepcheck: baseline written to {baseline_path} "
            f"({len(result.active)} findings accepted)"
        )
        return 0
    mode = "json" if args.json else ("github" if args.github else "text")
    print(format_report(result, mode, top=args.top))
    return 1 if result.active else 0


def _cmd_worklist(args: argparse.Namespace) -> int:
    paths, root = _paths_and_root(args)
    result = analyze(paths, root=root, root_patterns=_root_patterns(args))
    mode = "json" if args.json else "text"
    print(format_worklist(result, mode, top=args.top))
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    paths, root = _paths_and_root(args)
    result = analyze(paths, root=root, root_patterns=_root_patterns(args))
    graph = result.graph
    if args.pattern:
        matches = graph.find(args.pattern)
        if not matches:
            print(f"deepcheck: no function matches {args.pattern!r}",
                  file=sys.stderr)
            return 1
        payload = []
        for node_id in matches:
            fn = graph.functions[node_id]
            payload.append(
                {
                    "node_id": node_id,
                    "path": fn.rel,
                    "line": fn.line,
                    "callees": sorted(
                        {s.callee for s in graph.callees_of(node_id)}
                    ),
                    "callers": graph.callers_of(node_id),
                }
            )
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        for entry in payload:
            print(f"{entry['node_id']}  ({entry['path']}:{entry['line']})")
            for caller in entry["callers"]:
                print(f"  <- {caller}")
            for callee in entry["callees"]:
                print(f"  -> {callee}")
        return 0
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"deepcheck graph: {summary['files']} files, "
        f"{summary['functions']} functions, {summary['edges']} edges, "
        f"{summary['entry_points']} registry entry points, "
        f"{summary['hot_functions']} hot functions from "
        f"{len(result.roots)} dataplane roots"
    )
    for root_id in result.roots:
        print(f"  root {root_id}")
    return 0


def add_deepcheck_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``deepcheck`` subcommand tree to the main CLI."""
    p = sub.add_parser(
        "deepcheck",
        help="whole-program hot-path & seed-flow analysis (worklist/report)",
    )
    deep_sub = p.add_subparsers(dest="deepcheck_command", required=True)

    q = deep_sub.add_parser("report", help="run all deep rules, gate on findings")
    q.add_argument("paths", nargs="*", help="files/dirs (default: src/repro)")
    q.add_argument("--json", action="store_true", help="machine-readable output")
    q.add_argument("--github", action="store_true", help="GitHub annotations")
    q.add_argument("--baseline", default=None, help="baseline JSON file")
    q.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings into --baseline and exit",
    )
    q.add_argument("--roots", default=None, help="override root patterns (csv)")
    q.add_argument("--top", type=int, default=10, help="worklist rows in text mode")
    q.add_argument("--list-rules", action="store_true", help="list deep rule codes")
    q.set_defaults(func=_cmd_report)

    q = deep_sub.add_parser(
        "worklist", help="ranked vectorization worklist (hot functions)"
    )
    q.add_argument("paths", nargs="*", help="files/dirs (default: src/repro)")
    q.add_argument("--json", action="store_true", help="machine-readable output")
    q.add_argument("--top", type=int, default=20, help="rows to show")
    q.add_argument("--roots", default=None, help="override root patterns (csv)")
    q.set_defaults(func=_cmd_worklist)

    q = deep_sub.add_parser("graph", help="call-graph stats or one symbol's edges")
    q.add_argument("paths", nargs="*", help="files/dirs (default: src/repro)")
    q.add_argument("--json", action="store_true", help="machine-readable output")
    q.add_argument("--pattern", default=None, help="show edges of matching functions")
    q.add_argument("--roots", default=None, help="override root patterns (csv)")
    q.set_defaults(func=_cmd_graph)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.deepcheck.cli``)."""
    parser = argparse.ArgumentParser(
        prog="deepcheck",
        description="Whole-program hot-path & seed-flow static analysis.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    add_deepcheck_parser(sub)
    args = parser.parse_args(["deepcheck", *list(argv or sys.argv[1:])])
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
