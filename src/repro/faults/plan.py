"""Fault plans, clocks, counters and the injected-fault taxonomy.

Determinism contract
--------------------

Every fault decision is drawn from a per-*site* RNG stream seeded as
``(plan.seed, crc32(site))``.  Consequences:

* Two runs with the same plan make identical decisions, regardless of
  how the surrounding experiment interleaves calls to different sites
  (each site advances its own stream only).
* A plan serialises to JSON and back without loss, so a persisted
  chaos artifact replays bit-identically from its plan alone.
* A rate of zero draws **nothing** (``fires`` returns early), so a run
  with an all-zero plan — or no plan at all — is bit-identical to a
  fault-free run.  Chaos never perturbs the experiment seed stream.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, Mapping, Optional, Tuple

import numpy as np


class InjectedFault(Exception):
    """Base class of every deliberately injected failure.

    Resilience layers catch *specific* subclasses they can recover
    from; generic ``except Exception`` handlers must let these
    propagate so a chaos run can never silently swallow its own
    faults.  The lab runner treats them as fatal (no retry).
    """


class NfCrashFault(InjectedFault):
    """An injected network-function crash."""

    def __init__(self, nf_name: str) -> None:
        super().__init__(f"injected crash in NF {nf_name!r}")
        self.nf_name = nf_name


class KvsRequestFault(InjectedFault):
    """An injected server-side KVS request failure."""


#: FaultRates fields that are probabilities (scaled by intensity);
#: the remaining fields are magnitudes (cycle costs, window lengths).
PROBABILITY_FIELDS = (
    "nic_drop",
    "nic_corrupt",
    "nic_duplicate",
    "nic_reorder",
    "nic_stall",
    "mempool_alloc_fail",
    "mempool_exhaust",
    "nf_crash",
    "nf_stall",
    "kvs_fail",
    "kvs_slow",
    "server_kill",
    "server_stall",
)

#: Self-healing fleet fields (PR 10).  They serialise only when they
#: differ from their defaults so pre-existing persisted plans — and the
#: fleet/chaos golden baselines that embed them — stay byte-identical.
SELF_HEALING_FIELDS = (
    "server_stall",
    "server_stall_factor",
    "server_stall_epochs_min",
    "server_stall_epochs_max",
    "server_recovery_epochs_min",
    "server_recovery_epochs_max",
)


@dataclass(frozen=True)
class FaultRates:
    """Per-site fault probabilities and magnitudes.

    Probabilities are per-event (per packet, per allocation, per
    request); magnitudes parameterise what a firing costs.
    """

    #: Frame lost on the wire (per packet).
    nic_drop: float = 0.0
    #: Frame delivered with a bad FCS; the PMD discards it (per packet).
    nic_corrupt: float = 0.0
    #: Frame delivered twice (per packet).
    nic_duplicate: float = 0.0
    #: Frame swapped with its successor (per packet).
    nic_reorder: float = 0.0
    #: RX poll stalls for ``nic_stall_cycles`` (per poll / per packet).
    nic_stall: float = 0.0
    nic_stall_cycles: int = 12_000
    #: Single allocation fails transiently (per allocation).
    mempool_alloc_fail: float = 0.0
    #: An exhaustion window opens: the next ``mempool_exhaust_allocs``
    #: (drawn from [min, max)) allocations all fail (per allocation).
    mempool_exhaust: float = 0.0
    mempool_exhaust_allocs_min: int = 8
    mempool_exhaust_allocs_max: int = 64
    #: NF raises :class:`NfCrashFault` (per packet, per NF).
    nf_crash: float = 0.0
    #: NF stalls for ``nf_stall_cycles`` (per packet, per NF).
    nf_stall: float = 0.0
    nf_stall_cycles: int = 20_000
    #: KVS server raises :class:`KvsRequestFault` (per request).
    kvs_fail: float = 0.0
    #: KVS server spends ``kvs_slow_cycles`` extra (per request).
    kvs_slow: float = 0.0
    kvs_slow_cycles: int = 5_000
    #: Whole fleet server dies and leaves the ring (per server, per
    #: traffic epoch — site ``fleet.server_kill``).
    server_kill: float = 0.0
    #: Fleet server turns gray — alive but slow — for a drawn number of
    #: epochs (per server, per epoch — site ``fleet.server_stall``).
    server_stall: float = 0.0
    #: Service-time multiplier while a server is stalled.
    server_stall_factor: float = 8.0
    #: Stall duration in epochs, drawn from ``[min, max]`` (inclusive,
    #: site ``fleet.server_stall_epochs``).
    server_stall_epochs_min: int = 1
    server_stall_epochs_max: int = 4
    #: Epochs a killed server stays down before rebooting cold, drawn
    #: from ``[min, max]`` (site ``fleet.server_recovery``); ``max`` of
    #: 0 keeps kills permanent (the pre-self-healing behaviour).
    server_recovery_epochs_min: int = 0
    server_recovery_epochs_max: int = 0

    def __post_init__(self) -> None:
        for name in PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in (
            "nic_stall_cycles",
            "nf_stall_cycles",
            "kvs_slow_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.mempool_exhaust_allocs_min < 1:
            raise ValueError("mempool_exhaust_allocs_min must be >= 1")
        if self.mempool_exhaust_allocs_max < self.mempool_exhaust_allocs_min:
            raise ValueError(
                "mempool_exhaust_allocs_max must be >= mempool_exhaust_allocs_min"
            )
        if self.server_stall_factor < 1.0:
            raise ValueError(
                f"server_stall_factor must be >= 1, got {self.server_stall_factor}"
            )
        if self.server_stall_epochs_min < 1:
            raise ValueError("server_stall_epochs_min must be >= 1")
        if self.server_stall_epochs_max < self.server_stall_epochs_min:
            raise ValueError(
                "server_stall_epochs_max must be >= server_stall_epochs_min"
            )
        if self.server_recovery_epochs_min < 0:
            raise ValueError("server_recovery_epochs_min must be >= 0")
        if self.server_recovery_epochs_max < self.server_recovery_epochs_min:
            raise ValueError(
                "server_recovery_epochs_max must be >= server_recovery_epochs_min"
            )

    @property
    def any_active(self) -> bool:
        """Whether any fault can ever fire under these rates."""
        return any(getattr(self, name) > 0.0 for name in PROBABILITY_FIELDS)

    def scaled(self, intensity: float) -> "FaultRates":
        """Scale every probability by *intensity* (capped at 1).

        Magnitudes are left untouched: intensity makes faults more
        *frequent*, not individually worse — which keeps degradation
        sweeps interpretable.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be non-negative, got {intensity}")
        return replace(
            self,
            **{
                name: min(1.0, getattr(self, name) * intensity)
                for name in PROBABILITY_FIELDS
            },
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form.

        Every pre-self-healing field is emitted, defaults included;
        the :data:`SELF_HEALING_FIELDS` appear only when they differ
        from their defaults, so plans that never touch the fleet
        self-healing sites serialise byte-identically to the format
        the existing goldens embed.
        """
        data = asdict(self)
        for name in SELF_HEALING_FIELDS:
            if data[name] == _FIELD_DEFAULTS[name]:
                del data[name]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultRates":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultRates fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]


#: Field-name → declared default, for the conditional serialisation of
#: the self-healing fields above.
_FIELD_DEFAULTS: Dict[str, object] = {
    f.name: f.default for f in fields(FaultRates)
}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serialisable description of one chaos run's faults."""

    seed: int
    rates: FaultRates = FaultRates()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")

    def scaled(self, intensity: float) -> "FaultPlan":
        """Same seed, every probability scaled by *intensity*."""
        return FaultPlan(seed=self.seed, rates=self.rates.scaled(intensity))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return {"seed": self.seed, "rates": self.rates.to_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data["seed"]),  # type: ignore[arg-type]
            rates=FaultRates.from_dict(data.get("rates", {})),  # type: ignore[arg-type]
        )

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the persisted plan format."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


class FaultStats:
    """Structured counters: every drop/retry/restart, by name."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}

    def bump(self, name: str, n: int = 1) -> None:
        """Add *n* to counter *name* (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str) -> int:
        """Current value of counter *name* (zero when never bumped)."""
        return self.counters.get(name, 0)

    def merge(self, other: "FaultStats") -> None:
        """Fold another stats object's counters into this one."""
        for name, value in other.counters.items():
            self.bump(name, value)

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready form, keys sorted for stable artifacts."""
        return dict(sorted(self.counters.items()))

    def __repr__(self) -> str:
        return f"FaultStats({self.to_dict()})"


class FaultClock(object):
    """Turns a :class:`FaultPlan` into deterministic decisions.

    One lazily-created RNG stream per *site* (a string naming the
    injection point, e.g. ``"nic.drop"``): each site's decision
    sequence depends only on the plan seed and the site name, never on
    how calls to different sites interleave.

    This is the **only** sanctioned randomness source for fault hooks
    (enforced by simcheck rule SIM401).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def rates(self) -> FaultRates:
        """The plan's rates (shorthand for hooks)."""
        return self.plan.rates

    def stream(self, site: str) -> np.random.Generator:
        """The dedicated RNG stream for *site*."""
        stream = self._streams.get(site)
        if stream is None:
            stream = np.random.default_rng(
                [self.plan.seed, zlib.crc32(site.encode("utf-8"))]
            )
            self._streams[site] = stream
        return stream

    def fires(self, site: str, rate: float) -> bool:
        """One Bernoulli decision at *site*.

        A non-positive rate returns ``False`` without drawing, so
        zero-rate plans leave every stream untouched (bit-identity
        with fault-free runs).
        """
        if rate <= 0.0:
            return False
        return bool(self.stream(site).random() < rate)

    def integers(self, site: str, low: int, high: int) -> int:
        """One integer draw in ``[low, high)`` at *site*."""
        return int(self.stream(site).integers(low, high))

    def uniforms(self, site: str, count: int) -> np.ndarray:
        """*count* uniform draws at *site* (bulk transforms)."""
        return self.stream(site).random(count)

    def uniform_grid(
        self, site: str, shape: Tuple[int, ...]
    ) -> np.ndarray:
        """A uniform grid at *site* (e.g. epochs × servers).

        The draw count depends only on *shape*, never on which cells
        end up firing — the nested-sampling construction the fleet
        outage schedule relies on for monotone lost-key curves.
        """
        return self.stream(site).random(shape)

    def integer_grid(
        self, site: str, low: int, high: int, shape: Tuple[int, ...]
    ) -> np.ndarray:
        """An integer grid in ``[low, high)`` at *site* (magnitudes)."""
        return self.stream(site).integers(low, high, size=shape)

    def count(self, name: str, n: int = 1) -> None:
        """Record *n* occurrences of *name* in the structured counters."""
        self.stats.bump(name, n)

    def __repr__(self) -> str:
        return f"FaultClock(seed={self.plan.seed}, sites={sorted(self._streams)})"


def _mixed_rates() -> FaultRates:
    return FaultRates(
        nic_drop=0.005,
        nic_corrupt=0.003,
        nic_duplicate=0.003,
        nic_reorder=0.01,
        nic_stall=0.002,
        mempool_alloc_fail=0.002,
        nf_crash=0.0002,
        nf_stall=0.001,
    )


#: Named fault classes at reference (intensity = 1) rates; scale with
#: :meth:`FaultRates.scaled` for degradation sweeps.
FAULT_CLASSES: Dict[str, FaultRates] = {
    "none": FaultRates(),
    "nic-drop": FaultRates(nic_drop=0.02),
    "nic-corrupt": FaultRates(nic_corrupt=0.02),
    "nic-dup": FaultRates(nic_duplicate=0.02),
    "nic-reorder": FaultRates(nic_reorder=0.05),
    "nic-stall": FaultRates(nic_stall=0.01),
    "mempool": FaultRates(mempool_alloc_fail=0.01, mempool_exhaust=0.002),
    "nf-crash": FaultRates(nf_crash=0.0005),
    "nf-stall": FaultRates(nf_stall=0.002),
    "kvs": FaultRates(kvs_fail=0.01, kvs_slow=0.05),
    "server-kill": FaultRates(server_kill=0.02),
    "server-stall": FaultRates(server_stall=0.04),
    "fleet-gray": FaultRates(
        server_kill=0.01,
        server_stall=0.03,
        server_recovery_epochs_min=2,
        server_recovery_epochs_max=5,
    ),
    "mixed": _mixed_rates(),
}


def plan_for_class(
    fault_class: str, seed: int, intensity: float = 1.0
) -> FaultPlan:
    """Build the plan for a named fault class at *intensity*."""
    try:
        rates = FAULT_CLASSES[fault_class]
    except KeyError:
        raise ValueError(
            f"unknown fault class {fault_class!r}; "
            f"choose from {sorted(FAULT_CLASSES)}"
        ) from None
    return FaultPlan(seed=seed, rates=rates).scaled(intensity)


def resolve_plan(
    plan: Optional[object],
) -> Optional[FaultPlan]:
    """Coerce ``None`` / dict / :class:`FaultPlan` into a plan.

    Experiment runners accept plans as plain dicts (the persisted
    artifact form) so a replay needs no import gymnastics.
    """
    if plan is None:
        return None
    if isinstance(plan, FaultPlan):
        return plan
    if isinstance(plan, Mapping):
        return FaultPlan.from_dict(plan)
    raise TypeError(f"cannot interpret {type(plan).__name__} as a FaultPlan")
