"""Vectorised fault transforms for the bulk queueing stage.

The NFV experiments push millions of arrivals through the queueing
model; injecting faults packet-by-packet there would dominate runtime.
:func:`apply_bulk_faults` instead applies each NIC-level fault class as
one vectorised transform over the arrival arrays.

Nested sampling
---------------

Every per-packet decision draws one uniform over the **full pre-fault
stream** and fires where ``u < rate``.  Because the per-site streams
depend only on the plan seed, sweeping intensity with a fixed seed
makes each fault set a *superset* of the lower-intensity sets — the
packets dropped at intensity 0.2 are still dropped at 0.4.  Delivered
goodput is therefore monotone non-increasing in intensity, which is
what makes `degradation_knee` curves clean rather than noisy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultClock


@dataclass
class BulkFaultResult:
    """A faulted arrival stream, ready for the queueing model.

    ``goodput`` flags the packets that count toward delivered useful
    throughput: injected duplicates and corrupted frames traverse the
    queue (they occupy ring slots and service time) but are discarded
    by the receiver, so they never count as goodput.
    """

    arrivals_ns: np.ndarray
    sizes_bytes: np.ndarray
    queue_ids: np.ndarray
    service_ns: np.ndarray
    goodput: np.ndarray


def _swap_adjacent(fire: np.ndarray, *arrays: np.ndarray) -> int:
    """Swap row ``i`` with ``i+1`` in every array where *fire* is set.

    A fire directly following another fire is cleared first so swaps
    never cascade; the last row cannot fire (no successor).  Returns
    the number of swaps performed.
    """
    fire = fire.copy()
    if fire.size:
        fire[-1] = False
        fire[1:] &= ~fire[:-1]
    idx = np.nonzero(fire)[0]
    if idx.size:
        for arr in arrays:
            tmp = arr[idx].copy()
            arr[idx] = arr[idx + 1]
            arr[idx + 1] = tmp
    return int(idx.size)


def apply_bulk_faults(
    clock: FaultClock,
    arrivals_ns: np.ndarray,
    sizes_bytes: np.ndarray,
    queue_ids: np.ndarray,
    service_ns: np.ndarray,
    freq_ghz: float = 3.2,
) -> BulkFaultResult:
    """Apply the plan's NIC-level faults to one arrival stream.

    Transforms, in wire order: drop (packet never reaches the DuT),
    duplication (frame delivered twice, back to back), corruption
    (delivered but discarded at the FCS check — no goodput), reorder
    (frame swapped with its successor), poll stalls (service-time
    inflation by ``nic_stall_cycles``).

    Every decision comes from the clock's per-site streams; rates at
    zero draw nothing, so an all-zero plan returns the input arrays
    unchanged (bit-identity with a fault-free run).
    """
    rates = clock.rates
    arrivals = np.asarray(arrivals_ns, dtype=float)
    sizes = np.asarray(sizes_bytes, dtype=float)
    queues = np.asarray(queue_ids)
    service = np.asarray(service_ns, dtype=float)
    n = arrivals.size
    if not (arrivals.shape == sizes.shape == queues.shape == service.shape):
        raise ValueError("all per-packet arrays must have equal length")

    keep = np.ones(n, dtype=bool)
    if rates.nic_drop > 0.0:
        keep = clock.uniforms("bulk.nic_drop", n) >= rates.nic_drop
        clock.count("nic.injected_drops", int(n - keep.sum()))

    corrupt = np.zeros(n, dtype=bool)
    if rates.nic_corrupt > 0.0:
        corrupt = clock.uniforms("bulk.nic_corrupt", n) < rates.nic_corrupt
        clock.count("nic.injected_corruptions", int((corrupt & keep).sum()))

    dup = np.zeros(n, dtype=bool)
    if rates.nic_duplicate > 0.0:
        dup = clock.uniforms("bulk.nic_duplicate", n) < rates.nic_duplicate
        clock.count("nic.injected_duplicates", int((dup & keep).sum()))

    kept_idx = np.nonzero(keep)[0]
    out_idx = np.repeat(kept_idx, np.where(dup[kept_idx], 2, 1))
    is_copy = np.zeros(out_idx.size, dtype=bool)
    if out_idx.size > 1:
        is_copy[1:] = out_idx[1:] == out_idx[:-1]

    out_arrivals = arrivals[out_idx]
    out_sizes = sizes[out_idx]
    out_queues = queues[out_idx]
    out_service = service[out_idx].copy()
    goodput = ~corrupt[out_idx] & ~is_copy

    if rates.nic_reorder > 0.0:
        fire = clock.uniforms("bulk.nic_reorder", n) < rates.nic_reorder
        swaps = _swap_adjacent(
            fire[out_idx] & ~is_copy,
            out_sizes,
            out_queues,
            out_service,
            goodput,
        )
        clock.count("nic.injected_reorders", swaps)

    if rates.nic_stall > 0.0:
        stall = clock.uniforms("bulk.nic_stall", n) < rates.nic_stall
        stalled = stall[out_idx]
        out_service[stalled] += rates.nic_stall_cycles / freq_ghz
        clock.count("nic.injected_stalls", int(stalled.sum()))

    return BulkFaultResult(
        arrivals_ns=out_arrivals,
        sizes_bytes=out_sizes,
        queue_ids=out_queues,
        service_ns=out_service,
        goodput=goodput,
    )


@dataclass
class OutageSchedule:
    """Pre-drawn whole-server outage decisions for one fleet cell.

    Every grid is ``(n_epochs, n_servers)`` and every cell is drawn
    whether or not it can fire (a kill decision for an already-dead
    server is a no-op), so the fire sets are intensity-supersets under
    a fixed plan seed — the same nested-sampling construction
    :func:`apply_bulk_faults` uses, lifted to whole servers.  That is
    what makes the ``fleet-durability`` lost-key curves monotone in
    kill intensity.

    Row 0 is drawn but never applied: outages begin at the first epoch
    *boundary* (epoch 1), matching the legacy per-epoch kill loop.
    """

    n_epochs: int
    n_servers: int
    kill_fires: np.ndarray       # bool  (n_epochs, n_servers)
    stall_fires: np.ndarray      # bool  (n_epochs, n_servers)
    stall_epochs: np.ndarray     # int64 durations, valid where stall fires
    recovery_epochs: np.ndarray  # int64 reboot delays; 0 = permanent kill

    @property
    def any_outages(self) -> bool:
        """Whether any kill or stall can fire under this schedule."""
        return bool(self.kill_fires.any() or self.stall_fires.any())


def draw_outage_schedule(
    clock: FaultClock, n_epochs: int, n_servers: int
) -> OutageSchedule:
    """Draw the full kill/stall/recovery schedule for one fleet cell.

    All randomness flows through the clock's dedicated per-site
    streams (``fleet.server_kill``, ``fleet.server_stall``,
    ``fleet.server_stall_epochs``, ``fleet.server_recovery``); sites
    whose rates are zero draw nothing, so an all-zero plan leaves
    every stream untouched.  Magnitude grids (durations, delays) are
    drawn alongside their probability grids so the values a firing
    cell uses do not shift as intensity scales the fire sets.
    """
    if n_epochs <= 0 or n_servers <= 0:
        raise ValueError(
            f"need positive grid, got {n_epochs} epochs × {n_servers} servers"
        )
    rates = clock.rates
    shape = (n_epochs, n_servers)
    kill_fires = np.zeros(shape, dtype=bool)
    stall_fires = np.zeros(shape, dtype=bool)
    stall_epochs = np.zeros(shape, dtype=np.int64)
    recovery_epochs = np.zeros(shape, dtype=np.int64)
    if rates.server_kill > 0.0:
        kill_fires = (
            clock.uniform_grid("fleet.server_kill", shape)
            < rates.server_kill
        )
        if rates.server_recovery_epochs_max > 0:
            recovery_epochs = clock.integer_grid(
                "fleet.server_recovery",
                rates.server_recovery_epochs_min,
                rates.server_recovery_epochs_max + 1,
                shape,
            )
    if rates.server_stall > 0.0:
        stall_fires = (
            clock.uniform_grid("fleet.server_stall", shape)
            < rates.server_stall
        )
        stall_epochs = clock.integer_grid(
            "fleet.server_stall_epochs",
            rates.server_stall_epochs_min,
            rates.server_stall_epochs_max + 1,
            shape,
        )
    return OutageSchedule(
        n_epochs=n_epochs,
        n_servers=n_servers,
        kill_fires=kill_fires,
        stall_fires=stall_fires,
        stall_epochs=stall_epochs,
        recovery_epochs=recovery_epochs,
    )
