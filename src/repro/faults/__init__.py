"""Deterministic fault injection (chaos) for the simulated stack.

The subsystem has two halves:

* :mod:`repro.faults.plan` — the :class:`FaultPlan`/:class:`FaultClock`
  core.  A plan is pure data (seed + per-site fault rates, JSON
  round-trippable); a clock turns a plan into decisions, drawing every
  decision from a dedicated per-site RNG stream so chaos runs are
  bit-reproducible and replayable from the persisted plan alone.
* :mod:`repro.faults.streams` — vectorised fault transforms for the
  bulk queueing stage of the NFV experiments (drop, corruption,
  duplication, reorder, stalls over millions of arrivals).

Fault *decisions* never touch the experiment seed stream: with every
rate at zero a clock draws nothing, so a chaos-capable run is
bit-identical to one that never heard of faults.
"""

from repro.faults.plan import (
    FAULT_CLASSES,
    FaultClock,
    FaultPlan,
    FaultRates,
    FaultStats,
    InjectedFault,
    KvsRequestFault,
    NfCrashFault,
)
from repro.faults.streams import BulkFaultResult, apply_bulk_faults

__all__ = [
    "FAULT_CLASSES",
    "FaultClock",
    "FaultPlan",
    "FaultRates",
    "FaultStats",
    "InjectedFault",
    "KvsRequestFault",
    "NfCrashFault",
    "BulkFaultResult",
    "apply_bulk_faults",
]
