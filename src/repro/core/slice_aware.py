"""Slice-aware memory management — the application-facing API (§3).

:class:`SliceAwareContext` bundles a machine model, a simulated
physical address space and the two allocators, and answers the two
questions an application has:

1. *Which slice should core ``c`` use?* — from the NUCA latency model
   (or a measured profile), via :meth:`preferred_slice`.
2. *Give me memory that lives there* — via :meth:`allocate_slice_aware`
   (scattered lines filtered by the Complex Addressing hash) or
   :meth:`allocate_normal` (the contiguous baseline).

Both allocation flavours return objects with the same tiny interface
(``address_of``/``line_of``/``n_lines``/``size``) so benchmark code is
placement-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.interconnect import preferred_slices
from repro.cachesim.machines import MachineSpec, build_hierarchy
from repro.mem.address import CACHE_LINE, PAGE_1G
from repro.mem.allocator import (
    ContiguousAllocator,
    ScatteredBuffer,
    SliceFilteredAllocator,
)
from repro.mem.hugepage import HugepageBuffer, PhysicalAddressSpace


@dataclass
class LinearBuffer:
    """A contiguous buffer exposing the :class:`ScatteredBuffer` interface.

    ``base`` is the *physical* base address (the address the cache
    hierarchy sees); ``virt_base`` is the user-space view.
    """

    base: int
    size: int
    virt_base: Optional[int] = None

    @property
    def n_lines(self) -> int:
        """Number of cache lines the buffer spans (base is line-aligned)."""
        return (self.size + CACHE_LINE - 1) // CACHE_LINE

    def address_of(self, offset: int) -> int:
        """Virtual address of logical byte *offset*."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside buffer of {self.size} bytes")
        return self.base + offset

    def line_of(self, index: int) -> int:
        """Virtual address of the *index*-th cache line."""
        if not 0 <= index < self.n_lines:
            raise IndexError(f"line {index} outside buffer of {self.n_lines} lines")
        return self.base + index * CACHE_LINE


class SliceAwareContext:
    """Everything an application needs for slice-aware placement.

    Args:
        spec: machine model to simulate.
        hierarchy: optionally, a pre-built hierarchy (e.g. with CAT or
            custom latencies); built from *spec* when omitted.
        hugepage_bytes: size of the backing hugepage pool.
        seed: physical-layout scrambling seed.
    """

    def __init__(
        self,
        spec: MachineSpec,
        hierarchy: Optional[CacheHierarchy] = None,
        hugepage_bytes: int = 2 * PAGE_1G,
        seed: int = 0,
        placement_hash=None,
    ) -> None:
        self.spec = spec
        self.hierarchy = hierarchy if hierarchy is not None else build_hierarchy(spec, seed=seed)
        self.address_space = PhysicalAddressSpace(
            size=max(8 * hugepage_bytes, 64 * PAGE_1G), seed=seed
        )
        self.hugepage: HugepageBuffer = self.address_space.mmap_hugepage(hugepage_bytes)
        # The hash used for *placement decisions*.  By default this is
        # the machine's true hash; deployments that reverse-engineered
        # the mapping pass their recovered predictor instead (see
        # :meth:`with_recovered_hash`), and any disagreement with the
        # hardware shows up as mis-placed lines — exactly as it would
        # on a real machine.
        self.hash = placement_hash if placement_hash is not None else self.hierarchy.llc.hash
        self._contiguous = ContiguousAllocator(self.hugepage)
        self._filtered = SliceFilteredAllocator(self.hugepage, self.hash)

    @classmethod
    def with_recovered_hash(
        cls,
        spec: MachineSpec,
        seed: int = 0,
        hugepage_bytes: int = 2 * PAGE_1G,
        polls: int = 2,
    ) -> "SliceAwareContext":
        """Build a context whose placement uses a hash recovered by
        CBo-counter polling — the full real-hardware deployment flow
        (§2.1 then §3), with no ground-truth shortcut.

        Only defined for machines with XOR-linear (power-of-two slice)
        hashes, like the paper's Haswell part.
        """
        from repro.core.reverse_engineering import (
            MultiPageOracle,
            recover_complex_hash,
        )
        from repro.mem.address import is_power_of_two

        if not is_power_of_two(spec.n_slices):
            raise ValueError(
                f"{spec.name} has {spec.n_slices} slices; XOR recovery "
                "requires a power-of-two slice count"
            )
        hierarchy = build_hierarchy(spec, seed=seed)
        # Recovering the full hash (bits up to 34) requires probe
        # addresses whose single-bit toggles stay in owned memory: a
        # contiguous run of 1 GB hugepages covering 32 GB (seed=None
        # makes the simulated allocator back-to-back, as a freshly
        # booted machine's hugepage pool is).
        space = PhysicalAddressSpace(size=max(8 * hugepage_bytes, 64 * PAGE_1G), seed=None)
        probe_pages = [space.mmap_hugepage(PAGE_1G) for _ in range(32)]
        oracle = MultiPageOracle(hierarchy, probe_pages, core=0, polls=polls)
        # Bases sit in the middle page of the run so that every
        # single-bit toggle (including bits 30-34) lands in an owned
        # sibling page.
        middle = probe_pages[len(probe_pages) // 2].phys
        recovered = recover_complex_hash(
            oracle,
            n_slices=spec.n_slices,
            base_addresses=[middle + off for off in (0x40, 0x333000, 0x1F000000)],
            address_bits=range(6, 35),
            max_address=probe_pages[-1].phys + probe_pages[-1].size,
        )

        class _RecoveredPlacement:
            """Adapter: RecoveredHash as a SliceHash for allocators."""

            n_slices = spec.n_slices

            def slice_of(self, phys_address: int) -> int:
                return recovered.predict(phys_address)

        context = cls(
            spec,
            hierarchy=hierarchy,
            hugepage_bytes=hugepage_bytes,
            seed=seed + 1,
            placement_hash=_RecoveredPlacement(),
        )
        context.recovered = recovered
        return context

    # ------------------------------------------------------------------
    # Placement policy
    # ------------------------------------------------------------------

    def preferred_slice(self, core: int) -> int:
        """The slice with the lowest access latency from *core*."""
        return self.preferred_slices(core)[0]

    def preferred_slices(self, core: int, count: Optional[int] = None) -> List[int]:
        """Slices sorted cheapest-first from *core* (optionally top *count*)."""
        order = preferred_slices(self.hierarchy.llc.interconnect, core)
        return order if count is None else order[:count]

    def slice_of_virt(self, virt_address: int) -> int:
        """LLC slice of the line holding a virtual address."""
        return self._filtered.slice_of_virt(virt_address)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate_normal(self, size: int) -> LinearBuffer:
        """Contiguous allocation — the paper's baseline placement."""
        virt = self._contiguous.allocate(size, align=CACHE_LINE)
        return LinearBuffer(
            base=self.hugepage.virt_to_phys(virt), size=size, virt_base=virt
        )

    def allocate_slice_aware(
        self,
        size: int,
        core: Optional[int] = None,
        slice_indices: Optional[Sequence[int]] = None,
    ) -> ScatteredBuffer:
        """Allocate *size* bytes mapped to chosen slices.

        Exactly one of *core* (use its preferred slice) or
        *slice_indices* (explicit placement) must be given.
        """
        if (core is None) == (slice_indices is None):
            raise ValueError("pass exactly one of core or slice_indices")
        if slice_indices is None:
            assert core is not None
            slice_indices = [self.preferred_slice(core)]
        return self._filtered.allocate(size, slice_indices)

    def allocate_lines(self, n_lines: int, slice_index: int) -> List[int]:
        """Allocate raw cache lines mapping to *slice_index*."""
        return self._filtered.allocate_lines(n_lines, slice_index)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    @property
    def contiguous_allocator(self) -> ContiguousAllocator:
        """The underlying bump allocator (for substrates like DPDK
        pools that place their own structures)."""
        return self._contiguous

    def virt_to_phys(self, virt_address: int) -> int:
        """Translate a context-owned virtual address to physical."""
        return self.address_space.pagemap.virt_to_phys(virt_address)

    def __repr__(self) -> str:
        return f"SliceAwareContext(spec={self.spec.name!r})"
