"""CacheDirector — slice-aware placement of packet headers (§4.2).

CacheDirector extends DDIO: instead of letting the mbuf's fixed
headroom decide (arbitrarily) which LLC slice the first 64 B of a
packet lands in, it *moves the data start* — a dynamic headroom — so
that the header line's physical address hashes to the slice closest to
the core that will process the packet.

Mechanics reproduced from the paper:

* **Small chunks** — only the first 64 B (the header) is steered; the
  hash remaps every line, so steering whole packets is impossible
  without fragmentation.
* **Dynamic headroom** — the headroom grows by whole cache lines until
  the data line hits the target slice.  With the published XOR hash the
  low three line-number bits map bijectively onto the slice bits, so at
  most 7 extra lines are ever needed; the mbuf's data room must be
  provisioned for the maximum (the paper picked 832 B after measuring
  a campus trace).
* **Pre-computation** — at pool-initialisation time the per-slice line
  offsets are computed once per mbuf and packed 4 bits per slice into
  the 64-bit ``udata64`` metadata field ("4 bits is sufficient for
  each core: our solution would be scalable up to 16 cores").
* **RX-time selection** — the driver, knowing the consuming core,
  unpacks the pre-computed offset and sets the headroom just before
  posting the buffer to the NIC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cachesim.hashfn import SliceHash
from repro.mem.address import CACHE_LINE

#: Default DPDK headroom (RTE_PKTMBUF_HEADROOM).
DEFAULT_BASE_HEADROOM = 128

#: Bits of udata64 used per slice entry.
UDATA_BITS_PER_SLICE = 4

#: Maximum slices addressable through udata64 packing.
UDATA_MAX_SLICES = 64 // UDATA_BITS_PER_SLICE


def headroom_lines_for_slice(
    data_base_phys: int,
    slice_hash: SliceHash,
    target_slice: int,
    max_lines: int = 16,
) -> Optional[int]:
    """Smallest line count ``k`` with ``hash(data_base + 64k) == target``.

    Args:
        data_base_phys: physical address where the data region would
            start with zero extra headroom (line-aligned).
        slice_hash: the machine's slice hash.
        target_slice: desired LLC slice.
        max_lines: search bound; returns ``None`` when no line within
            the bound maps to the target (cannot happen for the
            published XOR hash with ``max_lines >= n_slices``).
    """
    if data_base_phys % CACHE_LINE:
        raise ValueError(
            f"data base {data_base_phys:#x} must be cache-line aligned"
        )
    for k in range(max_lines):
        if slice_hash.slice_of(data_base_phys + k * CACHE_LINE) == target_slice:
            return k
    return None


def pack_headrooms(lines_per_slice: Sequence[int]) -> int:
    """Pack per-slice line offsets into a udata64 value (4 bits each)."""
    if len(lines_per_slice) > UDATA_MAX_SLICES:
        raise ValueError(
            f"udata64 packs at most {UDATA_MAX_SLICES} slices, "
            f"got {len(lines_per_slice)}"
        )
    packed = 0
    for slice_index, lines in enumerate(lines_per_slice):
        if not 0 <= lines < (1 << UDATA_BITS_PER_SLICE):
            raise ValueError(
                f"line offset {lines} for slice {slice_index} does not "
                f"fit in {UDATA_BITS_PER_SLICE} bits"
            )
        packed |= lines << (UDATA_BITS_PER_SLICE * slice_index)
    return packed


def unpack_headroom(udata64: int, slice_index: int) -> int:
    """Extract one slice's line offset from a packed udata64 value."""
    if not 0 <= slice_index < UDATA_MAX_SLICES:
        raise IndexError(f"slice {slice_index} out of udata64 range")
    return (udata64 >> (UDATA_BITS_PER_SLICE * slice_index)) & (
        (1 << UDATA_BITS_PER_SLICE) - 1
    )


@dataclass
class HeadroomStats:
    """Distribution of dynamic headroom sizes chosen at RX time (§4.2)."""

    samples: List[int] = field(default_factory=list)

    def record(self, headroom_bytes: int) -> None:
        """Record one chosen headroom."""
        self.samples.append(headroom_bytes)

    def summary(self) -> dict:
        """Median / 95th percentile / max, as the paper reports them."""
        if not self.samples:
            return {"count": 0}
        ordered = sorted(self.samples)
        count = len(ordered)
        return {
            "count": count,
            "median": ordered[count // 2],
            "p95": ordered[min(count - 1, (95 * count) // 100)],
            "max": ordered[-1],
        }


class CacheDirector:
    """Computes and applies dynamic mbuf headrooms.

    Args:
        slice_hash: the machine's Complex Addressing hash (known or
            recovered via :mod:`repro.core.reverse_engineering`).
        core_to_slice: preferred slice per core (from the NUCA profile).
        base_headroom: fixed headroom always reserved (DPDK default
            128 B) before the dynamic part.
        max_lines: bound on the dynamic displacement in lines.
    """

    def __init__(
        self,
        slice_hash: SliceHash,
        core_to_slice: Sequence[int],
        base_headroom: int = DEFAULT_BASE_HEADROOM,
        max_lines: int = 16,
    ) -> None:
        if not core_to_slice:
            raise ValueError("core_to_slice must be non-empty")
        if base_headroom % CACHE_LINE:
            raise ValueError(
                f"base headroom must be line-aligned, got {base_headroom}"
            )
        self.hash = slice_hash
        self.core_to_slice = list(core_to_slice)
        self.base_headroom = base_headroom
        self.max_lines = max_lines
        self.stats = HeadroomStats()

    @property
    def max_headroom(self) -> int:
        """Largest headroom this director can ever choose, in bytes.

        Mempools must provision the data room for this value so the
        dynamic headroom never shrinks the usable data area below a
        full packet (the paper's 832 B sizing argument).
        """
        return self.base_headroom + (self.max_lines - 1) * CACHE_LINE

    def precompute_udata(self, buf_phys: int) -> int:
        """Pre-compute packed per-slice offsets for one mbuf.

        Args:
            buf_phys: physical address of the mbuf's buffer region
                (where headroom starts); must be line-aligned.

        Returns:
            The packed udata64 value.  Slices with no reachable line
            within ``max_lines`` encode offset 0 (the director then
            falls back to the base headroom for those targets).
        """
        data_base = buf_phys + self.base_headroom
        n = min(self.hash.n_slices, UDATA_MAX_SLICES)
        offsets = []
        for target in range(n):
            k = headroom_lines_for_slice(
                data_base, self.hash, target, min(self.max_lines, 16)
            )
            offsets.append(0 if k is None else k)
        return pack_headrooms(offsets)

    def headroom_for_core(self, udata64: int, core: int) -> int:
        """Headroom (bytes) placing the first data line in *core*'s slice.

        Called by the driver just before handing the buffer to the NIC
        for DMA; also records the §4.2 distribution sample.
        """
        target = self.core_to_slice[core]
        lines = unpack_headroom(udata64, target)
        headroom = self.base_headroom + lines * CACHE_LINE
        self.stats.record(headroom)
        return headroom

    def headroom_for_slice_direct(self, buf_phys: int, target_slice: int) -> int:
        """Compute a headroom without pre-computation (slow path)."""
        k = headroom_lines_for_slice(
            buf_phys + self.base_headroom, self.hash, target_slice, self.max_lines
        )
        return self.base_headroom + (k or 0) * CACHE_LINE
