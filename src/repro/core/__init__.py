"""The paper's contribution: slice-aware memory management.

* :mod:`repro.core.slice_aware` — the allocation-policy API
  applications use to get memory mapped to chosen LLC slices (§3).
* :mod:`repro.core.profiles` — slice-latency profiling, the §2.2
  methodology that measures each core's distance to each slice.
* :mod:`repro.core.reverse_engineering` — recovering the slice mapping
  and the Complex Addressing hash via uncore-counter polling (§2.1).
* :mod:`repro.core.cache_director` — CacheDirector's dynamic-headroom
  computation (§4), wired into the DPDK substrate by
  :mod:`repro.dpdk.nic`.
* :mod:`repro.core.isolation` — slice isolation vs. Intel CAT (§7).
"""

from repro.core.cache_director import (
    CacheDirector,
    headroom_lines_for_slice,
    pack_headrooms,
    unpack_headroom,
)
from repro.core.profiles import (
    SliceLatencyProfile,
    derive_preference_table,
    measure_slice_latencies,
)
from repro.core.reverse_engineering import (
    PollingOracle,
    recover_complex_hash,
    verify_recovered_hash,
)
from repro.core.slice_aware import SliceAwareContext, LinearBuffer

__all__ = [
    "CacheDirector",
    "LinearBuffer",
    "PollingOracle",
    "SliceAwareContext",
    "SliceLatencyProfile",
    "derive_preference_table",
    "headroom_lines_for_slice",
    "measure_slice_latencies",
    "pack_headrooms",
    "recover_complex_hash",
    "unpack_headroom",
    "verify_recovered_hash",
]
