"""Slice-latency profiling — the paper's §2.2 methodology.

For a chosen core and target slice the procedure is exactly the
paper's:

1. pick twenty cache lines (the LLC's associativity) that share one
   set index in L1, L2 *and* the LLC slice — i.e. identical address
   bits 6–16 — and whose physical addresses hash to the target slice;
2. write to all twenty, then ``clflush`` everything to DRAM;
3. read all twenty — afterwards all twenty sit in the LLC set, but
   only the last eight survive in the 8-way L1/L2;
4. read the *first eight* again: they must be served by the LLC slice,
   so their cost is the core→slice access latency.

The measured numbers include one extra L1 hit per access for the
pointer-array dereference the paper notes ("the addresses of the cache
lines … are saved in an array of pointers"), so they land in the same
range as Fig. 5a rather than Intel's nominal 34 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.interconnect import Interconnect
from repro.mem.address import CACHE_LINE
from repro.mem.hugepage import HugepageBuffer

#: Address bits that must collide for L1, L2 and LLC-slice set indexes
#: to match on the Haswell part (Table 1: index bits 16–6).
SET_COLLISION_BITS = 0x1FFC0  # bits 6..16 inclusive


@dataclass
class SliceLatencyProfile:
    """Measured per-slice access latencies from one core."""

    core: int
    read_cycles: List[float]
    write_cycles: List[float]

    @property
    def n_slices(self) -> int:
        """Number of profiled slices."""
        return len(self.read_cycles)

    def fastest_slice(self) -> int:
        """Slice with the lowest measured read latency."""
        return min(range(self.n_slices), key=self.read_cycles.__getitem__)

    def read_spread(self) -> float:
        """Max-minus-min read latency across slices (the NUCA spread)."""
        return max(self.read_cycles) - min(self.read_cycles)


def find_lines_with_bits(
    buffer: HugepageBuffer,
    collision_mask: int,
    set_bits_value: int,
    count: int,
) -> List[int]:
    """Find *count* physical line addresses in *buffer* with
    ``phys & collision_mask == set_bits_value`` (any slice)."""
    lines: List[int] = []
    phys = buffer.phys
    end = buffer.phys + buffer.size
    while phys < end and len(lines) < count:
        if (phys & collision_mask) == set_bits_value:
            lines.append(phys)
        phys += CACHE_LINE
    if len(lines) < count:
        raise LookupError(
            f"only {len(lines)} of {count} lines with bits "
            f"{set_bits_value:#x}/{collision_mask:#x} found"
        )
    return lines


def find_set_colliding_lines(
    buffer: HugepageBuffer,
    slice_of_phys,
    target_slice: int,
    count: int,
    collision_mask: int = SET_COLLISION_BITS,
    set_bits_value: int = 0,
) -> List[int]:
    """Find *count* physical line addresses in *buffer* that share set
    index bits (``collision_mask``) and map to *target_slice*.

    Args:
        buffer: hugepage to search.
        slice_of_phys: callable mapping a physical address to a slice.
        target_slice: required slice index.
        count: how many lines to return.
        collision_mask: address bits that must equal *set_bits_value*.
        set_bits_value: required value of the masked bits (line-aligned).

    Raises:
        LookupError: if the buffer does not contain enough such lines.
    """
    lines: List[int] = []
    phys = buffer.phys
    end = buffer.phys + buffer.size
    while phys < end and len(lines) < count:
        if (phys & collision_mask) == set_bits_value and slice_of_phys(phys) == target_slice:
            lines.append(phys)
        phys += CACHE_LINE
    if len(lines) < count:
        raise LookupError(
            f"only {len(lines)} of {count} colliding lines for slice "
            f"{target_slice} found in a {buffer.size >> 20} MiB buffer"
        )
    return lines


def measure_slice_latencies(
    hierarchy: CacheHierarchy,
    buffer: HugepageBuffer,
    pagemap,
    core: int = 0,
    runs: int = 10,
    pointer_chase_overhead: Optional[int] = None,
) -> SliceLatencyProfile:
    """Run the §2.2 experiment: per-slice read/write cycles from *core*.

    Args:
        hierarchy: machine under test.
        buffer: hugepage providing physically known lines.
        pagemap: virtual→physical translator for *buffer*.
        core: measuring core.
        runs: repetitions averaged per slice.
        pointer_chase_overhead: cycles added per access for the pointer
            array dereference; defaults to the machine's L1 latency.
    """
    llc = hierarchy.llc
    n_ways = llc.n_ways
    probe_ways = min(8, n_ways)  # paper reads the first 8 of 20 lines
    if pointer_chase_overhead is None:
        pointer_chase_overhead = hierarchy.latency.l1_hit
    read_cycles: List[float] = []
    write_cycles: List[float] = []
    # On a non-inclusive (victim) LLC, lines only enter the LLC when L2
    # evicts them, so after the priming reads we stream a conflict set
    # through the same L2 set (different LLC set: bit 16 high) to push
    # the probe lines out of L1/L2 and into the LLC (§6).
    conflict_lines: List[int] = []
    if not hierarchy.inclusive:
        l2_conflicts = hierarchy.l2s[core].n_ways + 1
        conflict_lines = find_lines_with_bits(
            buffer, SET_COLLISION_BITS, 1 << 16, l2_conflicts
        )
    for target_slice in range(llc.n_slices):
        lines = find_set_colliding_lines(
            buffer, llc.hash.slice_of, target_slice, count=n_ways
        )
        total_read = 0.0
        total_write = 0.0
        for _ in range(runs):
            # (2) write all lines, then flush the hierarchy.
            for phys in lines:
                hierarchy.write(core, phys)
            for phys in lines:
                hierarchy.clflush(phys)
            # (3) read all lines: populates the LLC set; only the tail
            # survives in the smaller L1/L2.
            for phys in lines:
                hierarchy.read(core, phys)
            for phys in conflict_lines:
                hierarchy.read(core, phys)
            # (4) timed: re-read the first lines — LLC hits.
            for phys in lines[:probe_ways]:
                total_read += hierarchy.read(core, phys) + pointer_chase_overhead
            # (5) timed writes after a flush — absorbed by the store
            # buffer, hence flat (Fig. 5b).
            for phys in lines:
                hierarchy.clflush(phys)
            for phys in lines[:probe_ways]:
                total_write += hierarchy.write(core, phys) + pointer_chase_overhead
        samples = runs * probe_ways
        read_cycles.append(total_read / samples)
        write_cycles.append(total_write / samples)
    return SliceLatencyProfile(core=core, read_cycles=read_cycles, write_cycles=write_cycles)


def derive_preference_table(
    interconnect: Interconnect,
) -> Dict[int, Tuple[int, Tuple[int, ...]]]:
    """Derive each core's primary and secondary slices (paper Table 4).

    Returns a mapping ``core -> (primary, secondaries)`` where the
    primary is the unique cheapest slice and the secondaries are every
    slice at the second-cheapest latency.
    """
    table: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    for core in range(interconnect.n_cores):
        latencies = [
            (interconnect.latency(core, s), s) for s in range(interconnect.n_slices)
        ]
        latencies.sort()
        primary = latencies[0][1]
        second_latency = None
        secondaries: List[int] = []
        for latency, slice_index in latencies[1:]:
            if second_latency is None:
                second_latency = latency
            if latency == second_latency:
                secondaries.append(slice_index)
            else:
                break
        table[core] = (primary, tuple(secondaries))
    return table


def measure_all_cores(
    hierarchy: CacheHierarchy,
    buffer: HugepageBuffer,
    pagemap,
    runs: int = 3,
) -> List[SliceLatencyProfile]:
    """The full core x slice latency matrix.

    The paper notes "Results for all of the cores follow the same
    behavior" (§2.2); this runs the Fig. 5 measurement from every core
    so that claim is checkable rather than assumed.
    """
    return [
        measure_slice_latencies(hierarchy, buffer, pagemap, core=core, runs=runs)
        for core in range(hierarchy.n_cores)
    ]


def format_latency_matrix(profiles: List[SliceLatencyProfile]) -> str:
    """Render the core x slice read-latency matrix."""
    n_slices = profiles[0].n_slices
    out = ["Read latency matrix (cycles): rows = cores, columns = slices"]
    header = "core  " + " ".join(f"S{s:<4}" for s in range(n_slices))
    out.append(header)
    for profile in profiles:
        row = " ".join(f"{c:5.0f}" for c in profile.read_cycles)
        out.append(f"C{profile.core:<4} {row}")
    return "\n".join(out)
