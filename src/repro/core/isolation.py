"""Cache isolation: Intel CAT (ways) vs slice-aware isolation (§7).

Two ways to wall an application's working set off from a noisy
neighbour:

* **CAT** — give the application a CLOS owning a few LLC *ways*; it
  keeps ``ways/n_ways`` of every slice, but still pays the average
  NUCA distance and shares slice bandwidth.
* **Slice isolation** — allocate the application's working set from
  addresses mapping to one slice near its core, and give the neighbour
  memory that maps everywhere *except* that slice.  The application
  gets a smaller fraction of the LLC (one slice) but at the lowest
  possible latency — the paper measures ~11 % better execution time
  than 2-way CAT despite owning less capacity.

The helpers here configure both schemes on a simulated machine; the
Fig. 17 experiment driver lives in :mod:`repro.experiments.fig17_isolation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cachesim.cat import CatController
from repro.core.slice_aware import SliceAwareContext
from repro.mem.allocator import ScatteredBuffer


def configure_cat_way_isolation(
    cat: CatController,
    main_core: int,
    main_ways: int,
    neighbour_cores: Sequence[int],
) -> None:
    """Partition the LLC ways: *main_ways* for the main application.

    CLOS 1 (main core) owns the lowest *main_ways* ways; CLOS 2
    (neighbours) owns the rest.  Masks are contiguous as CAT requires.
    """
    if not 0 < main_ways < cat.n_ways:
        raise ValueError(
            f"main_ways must be in 1..{cat.n_ways - 1}, got {main_ways}"
        )
    main_mask = (1 << main_ways) - 1
    neighbour_mask = ((1 << cat.n_ways) - 1) & ~main_mask
    cat.define_clos(1, main_mask)
    cat.define_clos(2, neighbour_mask)
    cat.assign_core(main_core, 1)
    for core in neighbour_cores:
        cat.assign_core(core, 2)


@dataclass
class SliceIsolationPlan:
    """Placement produced by :func:`plan_slice_isolation`."""

    main_slice: int
    main_buffer: ScatteredBuffer
    neighbour_buffer: ScatteredBuffer


def plan_slice_isolation(
    context: SliceAwareContext,
    main_core: int,
    main_bytes: int,
    neighbour_bytes: int,
) -> SliceIsolationPlan:
    """Allocate isolated working sets: main app in one slice, noisy
    neighbour everywhere else.

    The main application receives memory mapping only to its preferred
    slice; the neighbour receives memory spread round-robin over every
    *other* slice, so it cannot evict the main application's lines no
    matter how aggressively it streams.
    """
    main_slice = context.preferred_slice(main_core)
    other_slices: List[int] = [
        s for s in range(context.hash.n_slices) if s != main_slice
    ]
    main_buffer = context.allocate_slice_aware(main_bytes, slice_indices=[main_slice])
    neighbour_buffer = context.allocate_slice_aware(
        neighbour_bytes, slice_indices=other_slices
    )
    return SliceIsolationPlan(
        main_slice=main_slice,
        main_buffer=main_buffer,
        neighbour_buffer=neighbour_buffer,
    )
