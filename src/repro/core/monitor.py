"""Hot-data monitoring and slice migration (§8 future work).

The paper notes that "applications which only use slice-aware memory
management for the 'hot' data due to their very large working set
should employ monitoring/migration techniques to deal with variability
of hot data".  This module implements that extension:

* :class:`AccessMonitor` — epoch-based access-frequency tracking with
  exponential decay, identifying the currently hot objects.
* :class:`MigratingObjectStore` — a key→line placement layer that
  serves accesses through the cache hierarchy and can *migrate*
  objects between normal (contiguous) lines and slice-local lines.
  Migrations are real work: the line is read from its old home and
  written to the new one, charged to the migrating core.

The ablation benchmark (`benchmarks/test_ablation_migration.py`) shows
the point of it: with a drifting hot set, static slice-aware placement
decays to normal-allocation performance, while periodic migration
keeps the hot set in the fast slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cachesim.hierarchy import CacheHierarchy
from repro.core.slice_aware import SliceAwareContext
from repro.mem.address import CACHE_LINE
from repro.mem.slice_array import SliceLocalArray


class AccessMonitor:
    """Epoch-decayed access counting.

    Args:
        decay: multiplier applied to every count at each epoch end
            (0 forgets everything; 1 never decays).
        epoch_accesses: accesses per epoch.
    """

    def __init__(self, decay: float = 0.5, epoch_accesses: int = 4096) -> None:
        if not 0.0 <= decay <= 1.0:
            raise ValueError(f"decay must be in [0, 1], got {decay}")
        if epoch_accesses <= 0:
            raise ValueError(f"epoch_accesses must be positive, got {epoch_accesses}")
        self.decay = decay
        self.epoch_accesses = epoch_accesses
        self._counts: Dict[int, float] = {}
        self._since_epoch = 0
        self.epochs = 0

    def record(self, key: int) -> None:
        """Record one access to *key*."""
        self._counts[key] = self._counts.get(key, 0.0) + 1.0
        self._since_epoch += 1
        if self._since_epoch >= self.epoch_accesses:
            self._end_epoch()

    def _end_epoch(self) -> None:
        self._since_epoch = 0
        self.epochs += 1
        if self.decay == 0.0:
            self._counts.clear()
            return
        dead = []
        for key in self._counts:
            self._counts[key] *= self.decay
            if self._counts[key] < 0.25:
                dead.append(key)
        for key in dead:
            del self._counts[key]

    def count(self, key: int) -> float:
        """Current (decayed) count for *key*."""
        return self._counts.get(key, 0.0)

    def hottest(self, n: int, min_count: float = 0.0) -> List[int]:
        """The *n* highest-count keys (count >= *min_count*), hottest
        first.  A threshold separates genuinely hot keys from the sea
        of once-seen cold ones — promoting the latter just thrashes."""
        if n <= 0:
            return []
        candidates = (
            self._counts
            if min_count <= 0.0
            else {k: c for k, c in self._counts.items() if c >= min_count}
        )
        return sorted(candidates, key=candidates.get, reverse=True)[:n]

    def __len__(self) -> int:
        return len(self._counts)


@dataclass
class MigrationStats:
    """Bookkeeping for migrations performed."""

    promotions: int = 0
    demotions: int = 0
    migration_cycles: int = 0


class MigratingObjectStore:
    """Key→cache-line placement with hot-set migration.

    Every key initially lives on a normal (contiguous) line.  A bounded
    number of keys can be *promoted* onto slice-local lines of the
    serving core's preferred slice; when the fast pool is full, the
    coldest promoted key is demoted to make room.

    Args:
        context: machine context.
        core: serving core.
        n_keys: key-space size.
        fast_lines: capacity of the slice-local pool (the promoted
            working set; the paper recommends sizing it to fit the
            slice).
        monitor: access monitor (a default one is built if omitted).
    """

    def __init__(
        self,
        context: SliceAwareContext,
        core: int,
        n_keys: int,
        fast_lines: int,
        monitor: Optional[AccessMonitor] = None,
    ) -> None:
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        if fast_lines <= 0:
            raise ValueError(f"fast_lines must be positive, got {fast_lines}")
        self.context = context
        self.hierarchy: CacheHierarchy = context.hierarchy
        self.core = core
        self.n_keys = n_keys
        self.monitor = monitor if monitor is not None else AccessMonitor()
        self.stats = MigrationStats()
        normal_page = context.address_space.mmap_auto(n_keys * CACHE_LINE)
        self._normal_base = normal_page.phys
        target = context.preferred_slice(core)
        block = context.hash.n_slices
        fast_page = context.address_space.mmap_auto(fast_lines * block * CACHE_LINE)
        self._fast = SliceLocalArray(
            base_phys=fast_page.phys,
            n_lines=fast_lines,
            slice_hash=context.hash,
            target_slice=target,
            block_lines=block,
        )
        self.fast_lines = fast_lines
        # key -> fast-pool slot (promoted keys only).
        self._promoted: Dict[int, int] = {}
        self._free_slots: List[int] = list(range(fast_lines - 1, -1, -1))

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def address_of(self, key: int) -> int:
        """Current physical line of *key*."""
        self._check_key(key)
        slot = self._promoted.get(key)
        if slot is not None:
            return self._fast.line_address(slot)
        return self._normal_base + key * CACHE_LINE

    def access(self, key: int, write: bool = False) -> int:
        """Access *key* through the hierarchy; returns cycles."""
        self.monitor.record(key)
        address = self.address_of(key)
        if write:
            return self.hierarchy.write(self.core, address, 1)
        return self.hierarchy.read(self.core, address, 1)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------

    def is_promoted(self, key: int) -> bool:
        """Whether *key* currently lives in the fast slice."""
        return key in self._promoted

    def promote(self, key: int) -> bool:
        """Move *key* onto a slice-local line; ``False`` if pool full."""
        self._check_key(key)
        if key in self._promoted:
            return True
        if not self._free_slots:
            return False
        old = self.address_of(key)
        slot = self._free_slots.pop()
        self._promoted[key] = slot
        self._migrate(old, self._fast.line_address(slot))
        self.stats.promotions += 1
        return True

    def demote(self, key: int) -> None:
        """Move *key* back to its normal line."""
        slot = self._promoted.pop(key, None)
        if slot is None:
            return
        self._free_slots.append(slot)
        self._migrate(
            self._fast.line_address(slot), self._normal_base + key * CACHE_LINE
        )
        self.stats.demotions += 1

    def _migrate(self, src: int, dst: int) -> None:
        cycles = self.hierarchy.read(self.core, src, 1)
        cycles += self.hierarchy.write(self.core, dst, 1)
        self.hierarchy.clflush(src)
        self.stats.migration_cycles += cycles

    def rebalance(
        self,
        budget: Optional[int] = None,
        min_count: float = 2.0,
    ) -> int:
        """Promote the monitor's hottest keys, demoting cooled ones.

        Hysteresis: keys must reach *min_count* (decayed) accesses to
        be promoted, and already-promoted keys are only demoted once
        they fall below half of it — otherwise boundary keys would
        bounce between placements, paying two copies per bounce.

        Args:
            budget: maximum number of migrations (promotions +
                demotions) this call may perform; unlimited if omitted.
            min_count: promotion threshold.

        Returns:
            Number of promotions performed.
        """
        wanted = self.monitor.hottest(self.fast_lines, min_count=min_count)
        wanted_set = set(wanted)
        migrations = 0
        # Demote promoted keys that genuinely cooled down.
        for key in list(self._promoted):
            if key not in wanted_set and self.monitor.count(key) < min_count / 2:
                if budget is not None and migrations >= budget:
                    return 0
                self.demote(key)
                migrations += 1
        promoted = 0
        for key in wanted:
            if budget is not None and migrations >= budget:
                break
            if key not in self._promoted:
                if not self.promote(key):
                    break
                migrations += 1
                promoted += 1
        return promoted

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.n_keys:
            raise KeyError(f"key {key} outside [0, {self.n_keys})")
