"""Reverse-engineering Complex Addressing via uncore counters (§2.1).

Two stages, mirroring Maurice et al. (RAID '15) as the paper applies
them:

**Polling** — to learn the slice of one physical address: snapshot
every slice's lookup counter, hammer the address with accesses that are
guaranteed to reach the LLC (flush + load), and attribute the address
to the slice whose counter grew the most.  :class:`PollingOracle`
implements this against the simulated CBo counters; it works with any
slice count and needs no knowledge of the hash.

**Hash construction** — for CPUs with ``2**n`` slices the hash is
XOR-linear, so for any base address ``a`` and bit ``b``,
``slice(a) XOR slice(a ^ (1 << b))`` equals the hash of ``1 << b``
alone: a constant column of the XOR masks.  Probing each bit from a
handful of bases (and checking they agree) reconstructs the masks.
:func:`recover_complex_hash` does exactly that, and
:func:`verify_recovered_hash` replays the paper's final validation
sweep over a range of addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.cachesim.counters import EVENT_LOOKUPS
from repro.cachesim.hashfn import ComplexAddressingHash
from repro.cachesim.hierarchy import CacheHierarchy
from repro.mem.address import CACHE_LINE_BITS, is_power_of_two
from repro.mem.hugepage import HugepageBuffer

#: Type of a slice oracle: physical address -> slice index.
SliceOracle = Callable[[int], int]


class PollingOracle:
    """Slice oracle built from CBo lookup-counter polling.

    Args:
        hierarchy: the machine whose counters are polled.
        buffer: a hugepage owned by the experimenter — polling can only
            target addresses whose physical location is known, exactly
            as on real hardware.
        core: core used to issue the polling loads.
        polls: accesses per address; more polls dominate background
            noise (the simulator has none, but the loop shape is kept).
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        buffer: HugepageBuffer,
        core: int = 0,
        polls: int = 8,
    ) -> None:
        if polls <= 0:
            raise ValueError(f"polls must be positive, got {polls}")
        self.hierarchy = hierarchy
        self.buffer = buffer
        self.core = core
        self.polls = polls
        self.addresses_polled = 0

    def phys_to_virt(self, phys_address: int) -> int:
        """Translate a physical address inside the owned hugepage."""
        return self.buffer.phys_to_virt(phys_address)

    def __call__(self, phys_address: int) -> int:
        """Return the slice of *phys_address*, determined by polling."""
        hierarchy = self.hierarchy
        # Check the address is really ours (user space would fault
        # otherwise); the simulator has no TLB, so accesses below use
        # the physical address directly.
        self.phys_to_virt(phys_address)
        counters = hierarchy.llc.counters
        before = counters.snapshot(EVENT_LOOKUPS)
        for _ in range(self.polls):
            # Flush so the next load is an LLC lookup, then load.
            hierarchy.clflush(phys_address)
            hierarchy.read(self.core, phys_address)
        self.addresses_polled += 1
        return counters.busiest_slice(EVENT_LOOKUPS, before)


class MultiPageOracle:
    """Polling oracle spanning several hugepages.

    Recovering high address bits (e.g. bit 30+ on 1 GB pages) needs
    probe addresses whose single-bit toggles leave the page; owning a
    *contiguous run* of hugepages makes those toggles land in sibling
    pages the experimenter also owns — the standard practice on real
    hardware.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        buffers,
        core: int = 0,
        polls: int = 2,
    ) -> None:
        if not buffers:
            raise ValueError("at least one buffer is required")
        self.hierarchy = hierarchy
        self.buffers = list(buffers)
        self.core = core
        self.polls = polls
        self.addresses_polled = 0

    def owns(self, phys_address: int) -> bool:
        """Whether some owned buffer contains *phys_address*."""
        return any(
            b.phys <= phys_address < b.phys + b.size for b in self.buffers
        )

    def __call__(self, phys_address: int) -> int:
        """Return the slice of *phys_address*, determined by polling."""
        if not self.owns(phys_address):
            raise ValueError(f"address {phys_address:#x} is not owned")
        hierarchy = self.hierarchy
        counters = hierarchy.llc.counters
        before = counters.snapshot(EVENT_LOOKUPS)
        for _ in range(self.polls):
            hierarchy.clflush(phys_address)
            hierarchy.read(self.core, phys_address)
        self.addresses_polled += 1
        return counters.busiest_slice(EVENT_LOOKUPS, before)


@dataclass
class RecoveredHash:
    """Outcome of a hash-recovery run.

    Polling inside one hugepage cannot observe the contribution of
    address bits that never vary (everything above the page size);
    their combined parity appears as a constant XOR ``residual`` on
    the slice index, learned from the first base address.  Predictions
    are therefore exact for any address sharing the un-probed bits
    with the probed region — which is all a slice-aware allocator
    operating inside that hugepage needs.
    """

    hash: ComplexAddressingHash
    probed_bits: List[int]
    ambiguous_bits: List[int]
    residual: int = 0

    def predict(self, phys_address: int) -> int:
        """Predicted slice, including the constant residual."""
        return self.hash.slice_of(phys_address) ^ self.residual


def recover_complex_hash(
    oracle: SliceOracle,
    n_slices: int,
    base_addresses: Sequence[int],
    address_bits: Iterable[int] = range(6, 35),
    max_address: Optional[int] = None,
) -> RecoveredHash:
    """Reconstruct the XOR masks of a ``2**n``-slice Complex Addressing hash.

    Args:
        oracle: physical address -> slice (polling-based or otherwise).
        n_slices: slice count (must be a power of two).
        base_addresses: sample physical addresses to probe from; all
            must be reachable by the oracle, as must their single-bit
            toggles.
        address_bits: candidate physical-address bits to test.
        max_address: highest probe-able physical address + 1; bits whose
            toggle would leave the range are reported as *ambiguous*
            (unknowable — e.g. bits above a 1 GB hugepage).

    Returns:
        A :class:`RecoveredHash` with the reconstructed function and
        the lists of successfully probed and ambiguous bits.

    Raises:
        ValueError: if two base addresses disagree about a bit's
            contribution (the hash is then not XOR-linear over the
            probed bits).
    """
    if not is_power_of_two(n_slices):
        raise ValueError(f"n_slices must be a power of two, got {n_slices}")
    if not base_addresses:
        raise ValueError("at least one base address is required")
    n_out = n_slices.bit_length() - 1
    masks = [0] * n_out
    probed: List[int] = []
    ambiguous: List[int] = []
    base_slices = {a: oracle(a) for a in base_addresses}
    for bit_position in address_bits:
        if bit_position < CACHE_LINE_BITS:
            # Bits inside the line offset cannot affect the line's slice.
            continue
        probe = 1 << bit_position
        contribution: Optional[int] = None
        usable = False
        for base in base_addresses:
            flipped = base ^ probe
            if max_address is not None and not 0 <= flipped < max_address:
                continue
            usable = True
            diff = base_slices[base] ^ oracle(flipped)
            if contribution is None:
                contribution = diff
            elif contribution != diff:
                raise ValueError(
                    f"bit {bit_position} contributes inconsistently "
                    f"({contribution} vs {diff}): hash is not XOR-linear"
                )
        if not usable:
            ambiguous.append(bit_position)
            continue
        probed.append(bit_position)
        assert contribution is not None
        for out in range(n_out):
            if (contribution >> out) & 1:
                masks[out] |= probe
    recovered = ComplexAddressingHash(masks)
    first_base = base_addresses[0]
    residual = base_slices[first_base] ^ recovered.slice_of(first_base)
    return RecoveredHash(
        hash=recovered,
        probed_bits=probed,
        ambiguous_bits=ambiguous,
        residual=residual,
    )


def verify_recovered_hash(
    recovered: RecoveredHash,
    oracle: SliceOracle,
    addresses: Iterable[int],
) -> float:
    """Fraction of *addresses* where the recovered hash matches the oracle.

    The paper "verified by assessing a wide range of addresses and
    comparing the output of the hash function with the actual mapping";
    this is that sweep.  Addresses must share their un-probed high
    bits with the recovery region (see :class:`RecoveredHash`).
    """
    total = 0
    correct = 0
    for address in addresses:
        total += 1
        if recovered.predict(address) == oracle(address):
            correct += 1
    if total == 0:
        raise ValueError("no addresses supplied")
    return correct / total
