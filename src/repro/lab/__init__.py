"""``repro.lab`` — parallel experiment orchestration with persisted results.

The lab turns the repo's one-figure-at-a-time entry points into a
declarative, runnable evaluation matrix:

* :mod:`repro.lab.spec` — the :class:`ExperimentSpec` declaration and
  the :class:`Registry` holding them.
* :mod:`repro.lab.registry` — the default registry covering every
  figure, table, headroom, and ablation entry point.
* :mod:`repro.lab.runner` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  matrix runner with per-task timeouts, bounded retries, sweep
  splitting, and a live progress reporter.
* :mod:`repro.lab.store` — one JSON artifact per experiment plus a
  run-level ``manifest.json``.
* :mod:`repro.lab.compare` — tolerance-based diffing of two runs (or a
  run against the ``tests/golden/`` baselines).

CLI: ``python -m repro lab list|run|compare|report``.
"""

from repro.lab.compare import (
    ComparisonReport,
    ExperimentComparison,
    MetricDiff,
    compare_payloads,
    compare_runs,
    flatten_metrics,
    format_comparison_report,
    load_baseline,
)
from repro.lab.registry import default_registry
from repro.lab.runner import RunReport, run_matrix
from repro.lab.spec import ExperimentSpec, Registry, SplitSpec, derive_seed
from repro.lab.store import RunStore, load_run

__all__ = [
    "ComparisonReport",
    "ExperimentComparison",
    "ExperimentSpec",
    "MetricDiff",
    "Registry",
    "RunReport",
    "RunStore",
    "SplitSpec",
    "compare_payloads",
    "compare_runs",
    "default_registry",
    "derive_seed",
    "flatten_metrics",
    "format_comparison_report",
    "load_baseline",
    "load_run",
    "run_matrix",
]
