"""Comparing lab runs: per-metric tolerance diffs and a pass/regress table.

A "baseline" is either another lab run directory (``manifest.json`` +
artifacts) or the repo's ``tests/golden/`` directory, which
:func:`load_baseline` adapts into the same shape.  Comparison flattens
each experiment's result payload into dotted metric paths
(``dpdk.summary.percentiles.p95``), diffs metrics present on *both*
sides against a relative (or absolute) tolerance, and reports metrics
present on only one side as informational — only tolerance violations
on shared metrics regress the run.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.lab.registry import default_registry
from repro.lab.store import load_run

Number = Union[int, float]


def flatten_metrics(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts/lists into ``{"a.b.0.c": leaf}`` paths."""
    out: Dict[str, Any] = {}
    if isinstance(payload, Mapping):
        for key in payload:
            sub_prefix = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(payload[key], sub_prefix))
    elif isinstance(payload, (list, tuple)):
        for i, item in enumerate(payload):
            sub_prefix = f"{prefix}.{i}" if prefix else str(i)
            out.update(flatten_metrics(item, sub_prefix))
    else:
        out[prefix] = payload
    return out


@dataclass
class MetricDiff:
    """One shared metric compared across the two sides."""

    metric: str
    run_value: Any
    baseline_value: Any
    delta: Optional[float]       # absolute difference (numeric metrics)
    rel_delta: Optional[float]   # |a-b| / max(|a|,|b|) (numeric metrics)
    tolerance_kind: str          # "rel" | "abs" | "exact"
    tolerance: Optional[float]
    ok: bool


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _tolerance_for(
    metric: str,
    tolerances: Mapping[str, Mapping[str, float]],
    rel_tol: float,
) -> Tuple[str, float]:
    """Longest matching metric-prefix override, else the default rel."""
    best: Optional[Tuple[str, Mapping[str, float]]] = None
    for prefix, tol in tolerances.items():
        if metric == prefix or metric.startswith(prefix + "."):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, tol)
    if best is not None:
        tol = best[1]
        if "abs" in tol:
            return "abs", float(tol["abs"])
        if "rel" in tol:
            return "rel", float(tol["rel"])
    return "rel", rel_tol


def _diff_metric(
    metric: str,
    run_value: Any,
    baseline_value: Any,
    tolerances: Mapping[str, Mapping[str, float]],
    rel_tol: float,
) -> MetricDiff:
    if _is_number(run_value) and _is_number(baseline_value):
        a, b = float(run_value), float(baseline_value)
        delta = abs(a - b)
        scale = max(abs(a), abs(b))
        rel_delta = 0.0 if scale == 0.0 else delta / scale
        if math.isnan(a) or math.isnan(b):
            ok = math.isnan(a) and math.isnan(b)
            return MetricDiff(metric, run_value, baseline_value, None, None, "exact", None, ok)
        kind, tol = _tolerance_for(metric, tolerances, rel_tol)
        ok = delta <= tol if kind == "abs" else rel_delta <= tol
        return MetricDiff(metric, run_value, baseline_value, delta, rel_delta, kind, tol, ok)
    # Non-numeric (strings, bools, None): exact match.
    return MetricDiff(
        metric,
        run_value,
        baseline_value,
        None,
        None,
        "exact",
        None,
        run_value == baseline_value,
    )


def compare_payloads(
    run_payload: Any,
    baseline_payload: Any,
    *,
    rel_tol: float = 1e-6,
    tolerances: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> Tuple[List[MetricDiff], List[str], List[str]]:
    """Diff two result payloads.

    Returns ``(diffs, missing_in_run, missing_in_baseline)`` where the
    diffs cover metrics present on both sides and the missing lists
    name metrics present on only one.
    """
    tolerances = tolerances or {}
    run_metrics = flatten_metrics(run_payload)
    baseline_metrics = flatten_metrics(baseline_payload)
    shared = sorted(set(run_metrics) & set(baseline_metrics))
    diffs = [
        _diff_metric(m, run_metrics[m], baseline_metrics[m], tolerances, rel_tol)
        for m in shared
    ]
    missing_in_run = sorted(set(baseline_metrics) - set(run_metrics))
    missing_in_baseline = sorted(set(run_metrics) - set(baseline_metrics))
    return diffs, missing_in_run, missing_in_baseline


@dataclass
class ExperimentComparison:
    """Comparison verdict for one experiment name."""

    name: str
    status: str  # "ok" | "regress" | "missing-run" | "missing-baseline" | "no-overlap"
    compared: int = 0
    violations: List[MetricDiff] = field(default_factory=list)
    missing_in_run: List[str] = field(default_factory=list)
    missing_in_baseline: List[str] = field(default_factory=list)
    rel_tol: float = 1e-6

    @property
    def worst(self) -> Optional[MetricDiff]:
        numeric = [v for v in self.violations if v.rel_delta is not None]
        if numeric:
            return max(numeric, key=lambda v: v.rel_delta)
        return self.violations[0] if self.violations else None


@dataclass
class ComparisonReport:
    """All per-experiment verdicts for one run-vs-baseline comparison."""

    run_label: str
    baseline_label: str
    experiments: List[ExperimentComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(e.status == "regress" for e in self.experiments)

    def regressions(self) -> List[ExperimentComparison]:
        return [e for e in self.experiments if e.status == "regress"]


# ----------------------------------------------------------------------
# Baseline loading (lab runs and tests/golden adapters)
# ----------------------------------------------------------------------

#: golden file -> (experiment name, result-field extractor, tolerances)
_GOLDEN_ADAPTERS = {
    "fig05_latency.json": (
        "fig05",
        ("read_cycles", "write_cycles", "fastest_slice", "read_spread"),
    ),
    "fig06_speedup.json": (
        "fig06",
        (
            "read_speedup_pct",
            "write_speedup_pct",
            "normal_read_cycles",
            "normal_write_cycles",
        ),
    ),
    "fig07_ops_sweep.json": (
        "fig07",
        ("sizes", "normal_mops", "slice_mops"),
    ),
    "table3_throughput.json": (
        "table3",
        ("rows",),
    ),
    "table4_preferable_slices.json": (
        "table4",
        ("machine", "preferable"),
    ),
    "fleet_scale.json": (
        "fleet-scale",
        ("server_counts", "tenant_counts", "offered_mrps", "cells"),
    ),
    "fleet_failover.json": (
        "fleet-failover",
        ("intensities", "plans", "points"),
    ),
    "fleet_availability.json": (
        "fleet-availability",
        ("intensities", "healing", "plans", "points"),
    ),
    "fleet_durability.json": (
        "fleet-durability",
        ("replications", "intensities", "healing", "plans", "points"),
    ),
}


def _load_golden_dir(root: Path) -> Dict[str, Any]:
    """Adapt a ``tests/golden/`` directory into the run shape."""
    experiments: Dict[str, Any] = {}
    for filename, (name, fields) in _GOLDEN_ADAPTERS.items():
        path = root / filename
        if not path.is_file():
            continue
        data = json.loads(path.read_text())
        tolerances: Dict[str, Dict[str, float]] = {}
        if "abs_tol_pct" in data:
            # The fig06 golden bounds the speedup percentages by an
            # absolute percentage-point budget.
            for metric in ("read_speedup_pct", "write_speedup_pct"):
                tolerances[metric] = {"abs": float(data["abs_tol_pct"])}
        record: Dict[str, Any] = {
            "name": name,
            "params": data.get("params", {}),
            "result": {key: data[key] for key in fields if key in data},
        }
        if "rel_tol" in data:
            record["rel_tol"] = float(data["rel_tol"])
        if tolerances:
            record["tolerances"] = tolerances
        experiments[name] = record
    if not experiments:
        raise FileNotFoundError(
            f"{root} has neither a manifest.json nor known golden files"
        )
    return {
        "manifest": {"kind": "golden-baseline", "path": str(root)},
        "experiments": experiments,
    }


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load *path* as a lab run, or adapt it as a golden directory."""
    root = Path(path)
    if (root / "manifest.json").is_file():
        return load_run(root)
    return _load_golden_dir(root)


def compare_runs(
    run: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    rel_tol: Optional[float] = None,
    names: Optional[List[str]] = None,
) -> ComparisonReport:
    """Compare a loaded run against a loaded baseline.

    Per-experiment tolerances resolve in priority order: an explicit
    ``rel_tol`` argument, the baseline record's own ``rel_tol``/
    ``tolerances`` (golden files carry these), the registered spec's
    tolerances, then 1e-6.
    """
    registry = default_registry()
    run_experiments = run.get("experiments", {})
    baseline_experiments = baseline.get("experiments", {})
    selected = names or sorted(set(run_experiments) | set(baseline_experiments))
    report = ComparisonReport(
        run_label=str(run.get("manifest", {}).get("kind", "run")),
        baseline_label=str(baseline.get("manifest", {}).get("kind", "baseline")),
    )
    for name in selected:
        in_run = name in run_experiments
        in_baseline = name in baseline_experiments
        if not in_run and not in_baseline:
            continue
        if not in_run:
            report.experiments.append(
                ExperimentComparison(name=name, status="missing-run")
            )
            continue
        if not in_baseline:
            report.experiments.append(
                ExperimentComparison(name=name, status="missing-baseline")
            )
            continue
        run_record = run_experiments[name]
        baseline_record = baseline_experiments[name]

        spec = registry.get(name) if name in registry else None
        effective_rel = 1e-6 if spec is None else spec.rel_tol
        tolerances: Dict[str, Mapping[str, float]] = {}
        if spec is not None:
            tolerances.update(spec.tolerances)
        if "rel_tol" in baseline_record:
            effective_rel = float(baseline_record["rel_tol"])
        if "tolerances" in baseline_record:
            tolerances.update(baseline_record["tolerances"])
        if rel_tol is not None:
            effective_rel = rel_tol

        diffs, missing_in_run, missing_in_baseline = compare_payloads(
            run_record.get("result"),
            baseline_record.get("result"),
            rel_tol=effective_rel,
            tolerances=tolerances,
        )
        violations = [d for d in diffs if not d.ok]
        if not diffs:
            status = "no-overlap"
        elif violations:
            status = "regress"
        else:
            status = "ok"
        report.experiments.append(
            ExperimentComparison(
                name=name,
                status=status,
                compared=len(diffs),
                violations=violations,
                missing_in_run=missing_in_run,
                missing_in_baseline=missing_in_baseline,
                rel_tol=effective_rel,
            )
        )
    return report


def format_comparison_report(report: ComparisonReport, *, verbose: bool = False) -> str:
    """Render the pass/regress table (plus violation details)."""
    out = [f"lab compare — run vs {report.baseline_label}"]
    out.append("experiment           | status           | compared | violations")
    for exp in report.experiments:
        out.append(
            f"{exp.name:<20} | {exp.status:<16} | {exp.compared:>8} "
            f"| {len(exp.violations):>10}"
        )
    for exp in report.experiments:
        if not exp.violations:
            continue
        shown = exp.violations if verbose else exp.violations[:5]
        for v in shown:
            bound = (
                f"|Δ| {v.delta:.6g} > abs {v.tolerance:g}"
                if v.tolerance_kind == "abs"
                else f"relΔ {v.rel_delta:.3e} > rel {v.tolerance:g}"
                if v.tolerance_kind == "rel"
                else "values differ"
            )
            out.append(
                f"  REGRESS {exp.name}.{v.metric}: run={v.run_value!r} "
                f"baseline={v.baseline_value!r} ({bound})"
            )
        if not verbose and len(exp.violations) > len(shown):
            out.append(
                f"  ... {len(exp.violations) - len(shown)} more violations "
                f"in {exp.name} (use --verbose)"
            )
    out.append("RESULT: " + ("PASS" if report.ok else "REGRESS"))
    return "\n".join(out)
