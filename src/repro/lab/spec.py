"""Experiment declarations for the lab: specs, splits, and the registry.

An :class:`ExperimentSpec` is the declarative contract one experiment
offers the orchestrator: how to run it, at which default/reduced
parameters, how to serialize its result to JSON, and (optionally) how
to split it into independent sub-tasks that workers can execute in
parallel and merge back bit-identically.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Seeds stay in numpy's legal range.
_SEED_MODULUS = 2**31


def derive_seed(base: int, name: str, index: int = 0) -> int:
    """Deterministically derive a task seed from the run's base seed.

    The default registry pins every experiment's ``seed_offset`` to 0
    so lab runs at base seed 0 stay comparable with direct
    ``run_*(seed=0)`` calls and the golden baselines; the derivation
    exists for registrants that *want* decorrelated seeds (offset by
    a name/index hash) and for the runner's internal bookkeeping.
    """
    if index == 0:
        return base % _SEED_MODULUS
    return (base + zlib.crc32(f"{name}#{index}".encode())) % _SEED_MODULUS


@dataclass(frozen=True)
class SplitSpec:
    """How to decompose one experiment into independent sub-tasks.

    ``make_tasks(params)`` returns one kwargs dict per sub-task;
    ``task_runner(**kwargs)`` computes a sub-result in a worker;
    ``merge(params, results)`` reassembles the full result in the
    parent, with ``results`` ordered like ``make_tasks`` emitted them.
    The decomposition must be bit-identical to the monolithic runner —
    that is what makes ``--jobs N`` results equal to ``--jobs 1``.
    """

    task_runner: Callable[..., Any]
    make_tasks: Callable[[Mapping[str, Any]], Sequence[Dict[str, Any]]]
    merge: Callable[[Mapping[str, Any], Sequence[Any]], Any]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment/ablation.

    Args:
        name: registry key (``fig13``, ``ablation-ddio``, ...).
        title: the paper artefact this reproduces (``Fig. 13``, ...).
        runner: module-level callable computing the result object.
        serializer: converts the result object to JSON-ready data.
        default_params: full-scale keyword arguments.
        reduced_params: cheap keyword arguments for smoke/CI runs.
        seeded: whether ``runner`` accepts a ``seed`` keyword.
        seed_offset: added to the run's base seed for this experiment.
        split: optional parallel decomposition (see :class:`SplitSpec`).
        rel_tol: default relative tolerance when comparing runs.
        tolerances: per-metric-prefix overrides, each entry either
            ``{"rel": x}`` or ``{"abs": y}``.
        tags: free-form labels (``"sweep"``, ``"extension"``, ...).
    """

    name: str
    title: str
    runner: Callable[..., Any]
    serializer: Callable[[Any], Any]
    default_params: Mapping[str, Any] = field(default_factory=dict)
    reduced_params: Mapping[str, Any] = field(default_factory=dict)
    seeded: bool = True
    seed_offset: int = 0
    split: Optional[SplitSpec] = None
    rel_tol: float = 1e-6
    tolerances: Mapping[str, Dict[str, float]] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def params_for(self, scale: str) -> Dict[str, Any]:
        """The parameter set for ``"full"`` or ``"reduced"`` scale."""
        if scale == "full":
            return dict(self.default_params)
        if scale == "reduced":
            merged = dict(self.default_params)
            merged.update(self.reduced_params)
            return merged
        raise ValueError(f"unknown scale {scale!r} (use 'full' or 'reduced')")

    def seed_for(self, base_seed: int) -> int:
        """This experiment's seed under the run's base seed."""
        return (base_seed + self.seed_offset) % _SEED_MODULUS


class Registry:
    """Name-keyed collection of :class:`ExperimentSpec` objects."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add *spec*; duplicate names are an error."""
        if spec.name in self._specs:
            raise ValueError(f"experiment {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove *name* (used by tests injecting throwaway specs)."""
        self._specs.pop(name, None)

    def get(self, name: str) -> ExperimentSpec:
        """Look up one spec; unknown names list the alternatives."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise KeyError(f"unknown experiment {name!r}; registered: {known}")

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self, tag: Optional[str] = None) -> List[str]:
        """All registered names (optionally filtered by tag), sorted."""
        return sorted(
            name
            for name, spec in self._specs.items()
            if tag is None or tag in spec.tags
        )

    def specs(self) -> List[ExperimentSpec]:
        """All specs in name order."""
        return [self._specs[name] for name in self.names()]
