"""Parallel matrix runner: fan experiments out across worker processes.

Execution model:

* every experiment contributes one task — or several, when its spec
  declares a :class:`~repro.lab.spec.SplitSpec` (the Fig. 7/13/14/15
  sweeps split into independent size/arm/load points);
* tasks run on a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``--jobs 1`` runs inline, same code path for computing results);
* each task gets a per-task timeout enforced *inside* the worker via
  ``SIGALRM`` — a stuck task raises instead of wedging the pool;
* failures (exceptions, timeouts, worker crashes) are retried a
  bounded number of times; a persistently failing experiment is
  recorded as ``failed`` in the manifest and the rest of the matrix
  still completes;
* task seeds derive deterministically from the run's base seed, so
  results are bit-identical regardless of ``--jobs``.
"""

from __future__ import annotations

import signal
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import InjectedFault
from repro.lab.registry import default_registry
from repro.lab.spec import ExperimentSpec


class TaskTimeout(Exception):
    """A task exceeded its per-task wall-clock budget."""


TaskKey = Tuple[str, int]
ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class LabTask:
    """One schedulable unit: an experiment or one of its sub-tasks."""

    experiment: str
    index: int
    total: int
    params: Mapping[str, Any]
    seed: Optional[int]

    @property
    def key(self) -> TaskKey:
        return (self.experiment, self.index)

    @property
    def label(self) -> str:
        if self.total == 1:
            return self.experiment
        return f"{self.experiment}[{self.index + 1}/{self.total}]"


@dataclass
class TaskOutcome:
    """Terminal state of one task after all its attempts."""

    task: LabTask
    status: str  # "ok" | "failed"
    attempts: int
    duration_s: float
    error: Optional[str] = None
    result: Any = None
    #: Monotonic nanosecond duration of the successful attempt.  The
    #: float ``duration_s`` mirror exists for display; sub-millisecond
    #: work (engine microbenches) must use this field — the store's
    #: rounded seconds lose all precision there.
    duration_ns: int = 0


@dataclass
class ExperimentOutcome:
    """Merged, serialized state of one experiment in the run."""

    name: str
    title: str
    status: str  # "ok" | "failed"
    params: Dict[str, Any]
    seed: Optional[int]
    tasks: int
    attempts: int
    duration_s: float
    error: Optional[str] = None
    result: Any = None          # merged result object (in-process use)
    payload: Any = None         # JSON-ready serialized result
    duration_ns: int = 0        # summed ns-resolution task durations


@dataclass
class RunReport:
    """Everything one ``run_matrix`` invocation produced."""

    seed: int
    scale: str
    jobs: int
    timeout_s: Optional[float]
    retries: int
    wall_clock_s: float
    experiments: Dict[str, ExperimentOutcome] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(e.status == "ok" for e in self.experiments.values())

    def failed_names(self) -> List[str]:
        return sorted(
            name for name, e in self.experiments.items() if e.status != "ok"
        )


def _execute_task(
    experiment: str,
    index: int,
    params: Mapping[str, Any],
    seed: Optional[int],
    timeout_s: Optional[float],
) -> Tuple[Any, int]:
    """Run one task to completion; worker-side (and inline) entry point.

    Resolves the experiment from the process-local default registry —
    forked workers inherit the parent's registrations.  The timeout is
    an in-worker ``SIGALRM`` so an overrunning task raises
    :class:`TaskTimeout` instead of blocking the pool.
    """
    spec = default_registry().get(experiment)
    runner = spec.split.task_runner if spec.split is not None else spec.runner
    kwargs = dict(params)
    if spec.seeded and seed is not None:
        kwargs.setdefault("seed", seed)
    use_alarm = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    start = time.perf_counter_ns()  # simcheck: ignore[SIM001] wall-clock duration is provenance, not a result
    if use_alarm:
        def _on_alarm(signum, frame):
            raise TaskTimeout(
                f"{experiment}[{index}] exceeded {timeout_s:g}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        result = runner(**kwargs)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return result, time.perf_counter_ns() - start  # simcheck: ignore[SIM001] provenance only


def _describe_error(exc: BaseException) -> str:
    name = type(exc).__name__
    text = str(exc) or "worker process died (likely crash or OOM kill)"
    return f"{name}: {text}"


def _pool_context():
    """Prefer fork so workers share the parent's registry state."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _run_tasks_inline(
    tasks: Sequence[LabTask],
    timeout_s: Optional[float],
    retries: int,
    note: Callable[[LabTask, TaskOutcome], None],
) -> Dict[TaskKey, TaskOutcome]:
    outcomes: Dict[TaskKey, TaskOutcome] = {}
    for task in tasks:
        attempts = 0
        while True:
            attempts += 1
            start = time.perf_counter_ns()  # simcheck: ignore[SIM001] provenance only
            try:
                result, duration_ns = _execute_task(
                    task.experiment, task.index, task.params, task.seed, timeout_s
                )
                outcomes[task.key] = TaskOutcome(
                    task,
                    "ok",
                    attempts,
                    duration_ns / 1e9,
                    result=result,
                    duration_ns=duration_ns,
                )
                break
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                # An escaped InjectedFault means a resilience layer
                # failed to absorb its own chaos — a determinism bug a
                # retry would only mask.  Fail immediately.
                if not isinstance(exc, InjectedFault) and attempts <= retries:
                    continue
                failed_ns = time.perf_counter_ns() - start  # simcheck: ignore[SIM001] provenance only
                outcomes[task.key] = TaskOutcome(
                    task,
                    "failed",
                    attempts,
                    failed_ns / 1e9,
                    error=_describe_error(exc),
                    duration_ns=failed_ns,
                )
                break
        note(task, outcomes[task.key])
    return outcomes


def _run_tasks_pooled(
    tasks: Sequence[LabTask],
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    note: Callable[[LabTask, TaskOutcome], None],
    retry_note: Callable[[LabTask, int, str], None],
) -> Dict[TaskKey, TaskOutcome]:
    outcomes: Dict[TaskKey, TaskOutcome] = {}
    attempts: Dict[TaskKey, int] = {t.key: 0 for t in tasks}
    context = _pool_context()
    queue = deque(tasks)
    while queue:
        # One pool per round: a crashed worker breaks the pool, so any
        # tasks it took down get retried on a fresh one.
        batch = list(queue)
        queue.clear()
        executor = ProcessPoolExecutor(
            max_workers=min(jobs, len(batch)), mp_context=context
        )
        futures = {
            executor.submit(
                _execute_task, t.experiment, t.index, t.params, t.seed, timeout_s
            ): t
            for t in batch
        }
        for future in as_completed(futures):
            task = futures[future]
            attempts[task.key] += 1
            try:
                result, duration_ns = future.result()
            except Exception as exc:  # noqa: BLE001 - includes BrokenProcessPool
                error = _describe_error(exc)
                # Escaped injected faults are fatal (see inline runner).
                if (
                    not isinstance(exc, InjectedFault)
                    and attempts[task.key] <= retries
                ):
                    queue.append(task)
                    retry_note(task, attempts[task.key], error)
                else:
                    outcomes[task.key] = TaskOutcome(
                        task, "failed", attempts[task.key], 0.0, error=error
                    )
                    note(task, outcomes[task.key])
                continue
            outcomes[task.key] = TaskOutcome(
                task,
                "ok",
                attempts[task.key],
                duration_ns / 1e9,
                result=result,
                duration_ns=duration_ns,
            )
            note(task, outcomes[task.key])
        executor.shutdown(wait=True)
    return outcomes


def build_tasks(
    spec: ExperimentSpec, params: Mapping[str, Any], base_seed: int
) -> List[LabTask]:
    """The task list one experiment contributes to the matrix."""
    exp_seed = spec.seed_for(base_seed) if spec.seeded else None
    if spec.split is None:
        return [LabTask(spec.name, 0, 1, dict(params), exp_seed)]
    subtasks = list(spec.split.make_tasks(params))
    return [
        LabTask(spec.name, i, len(subtasks), dict(sub), exp_seed)
        for i, sub in enumerate(subtasks)
    ]


def run_matrix(
    names: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    seed: int = 0,
    scale: str = "reduced",
    timeout_s: Optional[float] = None,
    retries: int = 2,
    params_override: Optional[Mapping[str, Mapping[str, Any]]] = None,
    progress: Optional[ProgressFn] = None,
) -> RunReport:
    """Run a set of registered experiments, optionally in parallel.

    Args:
        names: experiments to run (default: the whole registry).
        jobs: worker processes; ``1`` executes inline.
        seed: base seed every experiment's seed derives from.
        scale: ``"reduced"`` (smoke-sized) or ``"full"`` parameters.
        timeout_s: per-task wall-clock budget (``None`` = unlimited).
        retries: extra attempts after a task fails/crashes/times out.
        params_override: per-experiment parameter overrides, e.g.
            ``{"fig13": {"n_bulk_packets": 4000}}``.
        progress: callable receiving one line per task completion.

    Returns:
        A :class:`RunReport`; persist it with
        :meth:`repro.lab.store.RunStore.write_report`.
    """
    registry = default_registry()
    selected = list(names) if names else registry.names()
    specs = [registry.get(name) for name in selected]

    tasks: List[LabTask] = []
    exp_params: Dict[str, Dict[str, Any]] = {}
    for spec in specs:
        params = spec.params_for(scale)
        if params_override and spec.name in params_override:
            params.update(params_override[spec.name])
        exp_params[spec.name] = params
        tasks.extend(build_tasks(spec, params, seed))

    total = len(tasks)
    done = [0]

    def note(task: LabTask, outcome: TaskOutcome) -> None:
        done[0] += 1
        if progress is not None:
            mark = "ok" if outcome.status == "ok" else f"FAILED ({outcome.error})"
            progress(
                f"[{done[0]}/{total}] {task.label}: {mark} "
                f"({outcome.duration_s:.1f}s, attempt {outcome.attempts})"
            )

    def retry_note(task: LabTask, attempt: int, error: str) -> None:
        if progress is not None:
            progress(f"[retry] {task.label}: attempt {attempt} failed — {error}")

    started = time.perf_counter()  # simcheck: ignore[SIM001] provenance only
    if jobs <= 1:
        outcomes = _run_tasks_inline(tasks, timeout_s, retries, note)
    else:
        outcomes = _run_tasks_pooled(
            tasks, jobs, timeout_s, retries, note, retry_note
        )
    wall_clock_s = time.perf_counter() - started  # simcheck: ignore[SIM001] provenance only

    report = RunReport(
        seed=seed,
        scale=scale,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        wall_clock_s=wall_clock_s,
    )
    for spec in specs:
        spec_tasks = [t for t in tasks if t.experiment == spec.name]
        spec_outcomes = [outcomes[t.key] for t in spec_tasks]
        total_attempts = sum(o.attempts for o in spec_outcomes)
        total_duration_ns = sum(o.duration_ns for o in spec_outcomes)
        failures = [o for o in spec_outcomes if o.status != "ok"]
        outcome = ExperimentOutcome(
            name=spec.name,
            title=spec.title,
            status="failed" if failures else "ok",
            params=exp_params[spec.name],
            seed=spec.seed_for(seed) if spec.seeded else None,
            tasks=len(spec_tasks),
            attempts=total_attempts,
            duration_s=total_duration_ns / 1e9,
            duration_ns=total_duration_ns,
        )
        if failures:
            outcome.error = "; ".join(
                f"{o.task.label}: {o.error}" for o in failures
            )
        else:
            results = [o.result for o in spec_outcomes]
            merged = (
                spec.split.merge(exp_params[spec.name], results)
                if spec.split is not None
                else results[0]
            )
            outcome.result = merged
            outcome.payload = spec.serializer(merged)
        report.experiments[spec.name] = outcome
    return report
