"""The default experiment registry: every CLI-reachable entry point.

Names mirror the CLI surface: ``figNN`` for ``repro fig NN``,
``tableN`` for ``repro table N``, ``headroom``, ``ablation-<which>``
for ``repro ablation <which>``, plus the extension experiments the CLI
does not expose (tagged ``extension``).

Reduced parameters are sized so the whole matrix finishes in about a
minute serially — small enough for CI smoke, large enough that every
figure keeps its shape.  ``fig05``/``fig06``/``table4`` reduced
parameters deliberately equal the golden-baseline parameters in
``tests/golden/`` so ``repro lab compare <run> tests/golden`` checks
real numbers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.lab.spec import ExperimentSpec, Registry, SplitSpec

_REGISTRY: Optional[Registry] = None


# ----------------------------------------------------------------------
# Split helpers (module-level so worker processes can resolve them)
# ----------------------------------------------------------------------

def _fig07_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per array size of the Fig. 7 sweep."""
    from repro.experiments.fig07_ops_sweep import PAPER_SIZES

    base = dict(params)
    sizes = base.pop("sizes", None) or list(PAPER_SIZES)
    return [dict(base, sizes=[size]) for size in sizes]


def _fig07_merge(params: Mapping[str, Any], results: Sequence[Any]) -> Any:
    from repro.experiments.fig07_ops_sweep import merge_ops_sweeps

    return merge_ops_sweeps(list(results))


def _arm_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """DPDK vs +CacheDirector as two independent tasks."""
    return [
        dict(params, cache_director=False),
        dict(params, cache_director=True),
    ]


def _arm_merge(params: Mapping[str, Any], results: Sequence[Any]) -> Any:
    from repro.experiments.nfv_common import merge_arms

    return merge_arms(list(results))


def _fig15_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per (configuration, offered load) sweep point."""
    from repro.experiments.fig15_knee import DEFAULT_LOADS

    base = dict(params)
    loads = base.pop("loads_gbps", None) or list(DEFAULT_LOADS)
    base.pop("knee_gbps", None)
    return [
        dict(base, cache_director=cache_director, load_gbps=load)
        for cache_director in (False, True)
        for load in loads
    ]


def _fig15_merge(params: Mapping[str, Any], results: Sequence[Any]) -> Any:
    from repro.experiments.fig15_knee import DEFAULT_LOADS, assemble_fig15

    loads = params.get("loads_gbps") or list(DEFAULT_LOADS)
    n = len(loads)
    return assemble_fig15(
        results[:n], results[n:], knee_gbps=params.get("knee_gbps")
    )


def _chaos_tail_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per (fault class, arm) cell of the chaos matrix."""
    from repro.experiments.chaos import DEFAULT_TAIL_CLASSES

    base = dict(params)
    classes = base.pop("classes", None) or list(DEFAULT_TAIL_CLASSES)
    return [
        dict(base, fault_class=fault_class, cache_director=cache_director)
        for fault_class in classes
        for cache_director in (False, True)
    ]


def _chaos_tail_merge(params: Mapping[str, Any], results: Sequence[Any]) -> Any:
    from repro.experiments.chaos import assemble_chaos_tail

    return assemble_chaos_tail(params, list(results))


def _knee_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per (intensity, arm) point of the degradation sweep."""
    from repro.experiments.chaos import DEFAULT_INTENSITIES

    base = dict(params)
    grid = base.pop("intensities", None)
    grid = [float(v) for v in (grid or DEFAULT_INTENSITIES)]
    return [
        dict(base, intensity=intensity, cache_director=cache_director)
        for intensity in grid
        for cache_director in (False, True)
    ]


def _knee_merge(params: Mapping[str, Any], results: Sequence[Any]) -> Any:
    from repro.experiments.chaos import assemble_degradation_knee

    return assemble_degradation_knee(params, list(results))


def _fleet_scale_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per (server count, tenant count) grid cell."""
    from repro.experiments.fleet import (
        DEFAULT_SERVER_COUNTS,
        DEFAULT_TENANT_COUNTS,
    )

    base = dict(params)
    servers = base.pop("server_counts", None) or list(DEFAULT_SERVER_COUNTS)
    tenants = base.pop("tenant_counts", None) or list(DEFAULT_TENANT_COUNTS)
    return [
        dict(base, n_servers=int(n_servers), n_tenants=int(n_tenants))
        for n_servers in servers
        for n_tenants in tenants
    ]


def _fleet_scale_merge(params: Mapping[str, Any], results: Sequence[Any]) -> Any:
    from repro.experiments.fleet import assemble_fleet_scale

    return assemble_fleet_scale(params, list(results))


def _fleet_failover_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per intensity point of the failover sweep."""
    from repro.experiments.fleet import DEFAULT_FAILOVER_INTENSITIES

    base = dict(params)
    grid = base.pop("intensities", None)
    grid = [float(v) for v in (grid or DEFAULT_FAILOVER_INTENSITIES)]
    return [dict(base, intensity=intensity) for intensity in grid]


def _fleet_failover_merge(
    params: Mapping[str, Any], results: Sequence[Any]
) -> Any:
    from repro.experiments.fleet import assemble_fleet_failover

    return assemble_fleet_failover(params, list(results))


def _fleet_availability_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per intensity point of the availability sweep."""
    from repro.experiments.fleet import DEFAULT_AVAILABILITY_INTENSITIES

    base = dict(params)
    grid = base.pop("intensities", None)
    grid = [float(v) for v in (grid or DEFAULT_AVAILABILITY_INTENSITIES)]
    return [dict(base, intensity=intensity) for intensity in grid]


def _fleet_availability_merge(
    params: Mapping[str, Any], results: Sequence[Any]
) -> Any:
    from repro.experiments.fleet import assemble_fleet_availability

    return assemble_fleet_availability(params, list(results))


def _fleet_durability_tasks(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """One task per (replication, intensity) cell of the matrix."""
    from repro.experiments.fleet import (
        DEFAULT_DURABILITY_INTENSITIES,
        DEFAULT_DURABILITY_REPLICATIONS,
    )

    base = dict(params)
    replications = base.pop("replications", None)
    replications = [
        int(v) for v in (replications or DEFAULT_DURABILITY_REPLICATIONS)
    ]
    grid = base.pop("intensities", None)
    grid = [float(v) for v in (grid or DEFAULT_DURABILITY_INTENSITIES)]
    return [
        dict(base, replication=replication, intensity=intensity)
        for replication in replications
        for intensity in grid
    ]


def _fleet_durability_merge(
    params: Mapping[str, Any], results: Sequence[Any]
) -> Any:
    from repro.experiments.fleet import assemble_fleet_durability

    return assemble_fleet_durability(params, list(results))


# ----------------------------------------------------------------------
# Registry construction
# ----------------------------------------------------------------------

def _build() -> Registry:
    # Imports stay inside the builder: ``repro lab list`` and worker
    # start-up pay for them once, and nothing leaks at module import.
    from repro.experiments import ablations
    from repro.experiments import tables
    from repro.experiments.fig04_hash_recovery import fig04_to_dict, run_fig04
    from repro.experiments.fig05_access_time import (
        profile_to_dict,
        run_fig05,
        run_fig16,
    )
    from repro.experiments.fig06_speedup import fig06_to_dict, run_fig06
    from repro.experiments.fig07_ops_sweep import fig07_to_dict, run_fig07
    from repro.experiments.fig08_kvs import fig08_to_dict, run_fig08
    from repro.experiments.chaos import (
        chaos_tail_to_dict,
        degradation_knee_to_dict,
        run_chaos_tail,
        run_chaos_tail_arm,
        run_degradation_knee,
        run_degradation_point,
    )
    from repro.experiments.fleet import (
        fleet_availability_to_dict,
        fleet_durability_to_dict,
        fleet_failover_to_dict,
        fleet_scale_to_dict,
        run_fleet_availability,
        run_fleet_availability_point,
        run_fleet_durability,
        run_fleet_durability_point,
        run_fleet_failover,
        run_fleet_failover_point,
        run_fleet_scale,
        run_fleet_scale_cell,
    )
    from repro.experiments.fig12_low_rate import fig12_to_dict, run_fig12
    from repro.experiments.fig13_forwarding import run_fig13, run_fig13_arm
    from repro.experiments.fig14_service_chain import run_fig14, run_fig14_arm
    from repro.experiments.fig15_knee import (
        fig15_to_dict,
        run_fig15,
        run_fig15_point,
    )
    from repro.experiments.fig17_isolation import fig17_to_dict, run_fig17
    from repro.experiments.headroom import (
        headroom_to_dict,
        run_headroom_experiment,
    )
    from repro.experiments.load_sensitivity import (
        load_sensitivity_to_dict,
        run_load_sensitivity,
    )
    from repro.experiments.multitenant import (
        multitenant_to_dict,
        run_multitenant_experiment,
    )
    from repro.experiments.nfv_common import comparison_to_dict
    from repro.experiments.skylake_port import (
        run_skylake_port,
        skylake_port_to_dict,
    )
    from repro.experiments.traffic_classes import (
        run_traffic_class_sweep,
        traffic_classes_to_dict,
    )

    registry = Registry()

    registry.register(ExperimentSpec(
        name="fig04",
        title="Fig. 4 — Complex Addressing hash recovery",
        runner=run_fig04,
        serializer=fig04_to_dict,
        default_params={"n_bases": 4, "verify_addresses": 512},
        reduced_params={"verify_addresses": 128},
    ))
    registry.register(ExperimentSpec(
        name="fig05",
        title="Fig. 5 — per-slice access time (Haswell)",
        runner=run_fig05,
        serializer=profile_to_dict,
        # Matches tests/golden/fig05_latency.json at both scales.
        default_params={"core": 0, "runs": 3},
        reduced_params={},
    ))
    registry.register(ExperimentSpec(
        name="fig06",
        title="Fig. 6 — slice-aware allocation speedup",
        runner=run_fig06,
        serializer=fig06_to_dict,
        # Matches tests/golden/fig06_speedup.json at both scales.
        default_params={"core": 0, "n_ops": 2000},
        reduced_params={},
    ))
    registry.register(ExperimentSpec(
        name="fig07",
        title="Fig. 7 — OPS vs working-set size (8 cores)",
        runner=run_fig07,
        serializer=fig07_to_dict,
        default_params={"n_ops": 1000, "engine": "fast"},
        reduced_params={
            "n_ops": 200,
            "sizes": [128 * 1024, 512 * 1024, 2 << 20],
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_fig07,
            make_tasks=_fig07_tasks,
            merge=_fig07_merge,
        ),
        tags=("sweep",),
    ))
    registry.register(ExperimentSpec(
        name="fig08",
        title="Fig. 8 — slice-aware KVS TPS",
        runner=run_fig08,
        serializer=fig08_to_dict,
        default_params={"warmup_requests": 60_000, "measured_requests": 12_000},
        reduced_params={
            "n_keys": 1 << 18,
            "warmup_requests": 3_000,
            "measured_requests": 800,
        },
    ))
    registry.register(ExperimentSpec(
        name="fig12",
        title="Fig. 12 — DuT latency at 1000 pps",
        runner=run_fig12,
        serializer=fig12_to_dict,
        default_params={"packets_per_run": 2000, "runs": 3},
        reduced_params={"packets_per_run": 400, "runs": 2},
    ))
    registry.register(ExperimentSpec(
        name="fig13",
        title="Fig. 13 — simple forwarding @ 100 Gbps (RSS)",
        runner=run_fig13,
        serializer=comparison_to_dict,
        default_params={
            "offered_gbps": 100.0,
            "n_bulk_packets": 150_000,
            "micro_packets": 2500,
            "runs": 2,
            "engine": "fast",
        },
        reduced_params={
            "offered_gbps": 100.0,
            "n_bulk_packets": 20_000,
            "micro_packets": 500,
            "runs": 1,
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_fig13_arm,
            make_tasks=_arm_tasks,
            merge=_arm_merge,
        ),
        tags=("sweep",),
    ))
    registry.register(ExperimentSpec(
        name="fig14",
        title="Figs. 1 & 14 — Router-NAPT-LB @ 100 Gbps (FlowDirector)",
        runner=run_fig14,
        serializer=comparison_to_dict,
        default_params={
            "offered_gbps": 100.0,
            "n_bulk_packets": 150_000,
            "micro_packets": 2500,
            "runs": 2,
        },
        reduced_params={
            "offered_gbps": 100.0,
            "n_bulk_packets": 20_000,
            "micro_packets": 500,
            "runs": 1,
        },
        split=SplitSpec(
            task_runner=run_fig14_arm,
            make_tasks=_arm_tasks,
            merge=_arm_merge,
        ),
        tags=("sweep",),
    ))
    registry.register(ExperimentSpec(
        name="fig15",
        title="Fig. 15 — p99 latency vs throughput knee",
        runner=run_fig15,
        serializer=fig15_to_dict,
        default_params={"n_bulk_packets": 60_000, "micro_packets": 1500},
        reduced_params={
            "loads_gbps": [10.0, 20.0, 30.0, 45.0, 65.0, 90.0],
            "n_bulk_packets": 15_000,
            "micro_packets": 400,
        },
        split=SplitSpec(
            task_runner=run_fig15_point,
            make_tasks=_fig15_tasks,
            merge=_fig15_merge,
        ),
        tags=("sweep",),
    ))
    registry.register(ExperimentSpec(
        name="fig16",
        title="Fig. 16 — per-slice access time (Skylake)",
        runner=run_fig16,
        serializer=profile_to_dict,
        default_params={"core": 0, "runs": 5},
        reduced_params={"runs": 3},
    ))
    registry.register(ExperimentSpec(
        name="fig17",
        title="Fig. 17 — slice-based isolation vs CAT",
        runner=run_fig17,
        serializer=fig17_to_dict,
        default_params={"n_ops": 6000},
        reduced_params={"n_ops": 1500},
    ))
    registry.register(ExperimentSpec(
        name="headroom",
        title="§4.2 — dynamic headroom distribution",
        runner=run_headroom_experiment,
        serializer=headroom_to_dict,
        default_params={"n_packets": 20_000},
        reduced_params={"n_packets": 3_000},
    ))

    registry.register(ExperimentSpec(
        name="table1",
        title="Table 1 — Haswell cache specification",
        runner=tables.run_table1,
        serializer=tables.table1_to_dict,
        seeded=False,
    ))
    registry.register(ExperimentSpec(
        name="table2",
        title="Table 2 — traffic classes",
        runner=tables.run_table2,
        serializer=tables.table2_to_dict,
        seeded=False,
    ))
    registry.register(ExperimentSpec(
        name="table3",
        title="Table 3 — throughput at 100 Gbps + improvement",
        runner=tables.run_table3,
        serializer=tables.table3_to_dict,
        default_params={"n_bulk_packets": 60_000, "micro_packets": 1500, "runs": 1},
        reduced_params={"n_bulk_packets": 20_000, "micro_packets": 500, "runs": 1},
    ))
    registry.register(ExperimentSpec(
        name="table4",
        title="Table 4 — preferable slices per core (Skylake)",
        runner=tables.run_table4,
        serializer=tables.table4_to_dict,
        seeded=False,
    ))

    registry.register(ExperimentSpec(
        name="ablation-ddio",
        title="Ablation — DDIO ways vs service cycles",
        runner=ablations.run_ddio_ways_ablation,
        serializer=ablations.ddio_ablation_to_dict,
        default_params={"micro_packets": 2000},
        reduced_params={"micro_packets": 600},
    ))
    registry.register(ExperimentSpec(
        name="ablation-prefetcher",
        title="Ablation — L2 streamer prefetcher vs allocation",
        runner=ablations.run_prefetcher_ablation,
        serializer=ablations.prefetcher_ablation_to_dict,
        default_params={"n_lines": 16384, "n_ops": 6000},
        reduced_params={"n_lines": 4096, "n_ops": 1500},
    ))
    registry.register(ExperimentSpec(
        name="ablation-replacement",
        title="Ablation — LLC replacement policies",
        runner=ablations.run_replacement_ablation,
        serializer=ablations.replacement_ablation_to_dict,
        default_params={},
        reduced_params={"scan_lines": 1 << 17, "rounds": 4},
    ))
    registry.register(ExperimentSpec(
        name="ablation-migration",
        title="Ablation — hot-set migration vs static placement",
        runner=ablations.run_migration_experiment,
        serializer=ablations.migration_experiment_to_dict,
        default_params={},
        reduced_params={
            "n_keys": 1 << 15,
            "hot_keys": 1536,
            "ops_per_phase": 20_000,
        },
    ))
    registry.register(ExperimentSpec(
        name="ablation-value-size",
        title="Ablation — multi-line KVS values",
        runner=ablations.run_value_size_ablation,
        serializer=ablations.value_size_ablation_to_dict,
        default_params={},
        reduced_params={"warmup": 6_000, "measured": 1_500},
    ))
    registry.register(ExperimentSpec(
        name="ablation-mtu",
        title="Ablation — MTU frames vs DDIO eviction",
        runner=ablations.run_mtu_eviction_experiment,
        serializer=ablations.mtu_eviction_to_dict,
        default_params={"queue_depth": 512},
        reduced_params={"queue_depth": 256},
    ))
    registry.register(ExperimentSpec(
        name="ablation-rx-strategies",
        title="§4.2 — RX placement strategies",
        runner=ablations.run_rx_strategy_comparison,
        serializer=ablations.rx_strategies_to_dict,
        default_params={"n_packets": 8000},
        reduced_params={"n_packets": 3000},
    ))
    registry.register(ExperimentSpec(
        name="ablation-multitenant",
        title="Extension — multi-tenant LLC policies",
        runner=run_multitenant_experiment,
        serializer=multitenant_to_dict,
        default_params={"n_ops": 4000},
        reduced_params={"n_ops": 1200},
    ))

    registry.register(ExperimentSpec(
        name="chaos-tail",
        title="Chaos — tail latency per fault class (DPDK vs +CD)",
        runner=run_chaos_tail,
        serializer=chaos_tail_to_dict,
        default_params={
            "chain": "forwarding",
            "offered_gbps": 100.0,
            "n_bulk_packets": 60_000,
            "micro_packets": 1500,
            "runs": 2,
            "engine": "fast",
        },
        reduced_params={
            "chain": "forwarding",
            "classes": ["none", "nic-drop", "mempool", "nf-crash", "mixed"],
            "offered_gbps": 100.0,
            "n_bulk_packets": 15_000,
            "micro_packets": 400,
            "runs": 1,
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_chaos_tail_arm,
            make_tasks=_chaos_tail_tasks,
            merge=_chaos_tail_merge,
        ),
        tags=("chaos",),
    ))
    registry.register(ExperimentSpec(
        name="degradation-knee",
        title="Chaos — goodput vs fault intensity (degradation knee)",
        runner=run_degradation_knee,
        serializer=degradation_knee_to_dict,
        default_params={
            "fault_class": "mixed",
            "chain": "stateful",
            "offered_gbps": 40.0,
            "n_bulk_packets": 60_000,
            "micro_packets": 1500,
            "runs": 1,
            "engine": "fast",
        },
        reduced_params={
            "fault_class": "mixed",
            "chain": "stateful",
            "offered_gbps": 40.0,
            "intensities": [0.0, 1.0, 2.0, 4.0, 8.0],
            "n_bulk_packets": 12_000,
            "micro_packets": 400,
            "runs": 1,
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_degradation_point,
            make_tasks=_knee_tasks,
            merge=_knee_merge,
        ),
        tags=("chaos",),
    ))

    registry.register(ExperimentSpec(
        name="fleet-scale",
        title="Fleet — goodput and tails vs servers × tenants",
        runner=run_fleet_scale,
        serializer=fleet_scale_to_dict,
        default_params={
            "server_counts": [2, 4, 8],
            "tenant_counts": [2, 4, 8],
            "requests": 120_000,
            "warmup": 20_000,
            "epoch_requests": 10_000,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        reduced_params={
            "server_counts": [2, 3],
            "tenant_counts": [2],
            "requests": 2400,
            "warmup": 600,
            "epoch_requests": 300,
            "n_keys": 1 << 10,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_fleet_scale_cell,
            make_tasks=_fleet_scale_tasks,
            merge=_fleet_scale_merge,
        ),
        tags=("fleet",),
    ))
    registry.register(ExperimentSpec(
        name="fleet-failover",
        title="Fleet — tail inflation and recovery under server kills",
        runner=run_fleet_failover,
        serializer=fleet_failover_to_dict,
        default_params={
            "n_servers": 6,
            "n_tenants": 4,
            "requests": 150_000,
            "warmup": 25_000,
            "epoch_requests": 12_500,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        reduced_params={
            "intensities": [0.0, 1.0, 4.0],
            "n_servers": 3,
            "n_tenants": 2,
            "requests": 2400,
            "warmup": 600,
            "epoch_requests": 300,
            "n_keys": 1 << 10,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_fleet_failover_point,
            make_tasks=_fleet_failover_tasks,
            merge=_fleet_failover_merge,
        ),
        tags=("fleet",),
    ))
    registry.register(ExperimentSpec(
        name="fleet-availability",
        title="Fleet — unavailability and recovery under kill+stall chaos",
        runner=run_fleet_availability,
        serializer=fleet_availability_to_dict,
        default_params={
            "intensities": [0.0, 2.0, 4.0, 6.0, 8.0],
            "n_servers": 6,
            "n_tenants": 4,
            "requests": 150_000,
            "warmup": 25_000,
            "epoch_requests": 7_500,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        reduced_params={
            "intensities": [0.0, 2.0, 6.0, 8.0],
            "n_servers": 4,
            "n_tenants": 2,
            "requests": 2400,
            "warmup": 600,
            "epoch_requests": 200,
            "n_keys": 1 << 10,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_fleet_availability_point,
            make_tasks=_fleet_availability_tasks,
            merge=_fleet_availability_merge,
        ),
        tags=("fleet",),
    ))
    registry.register(ExperimentSpec(
        name="fleet-durability",
        title="Fleet — lost keys vs replication factor × kill intensity",
        runner=run_fleet_durability,
        serializer=fleet_durability_to_dict,
        default_params={
            "replications": [1, 2, 3],
            "intensities": [0.0, 1.0, 2.0],
            "n_servers": 5,
            "n_tenants": 2,
            "requests": 150_000,
            "warmup": 25_000,
            "epoch_requests": 12_500,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        reduced_params={
            "replications": [1, 2, 3],
            "intensities": [0.0, 1.0, 2.0],
            "n_servers": 4,
            "n_tenants": 2,
            "requests": 2400,
            "warmup": 600,
            "epoch_requests": 300,
            "n_keys": 1 << 10,
            "offered_mrps": 16.0,
            "engine": "fast",
        },
        split=SplitSpec(
            task_runner=run_fleet_durability_point,
            make_tasks=_fleet_durability_tasks,
            merge=_fleet_durability_merge,
        ),
        tags=("fleet",),
    ))

    registry.register(ExperimentSpec(
        name="skylake-port",
        title="§6 — CacheDirector across architectures",
        runner=run_skylake_port,
        serializer=skylake_port_to_dict,
        default_params={"micro_packets": 2500},
        reduced_params={"micro_packets": 600},
        tags=("extension",),
    ))
    registry.register(ExperimentSpec(
        name="load-sensitivity",
        title="Extension — p99 gain vs offered load",
        runner=run_load_sensitivity,
        serializer=load_sensitivity_to_dict,
        default_params={},
        reduced_params={
            "loads_gbps": [20.0, 55.0, 90.0],
            "n_bulk_packets": 15_000,
            "micro_packets": 400,
        },
        tags=("extension",),
    ))
    registry.register(ExperimentSpec(
        name="traffic-classes",
        title="Table 2 sweep — low-rate latency per packet size",
        runner=run_traffic_class_sweep,
        serializer=traffic_classes_to_dict,
        default_params={"packets_per_class": 1500},
        reduced_params={"packets_per_class": 400},
        tags=("extension",),
    ))

    return registry


def default_registry() -> Registry:
    """The process-wide registry, built on first use.

    Worker processes forked by the runner inherit the parent's
    registry (including any test-injected specs); spawned workers
    rebuild the default set on first lookup.
    """
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build()
    return _REGISTRY
