"""Persisting lab runs: one JSON artifact per experiment + a manifest.

Run-directory layout::

    <out_dir>/
        manifest.json        # run-level metadata + per-experiment index
        fig05.json           # one artifact per successful experiment
        fig13.json
        ...

Each artifact records the parameters, seed, attempt/duration metadata,
and the serialized result payload, so a run directory is a complete,
self-describing record that ``repro lab compare`` can diff against
another run or against the ``tests/golden/`` baselines.
"""

from __future__ import annotations

import json
import platform
import socket
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.lab.runner import RunReport

MANIFEST_NAME = "manifest.json"
SCHEMA_VERSION = 1


def _git_sha() -> Optional[str]:
    """Best-effort HEAD SHA; ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_info() -> Dict[str, Any]:
    """Host/toolchain provenance recorded in every manifest."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep elsewhere
        numpy_version = None
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "numpy": numpy_version,
        "git_sha": _git_sha(),
    }


def _jsonable(value: Any) -> Any:
    """Defensive fallback for non-JSON parameter values."""
    try:
        json.dumps(value)
        return value
    except TypeError:
        return str(value)


class RunStore:
    """Writes a :class:`~repro.lab.runner.RunReport` to a run directory."""

    def __init__(self, out_dir: Union[str, Path]):
        self.path = Path(out_dir)
        self.path.mkdir(parents=True, exist_ok=True)

    def artifact_path(self, name: str) -> Path:
        return self.path / f"{name}.json"

    def write_report(self, report: RunReport) -> Path:
        """Persist artifacts + manifest; returns the manifest path."""
        index: Dict[str, Dict[str, Any]] = {}
        for name, outcome in sorted(report.experiments.items()):
            entry: Dict[str, Any] = {
                "title": outcome.title,
                "status": outcome.status,
                "tasks": outcome.tasks,
                "attempts": outcome.attempts,
                # duration_s is a rounded display value; duration_ns is
                # the exact monotonic measurement (microbench entries
                # finish in well under a millisecond, so rounding to
                # 3 decimals would erase them entirely).  The bench
                # trajectory layer (repro.bench) consumes duration_ns.
                "duration_s": round(outcome.duration_s, 3),
                "duration_ns": int(outcome.duration_ns),
                "artifact": None,
            }
            if outcome.status == "ok":
                artifact = {
                    "schema_version": SCHEMA_VERSION,
                    "name": name,
                    "title": outcome.title,
                    "params": {
                        k: _jsonable(v) for k, v in outcome.params.items()
                    },
                    "seed": outcome.seed,
                    "tasks": outcome.tasks,
                    "attempts": outcome.attempts,
                    "duration_s": round(outcome.duration_s, 3),
                    "duration_ns": int(outcome.duration_ns),
                    "result": outcome.payload,
                }
                path = self.artifact_path(name)
                path.write_text(
                    json.dumps(artifact, indent=2, sort_keys=True) + "\n"
                )
                entry["artifact"] = path.name
            else:
                entry["error"] = outcome.error
            index[name] = entry

        manifest = {
            "schema_version": SCHEMA_VERSION,
            "kind": "lab-run",
            "seed": report.seed,
            "scale": report.scale,
            "jobs": report.jobs,
            "timeout_s": report.timeout_s,
            "retries": report.retries,
            "wall_clock_s": round(report.wall_clock_s, 3),
            "ok": report.ok,
            # Explicit failure roll-up so CI and humans can see at a
            # glance which experiments never produced an artifact.
            "failed": report.failed_names(),
            "environment": environment_info(),
            "experiments": index,
        }
        manifest_path = self.path / MANIFEST_NAME
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        return manifest_path


def load_run(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a run directory back into memory.

    Returns ``{"manifest": <manifest dict>, "experiments": {name:
    <artifact dict>}}``; failed experiments appear in the manifest but
    have no artifact entry.
    """
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
    manifest = json.loads(manifest_path.read_text())
    experiments: Dict[str, Any] = {}
    for name, entry in manifest.get("experiments", {}).items():
        artifact = entry.get("artifact")
        if artifact:
            experiments[name] = json.loads((root / artifact).read_text())
    return {"manifest": manifest, "experiments": experiments}
