"""``repro lab`` subcommands: list, run, compare, report."""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict

from repro.lab.compare import (
    compare_runs,
    format_comparison_report,
    load_baseline,
)
from repro.lab.registry import default_registry
from repro.lab.runner import run_matrix
from repro.lab.store import RunStore, load_run


def _cmd_lab_list(args: argparse.Namespace) -> int:
    registry = default_registry()
    names = registry.names(tag=args.tag)
    if args.json:
        payload = []
        for name in names:
            spec = registry.get(name)
            payload.append(
                {
                    "name": spec.name,
                    "title": spec.title,
                    "seeded": spec.seeded,
                    "parallel_split": spec.split is not None,
                    "tags": list(spec.tags),
                    "default_params": dict(spec.default_params),
                    "reduced_params": dict(spec.reduced_params),
                }
            )
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{len(names)} registered experiments:")
    for name in names:
        spec = registry.get(name)
        split = " [split]" if spec.split is not None else ""
        tags = f" ({', '.join(spec.tags)})" if spec.tags else ""
        print(f"  {name:<22} {spec.title}{split}{tags}")
    return 0


def _cmd_lab_run(args: argparse.Namespace) -> int:
    if not args.names and not args.all:
        print("lab run: give experiment names or --all", file=sys.stderr)
        return 2
    names = None if args.all else args.names
    out_dir = args.out or time.strftime("lab-runs/%Y%m%d-%H%M%S")  # simcheck: ignore[SIM001] run-directory name, not a result
    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))
    report = run_matrix(
        names,
        jobs=args.jobs,
        seed=args.seed,
        scale=args.scale,
        timeout_s=args.timeout,
        retries=args.retries,
        progress=progress,
    )
    manifest_path = RunStore(out_dir).write_report(report)
    print(f"run: seed={report.seed} scale={report.scale} jobs={report.jobs} "
          f"wall={report.wall_clock_s:.1f}s")
    print("experiment             | status | tasks | attempts | seconds")
    for name in sorted(report.experiments):
        e = report.experiments[name]
        print(
            f"{name:<22} | {e.status:<6} | {e.tasks:>5} | {e.attempts:>8} "
            f"| {e.duration_s:>7.1f}"
        )
    failed = report.failed_names()
    if failed:
        for name in failed:
            print(f"FAILED {name}: {report.experiments[name].error}", file=sys.stderr)
        print(
            f"lab run: {len(failed)} experiment(s) still failing after "
            f"{report.retries} retries: {', '.join(failed)} — exiting nonzero",
            file=sys.stderr,
        )
    print(f"wrote {manifest_path}")
    return 0 if report.ok else 1


def _cmd_lab_compare(args: argparse.Namespace) -> int:
    run = load_run(args.run_dir)
    baseline = load_baseline(args.baseline)
    report = compare_runs(
        run,
        baseline,
        rel_tol=args.rel_tol,
        names=args.names or None,
    )
    if args.json:
        payload: Dict[str, Any] = {
            "ok": report.ok,
            "experiments": [
                {
                    "name": e.name,
                    "status": e.status,
                    "compared": e.compared,
                    "violations": [
                        {
                            "metric": v.metric,
                            "run": v.run_value,
                            "baseline": v.baseline_value,
                            "rel_delta": v.rel_delta,
                            "tolerance_kind": v.tolerance_kind,
                            "tolerance": v.tolerance,
                        }
                        for v in e.violations
                    ],
                    "missing_in_run": e.missing_in_run,
                    "missing_in_baseline": e.missing_in_baseline,
                }
                for e in report.experiments
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(format_comparison_report(report, verbose=args.verbose))
    if not report.ok:
        return 1
    if args.strict and any(
        e.status in ("missing-run", "no-overlap") for e in report.experiments
    ):
        return 1
    return 0


def _cmd_lab_report(args: argparse.Namespace) -> int:
    run = load_run(args.run_dir)
    if args.json:
        print(json.dumps(run, indent=2, sort_keys=True))
        return 0
    manifest = run["manifest"]
    env = manifest.get("environment", {})
    print(
        f"lab run {args.run_dir}: seed={manifest.get('seed')} "
        f"scale={manifest.get('scale')} jobs={manifest.get('jobs')} "
        f"wall={manifest.get('wall_clock_s')}s "
        f"ok={manifest.get('ok')}"
    )
    print(
        f"environment: python {env.get('python')} on {env.get('hostname')} "
        f"(git {str(env.get('git_sha'))[:12]})"
    )
    print("experiment             | status | tasks | attempts | seconds | artifact")
    for name, entry in sorted(manifest.get("experiments", {}).items()):
        print(
            f"{name:<22} | {entry.get('status'):<6} | {entry.get('tasks'):>5} "
            f"| {entry.get('attempts'):>8} | {entry.get('duration_s'):>7} "
            f"| {entry.get('artifact') or '-'}"
        )
        if entry.get("status") != "ok":
            print(f"    error: {entry.get('error')}")
    return 0 if manifest.get("ok") else 1


def add_lab_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``lab`` subcommand tree to the main CLI."""
    p = sub.add_parser(
        "lab",
        help="orchestrate the experiment matrix (run/compare/report)",
    )
    lab_sub = p.add_subparsers(dest="lab_command", required=True)

    q = lab_sub.add_parser("list", help="list registered experiments")
    q.add_argument("--tag", default=None, help="filter by tag (sweep, extension)")
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_lab_list)

    q = lab_sub.add_parser("run", help="run experiments in parallel")
    q.add_argument("names", nargs="*", help="experiment names (see `lab list`)")
    q.add_argument("--all", action="store_true", help="run the whole registry")
    q.add_argument("--jobs", type=int, default=1, help="worker processes")
    q.add_argument("--seed", type=int, default=0, help="base seed")
    q.add_argument("--scale", choices=("reduced", "full"), default="reduced")
    q.add_argument("--out", default=None, help="run directory (default lab-runs/<ts>)")
    q.add_argument("--timeout", type=float, default=None, help="per-task seconds")
    q.add_argument("--retries", type=int, default=2, help="retries per task")
    q.add_argument("--quiet", action="store_true", help="suppress task progress")
    q.set_defaults(func=_cmd_lab_run)

    q = lab_sub.add_parser("compare", help="diff a run against a baseline")
    q.add_argument("run_dir", help="run directory (with manifest.json)")
    q.add_argument("baseline", help="other run directory or tests/golden/")
    q.add_argument("--names", nargs="*", default=None, help="restrict to experiments")
    q.add_argument("--rel-tol", type=float, default=None, help="override tolerance")
    q.add_argument("--verbose", action="store_true", help="show all violations")
    q.add_argument(
        "--strict",
        action="store_true",
        help="also fail on experiments missing from the run",
    )
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_lab_compare)

    q = lab_sub.add_parser("report", help="summarize a stored run")
    q.add_argument("run_dir", help="run directory (with manifest.json)")
    q.add_argument("--json", action="store_true")
    q.set_defaults(func=_cmd_lab_report)
