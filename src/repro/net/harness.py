"""The LoadGen/DuT measurement harness (§5, Fig. 11).

The paper measures end-to-end latency black-box style: the LoadGen
timestamps packets, the DuT processes them, and the measured latency
decomposes into *loopback* (link + LoadGen overhead, measured
separately and subtracted), *queueing at the DuT*, and *service time
at the DuT*.  CacheDirector only changes the last two.

The harness reproduces that decomposition:

1. **Microsimulation** — a sample of packets runs through the full
   DuT (:class:`~repro.net.chain.DutEnvironment`): NIC DMA via DDIO,
   PMD, service chain — on the cache simulator, yielding per-packet
   service cycles.
2. **Queueing** — per-RX-queue FIFO waiting times via the Lindley
   recursion, vectorised over millions of arrivals, with waits capped
   at the RX-ring capacity (packets beyond it are drops).  The NIC's
   per-packet floor (wire + PCIe/DDIO overhead — the cause of the
   ~76 Gbps ceiling the paper attributes to the Mellanox NIC, PCIe
   and DDIO) bounds each queue's drain rate.
3. **Composition** — latency = loopback + wait + service; summaries
   use the paper's percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.chain import DutEnvironment
from repro.net.packet import Packet
from repro.stats.percentiles import LatencySummary, summarize_latencies

#: Loopback latency floor the paper measured for the 100 Gbps runs.
LOOPBACK_100G_US = 495.0

#: Loopback latency floor for the low-rate runs (Fig. 12).
LOOPBACK_LOW_RATE_US = 9.0


@dataclass
class NicModel:
    """Per-packet floor and fixed latency of the NIC/PCIe path.

    ``overhead_ns`` models one RX queue's share of the per-packet
    PCIe/DDIO transaction cost that caps packet rates on the testbed's
    ConnectX-4 ("the ~76 Gbps limit … due to the Mellanox NIC's
    limitation for packets smaller than 512 B and other architectural
    limitations such as PCIe and DDIO", §5.1.2); the wire term is the
    100 Gbps serialisation time.  ``fixed_latency_ns`` is the NIC
    hardware pipeline latency (DMA engines, doorbells) every packet
    pays regardless of load.
    """

    link_gbps: float = 100.0
    overhead_ns: float = 490.0
    fixed_latency_ns: float = 4000.0

    def floor_ns(self, sizes_bytes: np.ndarray) -> np.ndarray:
        """Minimum per-packet occupancy of one RX queue, in ns."""
        return sizes_bytes * 8.0 / self.link_gbps + self.overhead_ns


def lindley_waits(
    arrivals_ns: np.ndarray,
    services_ns: np.ndarray,
    cap_ns: Optional[float] = None,
) -> np.ndarray:
    """FIFO waiting times for one queue via the Lindley recursion.

    ``W[0] = 0; W[i] = max(0, W[i-1] + S[i-1] - (A[i] - A[i-1]))``,
    computed in O(n) with prefix sums: with
    ``X[i] = S[i-1] - (A[i]-A[i-1])`` and ``C = cumsum(X)``,
    ``W[i] = C[i] - min(0, min_{j<=i} C[j])`` *restarted* at every
    point where the queue empties — which the prefix-min formulation
    handles automatically.

    Args:
        arrivals_ns: non-decreasing arrival times.
        services_ns: per-packet service durations.
        cap_ns: optional cap on waiting time (finite buffer): waits are
            clipped, modelling drop-from-tail once the ring is full.
    """
    arrivals = np.asarray(arrivals_ns, dtype=float)
    services = np.asarray(services_ns, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must have equal length")
    n = arrivals.size
    if n == 0:
        return np.zeros(0)
    if np.any(np.diff(arrivals) < 0):
        raise ValueError("arrival times must be non-decreasing")
    x = services[:-1] - np.diff(arrivals)
    c = np.concatenate(([0.0], np.cumsum(x)))
    running_min = np.minimum.accumulate(np.minimum(c, 0.0))
    waits = c - running_min
    if cap_ns is not None:
        np.clip(waits, 0.0, cap_ns, out=waits)
    return waits


def finite_queue_sim(
    arrivals_ns: np.ndarray,
    services_ns: np.ndarray,
    capacity: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact FIFO single-server queue with a finite buffer.

    An arrival finding *capacity* packets in the system (in service +
    waiting) is dropped — the RX ring is full and the NIC overwrites
    nothing.  Returns ``(waits_ns, dropped)`` where waits of dropped
    packets are NaN.

    This is the overload-regime model: unlike a wait-clipped Lindley
    recursion it yields the correct ~``1 - capacity_ratio`` drop
    fraction and keeps the delivered packets' latency at the ring-full
    plateau the paper's 100 Gbps runs sit on.
    """
    arrivals = np.asarray(arrivals_ns, dtype=float)
    services = np.asarray(services_ns, dtype=float)
    if arrivals.shape != services.shape:
        raise ValueError("arrivals and services must have equal length")
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    n = arrivals.size
    waits = np.full(n, np.nan)
    dropped = np.zeros(n, dtype=bool)
    # Departure times of admitted packets; head index marks the oldest
    # packet that may still be in the system.
    departures: List[float] = []
    head = 0
    last_departure = 0.0
    for i in range(n):
        t = arrivals[i]
        while head < len(departures) and departures[head] <= t:
            head += 1
        if len(departures) - head >= capacity:
            dropped[i] = True
            continue
        start = t if t > last_departure else last_departure
        waits[i] = start - t
        last_departure = start + services[i]
        departures.append(last_departure)
    return waits, dropped


@dataclass
class LatencyRunResult:
    """One run of the latency experiment."""

    latencies_us: np.ndarray
    summary: LatencySummary
    achieved_gbps: float
    offered_gbps: float
    drop_fraction: float
    #: Useful-bit throughput: like :attr:`achieved_gbps` but excluding
    #: packets the fault layer marked non-goodput (duplicates, frames
    #: with injected corruption).  Equal to ``achieved_gbps`` in
    #: fault-free runs.
    goodput_gbps: float = 0.0


def simulate_queueing_latency(
    arrivals_ns: np.ndarray,
    sizes_bytes: np.ndarray,
    queue_ids: np.ndarray,
    service_ns: np.ndarray,
    n_queues: int,
    nic: Optional[NicModel] = None,
    ring_capacity: int = 1024,
    loopback_us: float = LOOPBACK_100G_US,
    subtract_loopback: bool = True,
    goodput: Optional[np.ndarray] = None,
) -> LatencyRunResult:
    """End-to-end latency for a steered packet stream.

    Args:
        arrivals_ns: packet arrival times at the DuT.
        sizes_bytes: frame sizes.
        queue_ids: RX queue per packet (from RSS / FlowDirector).
        service_ns: per-packet core service times (microsim samples).
        n_queues: number of RX queues / cores.
        nic: per-packet NIC floor model; effective service is the max
            of core time and NIC floor.
        ring_capacity: RX ring depth — bounds the queueing delay; the
            excess arrival mass is counted as drops.
        loopback_us: loopback latency added to every packet.
        subtract_loopback: report latencies with the loopback *minimum*
            removed, as most paper figures do.
        goodput: optional per-packet boolean mask from the fault layer;
            ``False`` packets (duplicates, corrupted frames) still
            occupy the queue but are excluded from the goodput
            throughput figure.  ``None`` means every delivered packet
            is goodput.
    """
    nic = nic if nic is not None else NicModel()
    arrivals = np.asarray(arrivals_ns, dtype=float)
    sizes = np.asarray(sizes_bytes, dtype=float)
    queues = np.asarray(queue_ids)
    service = np.asarray(service_ns, dtype=float)
    if not (arrivals.shape == sizes.shape == queues.shape == service.shape):
        raise ValueError("all per-packet arrays must have equal length")
    effective = np.maximum(service, nic.floor_ns(sizes))
    latencies = np.empty_like(arrivals)
    dropped = np.zeros(arrivals.shape, dtype=bool)
    for queue in range(n_queues):
        mask = queues == queue
        if not mask.any():
            continue
        qa = arrivals[mask]
        qs = effective[mask]
        waits, q_dropped = finite_queue_sim(qa, qs, capacity=ring_capacity)
        dropped[mask] = q_dropped
        latencies[mask] = waits + qs + nic.fixed_latency_ns
    kept = ~dropped
    duration_s = (arrivals.max() - arrivals.min()) / 1e9 if arrivals.size > 1 else 1.0
    achieved_gbps = float(sizes[kept].sum() * 8 / max(duration_s, 1e-12) / 1e9)
    offered_gbps = float(sizes.sum() * 8 / max(duration_s, 1e-12) / 1e9)
    if goodput is None:
        goodput_gbps = achieved_gbps
    else:
        good = np.asarray(goodput, dtype=bool)
        if good.shape != arrivals.shape:
            raise ValueError("goodput mask must match the per-packet arrays")
        goodput_gbps = float(
            sizes[kept & good].sum() * 8 / max(duration_s, 1e-12) / 1e9
        )
    latencies_us = latencies[kept] / 1e3
    if not subtract_loopback:
        latencies_us = latencies_us + loopback_us
    summary = summarize_latencies(latencies_us)
    return LatencyRunResult(
        latencies_us=latencies_us,
        summary=summary,
        achieved_gbps=achieved_gbps,
        offered_gbps=offered_gbps,
        drop_fraction=float(dropped.mean()),
        goodput_gbps=goodput_gbps,
    )


def sample_service_distribution(
    env: DutEnvironment,
    packets: Sequence[Packet],
    queues: Sequence[int],
) -> np.ndarray:
    """Microsimulate *packets* and return service times in ns.

    Dropped packets (pool exhaustion — rare in microsim, where the
    packets run synchronously) are excluded.
    """
    freq_ghz = env.config.spec.freq_ghz
    cycles = env.service_cycles(list(packets), list(queues))
    return np.array([c / freq_ghz for c in cycles if c is not None])


def bootstrap_service_ns(
    samples_ns: np.ndarray,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Resample a measured service-time distribution to *count* draws."""
    if samples_ns.size == 0:
        raise ValueError("no service-time samples")
    return rng.choice(samples_ns, size=count, replace=True)
