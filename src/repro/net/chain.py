"""Service chains and the Device-under-Test environment.

:class:`ServiceChain` strings network functions together;
:class:`DutEnvironment` assembles a complete device under test — the
simulated machine, hugepages, mempool, DDIO, NIC (optionally with
CacheDirector), poll-mode driver and chain — and processes packets
end to end, returning the cycles the polling core spent per packet.
This is the microsimulation that feeds the latency harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cachesim.ddio import DdioEngine
from repro.cachesim.machines import HASWELL_E5_2667V3, MachineSpec
from repro.core.cache_director import CacheDirector
from repro.core.slice_aware import SliceAwareContext
from repro.dpdk.mbuf import DEFAULT_DATAROOM, DEFAULT_HEADROOM, Mbuf
from repro.dpdk.mempool import Mempool
from repro.dpdk.nic import Nic
from repro.dpdk.pmd import PollModeDriver
from repro.faults.plan import FaultClock
from repro.net.nf import (
    LpmRouter,
    MacSwapForwarder,
    Napt,
    NetworkFunction,
    RoundRobinLoadBalancer,
)
from repro.net.packet import Packet


class ServiceChain:
    """An ordered pipeline of network functions.

    Args:
        name: chain label.
        nfs: the pipeline stages, in order.
        framework_cycles: fixed per-packet cost of the surrounding
            framework (FastClick element traversal, batching, Metron
            runtime).  The cache simulator only accounts for the NFs'
            memory behaviour; this constant calibrates total
            per-packet cost to the per-core rates implied by the
            paper's Table 3 throughputs (~1 800 cycles/packet at
            3.2 GHz and ~76 Gbps over 8 cores).
    """

    def __init__(
        self,
        name: str,
        nfs: Sequence[NetworkFunction],
        framework_cycles: int = 0,
    ) -> None:
        if not nfs:
            raise ValueError("a chain needs at least one NF")
        if framework_cycles < 0:
            raise ValueError("framework_cycles must be non-negative")
        self.name = name
        self.nfs: List[NetworkFunction] = list(nfs)
        self.framework_cycles = framework_cycles
        self.packets_processed = 0

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate every NF's state."""
        for nf in self.nfs:
            nf.setup(context)

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Run one packet through every NF; returns total cycles."""
        cycles = self.framework_cycles
        # Intentional scalar reference path: NFs are a sequential
        # pipeline per packet by definition (FastClick semantics).
        for nf in self.nfs:
            cycles += nf.process(core, mbuf)  # deepcheck: ignore[PERF001]
        self.packets_processed += 1
        return cycles


def simple_forwarding_chain() -> ServiceChain:
    """The §5.1 application: MAC swap and bounce."""
    return ServiceChain(
        "simple-forwarding", [MacSwapForwarder()], framework_cycles=1600
    )


def router_napt_lb_chain(hw_offload: bool = True) -> ServiceChain:
    """The §5.2 stateful chain: Router → NAPT → LB.

    ``hw_offload`` mirrors Metron's FlowDirector offload of the routing
    table classification to the NIC.
    """
    return ServiceChain(
        "router-napt-lb",
        [
            LpmRouter(n_routes=3120, hw_offload=hw_offload),
            Napt(),
            RoundRobinLoadBalancer(),
        ],
        framework_cycles=1270,
    )


@dataclass
class DutConfig:
    """Configuration of a device under test."""

    spec: MachineSpec = HASWELL_E5_2667V3
    n_cores: int = 8
    cache_director: bool = False
    n_mbufs: int = 4096
    rx_ring_size: int = 1024
    data_room: int = DEFAULT_DATAROOM
    ddio_enabled: bool = True
    seed: int = 0
    #: Cache-access engine for the microsimulation: ``"reference"`` or
    #: ``"fast"`` (identical outcomes; see ``repro.cachesim.engine``).
    engine: str = "reference"
    #: Optional mempool ``(low, high)`` in-use watermarks; when set the
    #: NIC sheds load under pressure instead of exhausting the pool.
    watermarks: Optional[Tuple[int, int]] = None


class DutEnvironment:
    """A fully wired device under test.

    Args:
        config: hardware/software configuration.
        chain_factory: builds the service chain to run.
        faults: fault clock driving injection in the NIC, mempool and
            chain (``None`` runs fault-free; the wiring below then adds
            no objects and the DuT behaves bit-identically to one built
            without this parameter).
    """

    def __init__(
        self,
        config: DutConfig,
        chain_factory: Callable[[], ServiceChain] = simple_forwarding_chain,
        faults: Optional[FaultClock] = None,
    ) -> None:
        self.config = config
        self.context = SliceAwareContext(config.spec, seed=config.seed)
        hierarchy = self.context.hierarchy
        self.hierarchy = hierarchy
        # Rebinds hierarchy.read/write when config.engine == "fast", so
        # the PMD, NFs and DDIO path all go through the fast engine
        # without knowing about it (also validates the engine name).
        hierarchy.set_engine(config.engine)
        self.ddio = DdioEngine(hierarchy, enabled=config.ddio_enabled)
        director: Optional[CacheDirector] = None
        data_room = config.data_room
        if config.cache_director:
            director = CacheDirector(
                slice_hash=hierarchy.llc.hash,
                core_to_slice=[
                    self.context.preferred_slice(c) for c in range(config.n_cores)
                ],
            )
            # Provision the data room for the worst-case dynamic
            # headroom so chaining never triggers on MTU frames (§4.2).
            data_room += director.max_headroom - DEFAULT_HEADROOM
        self.cache_director = director
        self.mempool = Mempool(
            name="pktmbuf",
            allocator=self.context.contiguous_allocator,
            n_mbufs=config.n_mbufs,
            data_room=data_room,
            watermarks=config.watermarks,
        )
        self.nic = Nic(
            n_queues=config.n_cores,
            mempool=self.mempool,
            ddio=self.ddio,
            allocator=self.context.contiguous_allocator,
            queue_to_core=list(range(config.n_cores)),
            cache_director=director,
            rx_ring_size=config.rx_ring_size,
        )
        self.pmd = PollModeDriver(self.nic, hierarchy)
        self.chain = chain_factory()
        self.chain.setup(self.context)
        self.faults = faults
        self.supervisor = None
        if faults is not None:
            # Imported here: supervisor.py needs ServiceChain from this
            # module, so a top-level import would be circular.
            from repro.net.supervisor import NfSupervisor

            self.mempool.faults = faults
            self.nic.faults = faults
            self.supervisor = NfSupervisor(self.chain, self.context, faults)

    def process_packet(self, packet: Packet, queue: int) -> Optional[int]:
        """Deliver, poll, process and transmit one packet.

        Returns the cycles the polling core spent, or ``None`` when the
        packet was dropped — at the NIC (injected wire loss, pool
        pressure or exhaustion, ring full), at the PMD's FCS check, or
        inside the chain (injected NF crash).
        """
        if self.nic.deliver(packet, packet.size, queue) is None:
            return None
        mbufs, cycles = self.pmd.rx_burst(queue, max_packets=1)
        if not mbufs:
            # The frame was discarded at the FCS check after delivery.
            return None
        core = self.nic.queue_to_core[queue]
        survivors = []
        # Intentional scalar reference path: one packet at a time end
        # to end is the latency-harness contract (per-packet cycles).
        for mbuf in mbufs:
            if self.supervisor is not None:
                nf_cycles = self.supervisor.process(core, mbuf)  # deepcheck: ignore[PERF001]
                if nf_cycles is None:
                    self.mempool.free(mbuf)  # deepcheck: ignore[PERF001]
                    continue
                cycles += nf_cycles
            else:
                cycles += self.chain.process(core, mbuf)  # deepcheck: ignore[PERF001]
            survivors.append(mbuf)  # deepcheck: ignore[PERF003]
        if not survivors:
            return None
        cycles += self.pmd.tx_burst(queue, survivors)
        return cycles

    def service_cycles(
        self, packets: Sequence[Packet], queues: Sequence[int]
    ) -> List[Optional[int]]:
        """Microsimulate many packets; returns per-packet cycles."""
        if len(packets) != len(queues):
            raise ValueError("packets and queues must have equal length")
        return [self.process_packet(p, q) for p, q in zip(packets, queues)]

    def __repr__(self) -> str:
        return (
            f"DutEnvironment(chain={self.chain.name!r}, "
            f"cache_director={self.config.cache_director})"
        )
