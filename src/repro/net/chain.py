"""Service chains and the Device-under-Test environment.

:class:`ServiceChain` strings network functions together;
:class:`DutEnvironment` assembles a complete device under test — the
simulated machine, hugepages, mempool, DDIO, NIC (optionally with
CacheDirector), poll-mode driver and chain — and processes packets
end to end, returning the cycles the polling core spent per packet.
This is the microsimulation that feeds the latency harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cachesim.ddio import DdioEngine
from repro.cachesim.engine import OP_DMA_READ, OP_DMA_WRITE, OP_READ, OP_WRITE
from repro.cachesim.machines import HASWELL_E5_2667V3, MachineSpec
from repro.core.cache_director import CacheDirector
from repro.core.slice_aware import SliceAwareContext
from repro.dpdk.mbuf import (
    DEFAULT_DATAROOM,
    DEFAULT_HEADROOM,
    MBUF_STRUCT_SIZE,
    Mbuf,
)
from repro.mem.address import CACHE_LINE
from repro.dpdk.mbuf_batch import MbufBatch
from repro.dpdk.mempool import Mempool
from repro.dpdk.nic import Nic
from repro.dpdk.pmd import PollModeDriver
from repro.faults.plan import FaultClock
from repro.net.nf import (
    LpmRouter,
    MacSwapForwarder,
    Napt,
    NetworkFunction,
    RoundRobinLoadBalancer,
)
from repro.net.packet import Packet
from repro.net.packet_batch import PacketBatch


class ServiceChain:
    """An ordered pipeline of network functions.

    Args:
        name: chain label.
        nfs: the pipeline stages, in order.
        framework_cycles: fixed per-packet cost of the surrounding
            framework (FastClick element traversal, batching, Metron
            runtime).  The cache simulator only accounts for the NFs'
            memory behaviour; this constant calibrates total
            per-packet cost to the per-core rates implied by the
            paper's Table 3 throughputs (~1 800 cycles/packet at
            3.2 GHz and ~76 Gbps over 8 cores).
    """

    def __init__(
        self,
        name: str,
        nfs: Sequence[NetworkFunction],
        framework_cycles: int = 0,
    ) -> None:
        if not nfs:
            raise ValueError("a chain needs at least one NF")
        if framework_cycles < 0:
            raise ValueError("framework_cycles must be non-negative")
        self.name = name
        self.nfs: List[NetworkFunction] = list(nfs)
        self.framework_cycles = framework_cycles
        self.packets_processed = 0

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate every NF's state."""
        for nf in self.nfs:
            nf.setup(context)

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Run one packet through every NF; returns total cycles."""
        cycles = self.framework_cycles
        # Intentional scalar reference path: NFs are a sequential
        # pipeline per packet by definition (FastClick semantics).
        for nf in self.nfs:
            cycles += nf.process(core, mbuf)  # deepcheck: ignore[PERF001,PERF005]
        self.packets_processed += 1
        return cycles

    def process_batch(self, core: int, mbuf_batch: MbufBatch) -> np.ndarray:
        """Run a burst through every NF; returns per-packet cycles.

        NF-major batched semantics: each NF charges the whole burst
        before the next NF runs.  For a single-NF chain this is
        access-for-access the scalar order; for longer chains the
        bit-identical interleaving lives in
        :meth:`DutEnvironment.service_cycles_batch`.
        """
        cycles = np.full(len(mbuf_batch), self.framework_cycles, dtype=np.int64)
        for nf in self.nfs:
            cycles += nf.process_batch(core, mbuf_batch)
        self.packets_processed += len(mbuf_batch)
        return cycles


def simple_forwarding_chain() -> ServiceChain:
    """The §5.1 application: MAC swap and bounce."""
    return ServiceChain(
        "simple-forwarding", [MacSwapForwarder()], framework_cycles=1600
    )


def router_napt_lb_chain(hw_offload: bool = True) -> ServiceChain:
    """The §5.2 stateful chain: Router → NAPT → LB.

    ``hw_offload`` mirrors Metron's FlowDirector offload of the routing
    table classification to the NIC.
    """
    return ServiceChain(
        "router-napt-lb",
        [
            LpmRouter(n_routes=3120, hw_offload=hw_offload),
            Napt(),
            RoundRobinLoadBalancer(),
        ],
        framework_cycles=1270,
    )


@dataclass
class DutConfig:
    """Configuration of a device under test."""

    spec: MachineSpec = HASWELL_E5_2667V3
    n_cores: int = 8
    cache_director: bool = False
    n_mbufs: int = 4096
    rx_ring_size: int = 1024
    data_room: int = DEFAULT_DATAROOM
    ddio_enabled: bool = True
    seed: int = 0
    #: Cache-access engine for the microsimulation: ``"reference"`` or
    #: ``"fast"`` (identical outcomes; see ``repro.cachesim.engine``).
    engine: str = "reference"
    #: Optional mempool ``(low, high)`` in-use watermarks; when set the
    #: NIC sheds load under pressure instead of exhausting the pool.
    watermarks: Optional[Tuple[int, int]] = None
    #: Dataplane flavour: ``"scalar"`` processes packets one at a time;
    #: ``"batched"`` records each burst's op stream and charges it in
    #: one flattened engine pass (bit-identical results — see
    #: ``repro.net.dataplane``).
    dataplane: str = "scalar"


class DutEnvironment:
    """A fully wired device under test.

    Args:
        config: hardware/software configuration.
        chain_factory: builds the service chain to run.
        faults: fault clock driving injection in the NIC, mempool and
            chain (``None`` runs fault-free; the wiring below then adds
            no objects and the DuT behaves bit-identically to one built
            without this parameter).
    """

    def __init__(
        self,
        config: DutConfig,
        chain_factory: Callable[[], ServiceChain] = simple_forwarding_chain,
        faults: Optional[FaultClock] = None,
    ) -> None:
        if config.dataplane not in ("scalar", "batched"):
            raise ValueError(
                f"dataplane must be 'scalar' or 'batched', got {config.dataplane!r}"
            )
        self.config = config
        self.context = SliceAwareContext(config.spec, seed=config.seed)
        hierarchy = self.context.hierarchy
        self.hierarchy = hierarchy
        # Rebinds hierarchy.read/write when config.engine == "fast", so
        # the PMD, NFs and DDIO path all go through the fast engine
        # without knowing about it (also validates the engine name).
        hierarchy.set_engine(config.engine)
        self.ddio = DdioEngine(hierarchy, enabled=config.ddio_enabled)
        director: Optional[CacheDirector] = None
        data_room = config.data_room
        if config.cache_director:
            director = CacheDirector(
                slice_hash=hierarchy.llc.hash,
                core_to_slice=[
                    self.context.preferred_slice(c) for c in range(config.n_cores)
                ],
            )
            # Provision the data room for the worst-case dynamic
            # headroom so chaining never triggers on MTU frames (§4.2).
            data_room += director.max_headroom - DEFAULT_HEADROOM
        self.cache_director = director
        self.mempool = Mempool(
            name="pktmbuf",
            allocator=self.context.contiguous_allocator,
            n_mbufs=config.n_mbufs,
            data_room=data_room,
            watermarks=config.watermarks,
        )
        self.nic = Nic(
            n_queues=config.n_cores,
            mempool=self.mempool,
            ddio=self.ddio,
            allocator=self.context.contiguous_allocator,
            queue_to_core=list(range(config.n_cores)),
            cache_director=director,
            rx_ring_size=config.rx_ring_size,
        )
        self.pmd = PollModeDriver(self.nic, hierarchy)
        self.chain = chain_factory()
        self.chain.setup(self.context)
        self.faults = faults
        self.supervisor = None
        if faults is not None:
            # Imported here: supervisor.py needs ServiceChain from this
            # module, so a top-level import would be circular.
            from repro.net.supervisor import NfSupervisor

            self.mempool.faults = faults
            self.nic.faults = faults
            self.supervisor = NfSupervisor(self.chain, self.context, faults)

    def process_packet(self, packet: Packet, queue: int) -> Optional[int]:
        """Deliver, poll, process and transmit one packet.

        Returns the cycles the polling core spent, or ``None`` when the
        packet was dropped — at the NIC (injected wire loss, pool
        pressure or exhaustion, ring full), at the PMD's FCS check, or
        inside the chain (injected NF crash).
        """
        if self.nic.deliver(packet, packet.size, queue) is None:
            return None
        mbufs, cycles = self.pmd.rx_burst(queue, max_packets=1)
        if not mbufs:
            # The frame was discarded at the FCS check after delivery.
            return None
        core = self.nic.queue_to_core[queue]
        survivors = []
        # Intentional scalar reference path: one packet at a time end
        # to end is the latency-harness contract (per-packet cycles).
        for mbuf in mbufs:
            if self.supervisor is not None:
                nf_cycles = self.supervisor.process(core, mbuf)  # deepcheck: ignore[PERF001]
                if nf_cycles is None:
                    self.mempool.free(mbuf)  # deepcheck: ignore[PERF001]
                    continue
                cycles += nf_cycles
            else:
                cycles += self.chain.process(core, mbuf)  # deepcheck: ignore[PERF001,PERF005]
            survivors.append(mbuf)  # deepcheck: ignore[PERF003]
        if not survivors:
            return None
        cycles += self.pmd.tx_burst(queue, survivors)
        return cycles

    def service_cycles(
        self, packets: Sequence[Packet], queues: Sequence[int]
    ) -> List[Optional[int]]:
        """Microsimulate many packets; returns per-packet cycles.

        Dispatches to :meth:`service_cycles_batch` when the config
        selects the batched dataplane; results are bit-identical either
        way.
        """
        if len(packets) != len(queues):
            raise ValueError("packets and queues must have equal length")
        if self.config.dataplane == "batched":
            return self.service_cycles_batch(packets, queues)
        return [self.process_packet(p, q) for p, q in zip(packets, queues)]

    def service_cycles_batch(
        self,
        packets: Union[Sequence[Packet], PacketBatch],
        queues: Sequence[int],
    ) -> List[Optional[int]]:
        """Batched microsimulation: record per packet, charge per trace.

        Runs the real control path (:meth:`process_packet`) for every
        packet with the cache model swapped for an
        :class:`~repro.net.dataplane.OpRecorder`, then replays the
        whole interleaved op stream through one flattened engine pass.
        Drops, fault draws, allocations and all stats are decided by
        the scalar code itself; per-packet cycles come out bit-identical
        (proven by ``repro.cachesim.diff.run_dataplane_differential``).

        With a :class:`CacheSanitizer` installed this falls back to the
        scalar loop (deferred charging would break its interleaved
        checks); results are unchanged, only the speedup is lost.
        """
        if isinstance(packets, PacketBatch):
            packets = packets.to_packets()
        if len(packets) != len(queues):
            raise ValueError("packets and queues must have equal length")
        if self.hierarchy.sanitizer is not None:
            return [self.process_packet(p, q) for p, q in zip(packets, queues)]
        from repro.net.dataplane import OpRecorder, segment_sums

        recorder = OpRecorder()
        n = len(packets)
        bounds = np.empty(n + 1, dtype=np.int64)
        sizes = [p.size for p in packets]
        if self._template_ok(sizes, queues):
            fixed = self._record_template(recorder, packets, queues, sizes, bounds)
        else:
            fixed = []
            with recorder.capture(self.hierarchy, [self.nic]):
                for i, (packet, queue) in enumerate(zip(packets, queues)):
                    bounds[i] = recorder.n_ops
                    fixed.append(self.process_packet(packet, queue))
            bounds[n] = recorder.n_ops
        per_op = recorder.replay(self.hierarchy, [self.ddio])
        memory = segment_sums(per_op, bounds)
        return [
            None if f is None else int(f + memory[i])
            for i, f in enumerate(fixed)
        ]

    def _template_ok(self, sizes: Sequence[int], queues: Sequence[int]) -> bool:
        """Whether the constant-shape recording route applies.

        The template in :meth:`_record_template` is valid only when no
        control-flow branch of :meth:`process_packet` can deviate from
        the straight-line path: no fault injection or supervisor, no
        CacheDirector headrooms, no watermark backpressure, no mempool
        sanitizer hooks, rings empty (each packet drains its own), the
        pool non-empty, and every frame fitting one mbuf segment.
        Anything else falls back to the generic recording loop, which
        handles every configuration.
        """
        mempool = self.mempool
        if (
            self.faults is not None
            or self.supervisor is not None
            or self.cache_director is not None
            or mempool.watermarks is not None
            or mempool.sanitizer is not None
            or not mempool.available
            or not sizes
        ):
            return False
        if any(not ring.empty for ring in self.nic.rx_rings):
            return False
        head = mempool.peek()
        if min(sizes) <= 0:
            return False
        if max(sizes) > head.buf_len - head.default_headroom:
            return False
        return 0 <= min(queues) and max(queues) < self.nic.n_queues

    def _record_template(
        self,
        recorder: "OpRecorder",
        packets: Sequence[Packet],
        queues: Sequence[int],
        sizes: Sequence[int],
        bounds: np.ndarray,
    ) -> List[Optional[int]]:
        """Record the burst without the generic control plumbing.

        Under :meth:`_template_ok` every packet's control flow is fully
        determined: the LIFO mempool hands out the same mbuf each
        packet (the alloc/free pair cancels), no drop branch can fire,
        and the NIC/PMD access pattern is a fixed template over that
        mbuf's constant addresses — only the payload span's last line
        and the rotating completion-descriptor slot vary.  The loop
        emits exactly the op stream, mbuf field updates, descriptor
        rotation and NIC counters that per-packet ``deliver`` →
        ``rx_burst`` → chain → ``tx_burst`` would, and still runs the
        real ``chain.process`` per packet (NF state must evolve
        normally).  The differential harness compares this route
        against the scalar path configuration by configuration.
        """
        nic = self.nic
        costs = self.pmd.costs
        mbuf = self.mempool.peek()
        base = mbuf.base_phys
        headroom = mbuf.default_headroom
        data_phys = base + MBUF_STRUCT_SIZE + headroom
        data_first = data_phys & ~(CACHE_LINE - 1)
        line_mask = ~(CACHE_LINE - 1)
        chain_process = self.chain.process
        q2c = nic.queue_to_core
        desc_base = nic._descriptor_base
        slots = nic._descriptor_slot
        ring_size = nic.rx_ring_size
        pmd_fixed = (
            costs.rx_per_burst
            + costs.rx_per_packet
            + costs.tx_per_burst
            + costs.tx_per_packet
        )
        n_queues = nic.n_queues
        # Per-queue constant ops: the poll's head-of-ring descriptor
        # read, the struct-line reads, and the TX struct write.  The
        # two struct lines are contiguous and consumed only through
        # per-packet sums, so they collapse into one two-line span op
        # (same lines, same order, same per-line outcomes).
        desc_read = [
            (OP_READ, desc_base[q], desc_base[q], q2c[q]) for q in range(n_queues)
        ]
        line2 = base + CACHE_LINE
        struct_read = [(OP_READ, base, line2, q2c[q]) for q in range(n_queues)]
        tx_write = [(OP_WRITE, base, base, q2c[q]) for q in range(n_queues)]
        ops = recorder.ops
        append = ops.append
        extend = ops.extend
        fixed: List[Optional[int]] = []
        fixed_append = fixed.append
        # When every NF declares itself template-stable, the chain's
        # recorded op subsequence and cycle count are constant per
        # (queue -> core) over this one mbuf, so probe each queue once
        # with a real ``chain.process`` call and replay the captured
        # ops for the rest of that queue's packets.  The per-call
        # ``packets_processed`` increments skipped by the replays are
        # restored in bulk below.
        stable = all(nf.template_stable for nf in self.chain.nfs)
        chain_cache: List[Optional[Tuple[int, List[tuple]]]] = [None] * n_queues
        i = 0
        with recorder.capture(self.hierarchy, []):
            for packet, queue, size in zip(packets, queues, sizes):
                bounds[i] = len(ops)
                i += 1
                # deliver(): payload DMA, then the completion
                # descriptor at the rotating slot.
                slot = slots[queue]
                slots[queue] = (slot + 1) % ring_size
                last = (data_phys + size - 1) & line_mask
                append((OP_DMA_WRITE, data_first, last, 0))
                desc = desc_base[queue] + slot * CACHE_LINE
                append((OP_DMA_WRITE, desc, desc, 0))
                # Exactly the state alloc() + reset() + deliver's fill
                # leave behind before the PMD sees the mbuf.
                mbuf.headroom = headroom
                mbuf.pkt_len = size
                mbuf.data_len = size
                mbuf.next = None
                mbuf.payload = packet
                mbuf.port = 0
                mbuf.queue = queue
                mbuf.rss_hash = 0
                mbuf.fcs_ok = True
                # rx_burst(queue, 1): head-of-ring descriptor poll,
                # then the mbuf struct lines.
                append(desc_read[queue])
                append(struct_read[queue])
                cached = chain_cache[queue]
                if cached is None:
                    mark = len(ops)
                    c = chain_process(q2c[queue], mbuf)
                    if stable:
                        chain_cache[queue] = (c, ops[mark:])
                else:
                    c, sub = cached
                    extend(sub)
                # tx_burst(): TX descriptor fill, then the NIC's
                # DMA-read of the payload (free cancels the alloc).
                append(tx_write[queue])
                append((OP_DMA_READ, data_first, last, 0))
                fixed_append(pmd_fixed + c)
        bounds[i] = len(ops)
        n = len(fixed)
        if stable:
            probes = sum(1 for cached in chain_cache if cached is not None)
            self.chain.packets_processed += n - probes
        total_bytes = sum(sizes)
        stats = nic.stats
        stats.rx_packets += n
        stats.rx_bytes += total_bytes
        stats.tx_packets += n
        stats.tx_bytes += total_bytes
        return fixed

    def __repr__(self) -> str:
        return (
            f"DutEnvironment(chain={self.chain.name!r}, "
            f"cache_director={self.config.cache_director})"
        )
