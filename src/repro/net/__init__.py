"""Packets, traffic generation and network functions (the NFV layer).

* :mod:`repro.net.packet` — Ethernet/IPv4/TCP-UDP header codec and the
  lightweight :class:`Packet` record used in bulk simulation.
* :mod:`repro.net.trace` — synthetic workload generators: the campus
  trace's size mix (§5, Table 2) and fixed-size streams.
* :mod:`repro.net.nf` — network functions: MAC-swap forwarding, LPM
  router, NAPT, round-robin load balancer.
* :mod:`repro.net.chain` — service chains executing NFs' memory
  accesses against the cache simulator.
* :mod:`repro.net.harness` — the LoadGen/DuT measurement harness:
  service-time microsimulation plus vectorised queueing, yielding the
  end-to-end latency distributions of §5.
"""

from repro.net.packet import (
    EthernetHeader,
    FiveTuple,
    Ipv4Header,
    Packet,
    TransportHeader,
)
from repro.net.trace import (
    CAMPUS_MIX,
    CampusTraceGenerator,
    FixedSizeTraffic,
    TrafficClass,
)

__all__ = [
    "CAMPUS_MIX",
    "CampusTraceGenerator",
    "EthernetHeader",
    "FiveTuple",
    "FixedSizeTraffic",
    "Ipv4Header",
    "Packet",
    "TrafficClass",
    "TransportHeader",
]
