"""Network functions.

Each NF performs its real control logic (so behaviour is testable) and
issues the memory accesses that logic implies against the cache
hierarchy, charged to the processing core.  The state tables are
allocated with *normal* (contiguous) placement — CacheDirector only
steers packet headers; state placement is the paper's future work.

Implemented NFs, matching §5's applications:

* :class:`MacSwapForwarder` — the simple forwarding application.
* :class:`LpmRouter` — DIR-24-8 longest-prefix-match router with 3120
  routes; with ``hw_offload=True`` the classification runs on the NIC
  (Metron's FlowDirector offload) and only TTL work remains in
  software.
* :class:`Napt` — network address & port translation with a real
  translation table.
* :class:`RoundRobinLoadBalancer` — flow-sticky round-robin backend
  selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cachesim.hierarchy import CacheHierarchy
from repro.core.slice_aware import LinearBuffer, SliceAwareContext
from repro.dpdk.mbuf import Mbuf
from repro.dpdk.steering import rss_hash
from repro.mem.address import CACHE_LINE
from repro.net.packet import FiveTuple


class NetworkFunction:
    """Base class: one stage of a service chain."""

    #: Fixed instruction cost per packet (cycles), excluding memory.
    base_cost: int = 40
    name: str = "nf"

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate state; called once before processing."""
        self.hierarchy: CacheHierarchy = context.hierarchy

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Process one packet; returns cycles spent by *core*."""
        raise NotImplementedError

    def _touch_header(self, core: int, mbuf: Mbuf, write: bool = False) -> int:
        """Access the packet's first (header) line."""
        if write:
            return self.hierarchy.write(core, mbuf.data_phys, 1)
        return self.hierarchy.read(core, mbuf.data_phys, 1)


class MacSwapForwarder(NetworkFunction):
    """Swap source/destination MACs and bounce the frame back (§5.1)."""

    name = "mac-swap"
    base_cost = 30

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Read the Ethernet header, swap MACs in place."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)          # parse
        cycles += self._touch_header(core, mbuf, True)    # swapped MACs
        return cycles


@dataclass(frozen=True)
class Route:
    """One LPM route."""

    prefix: int
    prefix_len: int
    next_hop: int


class LpmRouter(NetworkFunction):
    """DIR-24-8 router with the paper's 3120-entry table (§5.2).

    The first 24 address bits index ``tbl24``; routes longer than /24
    chain into per-prefix ``tbl8`` blocks.  ``tbl24`` is a 32 MiB
    region (2 B per entry over 2^24 indices); each lookup touches the
    entry's cache line, and long-prefix hits touch one tbl8 line more.
    """

    name = "router"
    base_cost = 50

    def __init__(self, n_routes: int = 3120, hw_offload: bool = False, seed: int = 7) -> None:
        self.n_routes = n_routes
        self.hw_offload = hw_offload
        self.seed = seed
        self.routes: List[Route] = []
        # tbl24: idx24 -> (is_tbl8, value); value is a next hop or a
        # tbl8 block index.  tbl24_len remembers the prefix length that
        # wrote each short entry so longest-prefix wins on overlap.
        self._tbl24: Dict[int, Tuple[bool, int]] = {}
        self._tbl24_len: Dict[int, int] = {}
        # tbl8 blocks hold (next_hop, prefix_len) per /32 slot.
        self._tbl8: List[List[Tuple[int, int]]] = []
        self.lookups = 0
        self.misses = 0

    def setup(self, context: SliceAwareContext) -> None:
        """Install *n_routes* synthetic routes and allocate the tables.

        Re-entrant: a supervisor restart calls this again and gets a
        freshly-built table in newly-allocated (cache-cold) memory —
        the crashed instance's warmed state is gone.
        """
        super().setup(context)
        self.routes = []
        self._tbl24 = {}
        self._tbl24_len = {}
        self._tbl8 = []
        self.lookups = 0
        self.misses = 0
        self._tbl24_mem: LinearBuffer = context.allocate_normal(2 * (1 << 24))
        self._tbl8_mem: LinearBuffer = context.allocate_normal(1 << 20)
        rng = np.random.default_rng(self.seed)
        lens = rng.choice([16, 20, 24, 32], size=self.n_routes, p=[0.05, 0.15, 0.75, 0.05])
        for i in range(self.n_routes):
            plen = int(lens[i])
            prefix = int(rng.integers(0, 1 << 32)) & ((~0 << (32 - plen)) & 0xFFFFFFFF)
            self.add_route(Route(prefix=prefix, prefix_len=plen, next_hop=i % 256))

    def add_route(self, route: Route) -> None:
        """Install one route into the DIR-24-8 structures."""
        if not 0 < route.prefix_len <= 32:
            raise ValueError(f"prefix length must be 1..32, got {route.prefix_len}")
        if route.prefix & ~((~0 << (32 - route.prefix_len)) & 0xFFFFFFFF):
            raise ValueError(
                f"prefix {route.prefix:#x} has bits beyond /{route.prefix_len}"
            )
        self.routes.append(route)
        if route.prefix_len <= 24:
            first = route.prefix >> 8
            for idx in range(first, first + (1 << (24 - route.prefix_len))):
                entry = self._tbl24.get(idx)
                if entry is not None and entry[0]:
                    # A tbl8 block covers this /24: update the slots
                    # whose current route is shorter.
                    block = self._tbl8[entry[1]]
                    for off in range(256):
                        if block[off][1] <= route.prefix_len:
                            block[off] = (route.next_hop, route.prefix_len)
                elif self._tbl24_len.get(idx, 0) <= route.prefix_len:
                    self._tbl24[idx] = (False, route.next_hop)
                    self._tbl24_len[idx] = route.prefix_len
        else:
            idx24 = route.prefix >> 8
            entry = self._tbl24.get(idx24)
            if entry is None or not entry[0]:
                default = (
                    (entry[1], self._tbl24_len.get(idx24, 0))
                    if entry is not None
                    else (-1, 0)
                )
                self._tbl8.append([default] * 256)
                entry = (True, len(self._tbl8) - 1)
                self._tbl24[idx24] = entry
            block = self._tbl8[entry[1]]
            low = route.prefix & 0xFF
            for off in range(low, low + (1 << (32 - route.prefix_len))):
                if block[off][1] <= route.prefix_len:
                    block[off] = (route.next_hop, route.prefix_len)

    def lookup(self, dst_ip: int) -> Optional[int]:
        """Pure control-plane LPM lookup (no cache accounting)."""
        entry = self._tbl24.get(dst_ip >> 8)
        if entry is None:
            return None
        is_tbl8, value = entry
        if not is_tbl8:
            return value
        hop, _plen = self._tbl8[value][dst_ip & 0xFF]
        return hop if hop >= 0 else None

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Route one packet: header parse, table walk, TTL rewrite."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)
        flow: FiveTuple = mbuf.payload.flow  # type: ignore[union-attr]
        self.lookups += 1
        if not self.hw_offload:
            idx24 = flow.dst_ip >> 8
            cycles += self.hierarchy.read(
                core, self._tbl24_mem.address_of((2 * idx24) & ~(CACHE_LINE - 1)), 1
            )
            entry = self._tbl24.get(idx24)
            if entry is None:
                self.misses += 1
            elif entry[0]:
                tbl8_offset = (entry[1] * 256 + (flow.dst_ip & 0xFF)) % self._tbl8_mem.size
                cycles += self.hierarchy.read(
                    core, self._tbl8_mem.address_of(tbl8_offset & ~(CACHE_LINE - 1)), 1
                )
        # Decrement TTL, refresh checksum: header write.
        cycles += self._touch_header(core, mbuf, write=True)
        return cycles


class Napt(NetworkFunction):
    """Network address & port translation (§5.2).

    Keeps a real flow→(external port) table; each packet hashes its
    flow into a bucket line of a 4 MiB table region and rewrites the
    header.  New flows allocate an external port and write the bucket.
    """

    name = "napt"
    base_cost = 60

    def __init__(self, external_ip: int = 0xC612_0001, table_bits: int = 16) -> None:
        self.external_ip = external_ip
        self.table_bits = table_bits
        self.translations: Dict[FiveTuple, int] = {}
        self._next_port = 1024
        self.reverse: Dict[int, FiveTuple] = {}

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate the bucket array (64 B per bucket).

        Re-entrant: a supervisor restart loses every translation (the
        paper's NFs keep state in process memory) and starts over in
        cold memory.
        """
        super().setup(context)
        self.translations = {}
        self.reverse = {}
        self._next_port = 1024
        self._table_mem: LinearBuffer = context.allocate_normal(
            CACHE_LINE << self.table_bits
        )

    def _bucket_address(self, flow: FiveTuple) -> int:
        bucket = rss_hash(*flow) & ((1 << self.table_bits) - 1)
        return self._table_mem.address_of(bucket * CACHE_LINE)

    def translate(self, flow: FiveTuple) -> Tuple[int, int]:
        """Control plane: external (ip, port) for a flow, allocating
        a port on first sight."""
        port = self.translations.get(flow)
        if port is None:
            if self._next_port > 65535:
                raise RuntimeError("NAPT port pool exhausted")
            port = self._next_port
            self._next_port += 1
            self.translations[flow] = port
            self.reverse[port] = flow
        return self.external_ip, port

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Translate one packet: bucket probe, install on miss, rewrite."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)
        flow: FiveTuple = mbuf.payload.flow  # type: ignore[union-attr]
        new_flow = flow not in self.translations
        cycles += self.hierarchy.read(core, self._bucket_address(flow), 1)
        self.translate(flow)
        if new_flow:
            cycles += self.hierarchy.write(core, self._bucket_address(flow), 1)
        cycles += self._touch_header(core, mbuf, write=True)
        return cycles


class RoundRobinLoadBalancer(NetworkFunction):
    """Flow-sticky round-robin load balancer (§5.2)."""

    name = "lb"
    base_cost = 50

    def __init__(self, n_backends: int = 8, table_bits: int = 16) -> None:
        if n_backends <= 0:
            raise ValueError(f"n_backends must be positive, got {n_backends}")
        self.n_backends = n_backends
        self.table_bits = table_bits
        self.assignments: Dict[FiveTuple, int] = {}
        self._next_backend = 0

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate the flow-table bucket array.

        Re-entrant: restarts drop flow stickiness and re-assign from
        backend 0 over a cold table.
        """
        super().setup(context)
        self.assignments = {}
        self._next_backend = 0
        self._table_mem: LinearBuffer = context.allocate_normal(
            CACHE_LINE << self.table_bits
        )

    def _bucket_address(self, flow: FiveTuple) -> int:
        bucket = rss_hash(*flow) & ((1 << self.table_bits) - 1)
        return self._table_mem.address_of(bucket * CACHE_LINE)

    def backend_for(self, flow: FiveTuple) -> int:
        """Control plane: sticky round-robin backend choice."""
        backend = self.assignments.get(flow)
        if backend is None:
            backend = self._next_backend
            self._next_backend = (self._next_backend + 1) % self.n_backends
            self.assignments[flow] = backend
        return backend

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Pick a backend, rewrite the destination."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)
        flow: FiveTuple = mbuf.payload.flow  # type: ignore[union-attr]
        new_flow = flow not in self.assignments
        cycles += self.hierarchy.read(core, self._bucket_address(flow), 1)
        self.backend_for(flow)
        if new_flow:
            cycles += self.hierarchy.write(core, self._bucket_address(flow), 1)
        cycles += self._touch_header(core, mbuf, write=True)
        return cycles
