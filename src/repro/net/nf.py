"""Network functions.

Each NF performs its real control logic (so behaviour is testable) and
issues the memory accesses that logic implies against the cache
hierarchy, charged to the processing core.  The state tables are
allocated with *normal* (contiguous) placement — CacheDirector only
steers packet headers; state placement is the paper's future work.

Implemented NFs, matching §5's applications:

* :class:`MacSwapForwarder` — the simple forwarding application.
* :class:`LpmRouter` — DIR-24-8 longest-prefix-match router with 3120
  routes; with ``hw_offload=True`` the classification runs on the NIC
  (Metron's FlowDirector offload) and only TTL work remains in
  software.
* :class:`Napt` — network address & port translation with a real
  translation table.
* :class:`RoundRobinLoadBalancer` — flow-sticky round-robin backend
  selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cachesim.hierarchy import CacheHierarchy
from repro.core.slice_aware import LinearBuffer, SliceAwareContext
from repro.dpdk.mbuf import Mbuf
from repro.dpdk.mbuf_batch import MbufBatch
from repro.dpdk.steering import rss_hash, rss_hash_array
from repro.mem.address import CACHE_LINE
from repro.net.packet import FiveTuple


def _batch_flows(mbuf_batch: MbufBatch) -> List[FiveTuple]:
    """Per-packet flow tuples of a burst (from the mbuf payloads)."""
    return [mbuf.payload.flow for mbuf in mbuf_batch.mbufs]  # type: ignore[union-attr]


def _flow_field_arrays(
    flows: List[FiveTuple],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Column-ise flow tuples for vectorised hashing."""
    arr = np.array(flows, dtype=np.uint64).reshape(len(flows), 5)
    return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3], arr[:, 4]


class NetworkFunction:
    """Base class: one stage of a service chain."""

    #: Fixed instruction cost per packet (cycles), excluding memory.
    base_cost: int = 40
    name: str = "nf"
    #: Opt-in contract for the batched template route: ``True`` means
    #: :meth:`process` issues the same hierarchy accesses and returns
    #: the same cycle count for every packet carried by the same
    #: (core, mbuf) pair — no dependence on payload bytes, flow
    #: identity, ``pkt_len``/``data_len``, or per-packet NF state —
    #: so the recorder may capture one packet per queue and replay the
    #: captured ops for the rest of the burst.  Flow- or size-dependent
    #: NFs (e.g. :class:`LpmRouter`) must leave this ``False``.
    template_stable: bool = False

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate state; called once before processing."""
        self.hierarchy: CacheHierarchy = context.hierarchy

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Process one packet; returns cycles spent by *core*."""
        raise NotImplementedError

    def process_batch(self, core: int, mbuf_batch: MbufBatch) -> np.ndarray:
        """Process a burst; returns per-packet cycles.

        Concrete NFs override this with a vectorised plan that issues
        the burst's accesses through one ``access_batch`` call in the
        scalar loop's packet-major order, so cache outcomes match
        per-packet :meth:`process` calls over the same burst.  This
        base implementation is the compatibility fallback for custom
        NFs that only define :meth:`process`.
        """
        return np.array(
            [self.process(core, mbuf) for mbuf in mbuf_batch.mbufs],
            dtype=np.int64,
        )

    def _touch_header(self, core: int, mbuf: Mbuf, write: bool = False) -> int:
        """Access the packet's first (header) line."""
        if write:
            return self.hierarchy.write(core, mbuf.data_phys, 1)
        return self.hierarchy.read(core, mbuf.data_phys, 1)


class MacSwapForwarder(NetworkFunction):
    """Swap source/destination MACs and bounce the frame back (§5.1)."""

    name = "mac-swap"
    base_cost = 30
    # Touches only the header line at a fixed offset; payload-, size-
    # and flow-independent, keeps no per-packet state.
    template_stable = True

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Read the Ethernet header, swap MACs in place."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)          # parse
        cycles += self._touch_header(core, mbuf, True)    # swapped MACs
        return cycles

    def process_batch(self, core: int, mbuf_batch: MbufBatch) -> np.ndarray:
        """Vectorised MAC swap: header read+write pairs, one batch."""
        n = len(mbuf_batch)
        headers = mbuf_batch.header_addresses()
        addresses = np.empty(2 * n, dtype=np.uint64)
        addresses[0::2] = headers
        addresses[1::2] = headers
        kinds = np.zeros(2 * n, dtype=bool)
        kinds[1::2] = True
        result = self.hierarchy.access_batch(addresses, kinds, core)
        return self.base_cost + result.cycles.reshape(n, 2).sum(axis=1)


@dataclass(frozen=True)
class Route:
    """One LPM route."""

    prefix: int
    prefix_len: int
    next_hop: int


class LpmRouter(NetworkFunction):
    """DIR-24-8 router with the paper's 3120-entry table (§5.2).

    The first 24 address bits index ``tbl24``; routes longer than /24
    chain into per-prefix ``tbl8`` blocks.  ``tbl24`` is a 32 MiB
    region (2 B per entry over 2^24 indices); each lookup touches the
    entry's cache line, and long-prefix hits touch one tbl8 line more.
    """

    name = "router"
    base_cost = 50

    def __init__(self, n_routes: int = 3120, hw_offload: bool = False, seed: int = 7) -> None:
        self.n_routes = n_routes
        self.hw_offload = hw_offload
        self.seed = seed
        self.routes: List[Route] = []
        # tbl24: idx24 -> (is_tbl8, value); value is a next hop or a
        # tbl8 block index.  tbl24_len remembers the prefix length that
        # wrote each short entry so longest-prefix wins on overlap.
        self._tbl24: Dict[int, Tuple[bool, int]] = {}
        self._tbl24_len: Dict[int, int] = {}
        # tbl8 blocks hold (next_hop, prefix_len) per /32 slot.
        self._tbl8: List[List[Tuple[int, int]]] = []
        self.lookups = 0
        self.misses = 0

    def setup(self, context: SliceAwareContext) -> None:
        """Install *n_routes* synthetic routes and allocate the tables.

        Re-entrant: a supervisor restart calls this again and gets a
        freshly-built table in newly-allocated (cache-cold) memory —
        the crashed instance's warmed state is gone.
        """
        super().setup(context)
        self.routes = []
        self._tbl24 = {}
        self._tbl24_len = {}
        self._tbl8 = []
        self.lookups = 0
        self.misses = 0
        self._tbl24_mem: LinearBuffer = context.allocate_normal(2 * (1 << 24))
        self._tbl8_mem: LinearBuffer = context.allocate_normal(1 << 20)
        rng = np.random.default_rng(self.seed)
        lens = rng.choice([16, 20, 24, 32], size=self.n_routes, p=[0.05, 0.15, 0.75, 0.05])
        for i in range(self.n_routes):
            plen = int(lens[i])
            prefix = int(rng.integers(0, 1 << 32)) & ((~0 << (32 - plen)) & 0xFFFFFFFF)
            self.add_route(Route(prefix=prefix, prefix_len=plen, next_hop=i % 256))

    def add_route(self, route: Route) -> None:
        """Install one route into the DIR-24-8 structures."""
        if not 0 < route.prefix_len <= 32:
            raise ValueError(f"prefix length must be 1..32, got {route.prefix_len}")
        if route.prefix & ~((~0 << (32 - route.prefix_len)) & 0xFFFFFFFF):
            raise ValueError(
                f"prefix {route.prefix:#x} has bits beyond /{route.prefix_len}"
            )
        self.routes.append(route)
        if route.prefix_len <= 24:
            first = route.prefix >> 8
            for idx in range(first, first + (1 << (24 - route.prefix_len))):
                entry = self._tbl24.get(idx)
                if entry is not None and entry[0]:
                    # A tbl8 block covers this /24: update the slots
                    # whose current route is shorter.
                    block = self._tbl8[entry[1]]
                    for off in range(256):
                        if block[off][1] <= route.prefix_len:
                            block[off] = (route.next_hop, route.prefix_len)
                elif self._tbl24_len.get(idx, 0) <= route.prefix_len:
                    self._tbl24[idx] = (False, route.next_hop)
                    self._tbl24_len[idx] = route.prefix_len
        else:
            idx24 = route.prefix >> 8
            entry = self._tbl24.get(idx24)
            if entry is None or not entry[0]:
                default = (
                    (entry[1], self._tbl24_len.get(idx24, 0))
                    if entry is not None
                    else (-1, 0)
                )
                self._tbl8.append([default] * 256)
                entry = (True, len(self._tbl8) - 1)
                self._tbl24[idx24] = entry
            block = self._tbl8[entry[1]]
            low = route.prefix & 0xFF
            for off in range(low, low + (1 << (32 - route.prefix_len))):
                if block[off][1] <= route.prefix_len:
                    block[off] = (route.next_hop, route.prefix_len)

    def lookup(self, dst_ip: int) -> Optional[int]:
        """Pure control-plane LPM lookup (no cache accounting)."""
        entry = self._tbl24.get(dst_ip >> 8)
        if entry is None:
            return None
        is_tbl8, value = entry
        if not is_tbl8:
            return value
        hop, _plen = self._tbl8[value][dst_ip & 0xFF]
        return hop if hop >= 0 else None

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Route one packet: header parse, table walk, TTL rewrite."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)
        flow: FiveTuple = mbuf.payload.flow  # type: ignore[union-attr]
        self.lookups += 1
        if not self.hw_offload:
            idx24 = flow.dst_ip >> 8
            cycles += self.hierarchy.read(
                core, self._tbl24_mem.address_of((2 * idx24) & ~(CACHE_LINE - 1)), 1
            )
            entry = self._tbl24.get(idx24)
            if entry is None:
                self.misses += 1
            elif entry[0]:
                tbl8_offset = (entry[1] * 256 + (flow.dst_ip & 0xFF)) % self._tbl8_mem.size
                cycles += self.hierarchy.read(
                    core, self._tbl8_mem.address_of(tbl8_offset & ~(CACHE_LINE - 1)), 1
                )
        # Decrement TTL, refresh checksum: header write.
        cycles += self._touch_header(core, mbuf, write=True)
        return cycles

    def _compiled_tbl24(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sorted-array view of ``tbl24`` for vectorised lookups.

        Rebuilt whenever the route set or the table memory changes (a
        supervisor restart reallocates both), so batched lookups always
        see the live table.
        """
        key = (len(self.routes), id(self._tbl24_mem))
        if getattr(self, "_batch_tbl24_key", None) != key:
            n = len(self._tbl24)
            keys = np.fromiter(self._tbl24.keys(), dtype=np.int64, count=n)
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            is_tbl8 = np.empty(n, dtype=bool)
            values = np.empty(n, dtype=np.int64)
            entries = list(self._tbl24.values())
            for j, src in enumerate(order.tolist()):
                entry = entries[src]
                is_tbl8[j] = entry[0]
                values[j] = entry[1]
            self._batch_tbl24_key = key
            self._batch_tbl24 = (keys, is_tbl8, values)
        return self._batch_tbl24

    def process_batch(self, core: int, mbuf_batch: MbufBatch) -> np.ndarray:
        """Vectorised DIR-24-8 walk: ``searchsorted`` over tbl24 keys."""
        n = len(mbuf_batch)
        headers = mbuf_batch.header_addresses()
        self.lookups += n
        if self.hw_offload:
            # Classification ran on the NIC: header read + TTL write.
            addresses = np.empty(2 * n, dtype=np.uint64)
            addresses[0::2] = headers
            addresses[1::2] = headers
            kinds = np.zeros(2 * n, dtype=bool)
            kinds[1::2] = True
            result = self.hierarchy.access_batch(addresses, kinds, core)
            return self.base_cost + result.cycles.reshape(n, 2).sum(axis=1)
        flows = _batch_flows(mbuf_batch)
        dst_ip = np.array([flow.dst_ip for flow in flows], dtype=np.int64)
        idx24 = dst_ip >> 8
        keys, is_tbl8, values = self._compiled_tbl24()
        if len(keys):
            pos = np.minimum(np.searchsorted(keys, idx24), len(keys) - 1)
            found = keys[pos] == idx24
            tbl8_hit = found & is_tbl8[pos]
            vals = values[pos]
        else:
            found = np.zeros(n, dtype=bool)
            tbl8_hit = found
            vals = np.zeros(n, dtype=np.int64)
        self.misses += int((~found).sum())
        tbl24_base = self._tbl24_mem.address_of(0)
        tbl24_addr = tbl24_base + ((2 * idx24) & ~(CACHE_LINE - 1))
        tbl8_base = self._tbl8_mem.address_of(0)
        tbl8_offset = (vals * 256 + (dst_ip & 0xFF)) % self._tbl8_mem.size
        tbl8_addr = tbl8_base + (tbl8_offset & ~(CACHE_LINE - 1))
        # Assemble packet-major ops: hdr R, tbl24 R, [tbl8 R], hdr W.
        counts = 3 + tbl8_hit.astype(np.int64)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        starts = bounds[:-1]
        total = int(bounds[-1])
        addresses = np.empty(total, dtype=np.uint64)
        kinds_arr = np.zeros(total, dtype=bool)
        addresses[starts] = headers
        addresses[starts + 1] = tbl24_addr.astype(np.uint64)
        sel = np.nonzero(tbl8_hit)[0]
        addresses[starts[sel] + 2] = tbl8_addr[sel].astype(np.uint64)
        ends = starts + counts - 1
        addresses[ends] = headers
        kinds_arr[ends] = True
        result = self.hierarchy.access_batch(addresses, kinds_arr, core)
        from repro.net.dataplane import segment_sums

        return self.base_cost + segment_sums(result.cycles, bounds)


class Napt(NetworkFunction):
    """Network address & port translation (§5.2).

    Keeps a real flow→(external port) table; each packet hashes its
    flow into a bucket line of a 4 MiB table region and rewrites the
    header.  New flows allocate an external port and write the bucket.
    """

    name = "napt"
    base_cost = 60

    def __init__(self, external_ip: int = 0xC612_0001, table_bits: int = 16) -> None:
        self.external_ip = external_ip
        self.table_bits = table_bits
        self.translations: Dict[FiveTuple, int] = {}
        self._next_port = 1024
        self.reverse: Dict[int, FiveTuple] = {}

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate the bucket array (64 B per bucket).

        Re-entrant: a supervisor restart loses every translation (the
        paper's NFs keep state in process memory) and starts over in
        cold memory.
        """
        super().setup(context)
        self.translations = {}
        self.reverse = {}
        self._next_port = 1024
        self._table_mem: LinearBuffer = context.allocate_normal(
            CACHE_LINE << self.table_bits
        )

    def _bucket_address(self, flow: FiveTuple) -> int:
        bucket = rss_hash(*flow) & ((1 << self.table_bits) - 1)
        return self._table_mem.address_of(bucket * CACHE_LINE)

    def translate(self, flow: FiveTuple) -> Tuple[int, int]:
        """Control plane: external (ip, port) for a flow, allocating
        a port on first sight."""
        port = self.translations.get(flow)
        if port is None:
            if self._next_port > 65535:
                raise RuntimeError("NAPT port pool exhausted")
            port = self._next_port
            self._next_port += 1
            self.translations[flow] = port
            self.reverse[port] = flow
        return self.external_ip, port

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Translate one packet: bucket probe, install on miss, rewrite."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)
        flow: FiveTuple = mbuf.payload.flow  # type: ignore[union-attr]
        new_flow = flow not in self.translations
        cycles += self.hierarchy.read(core, self._bucket_address(flow), 1)
        self.translate(flow)
        if new_flow:
            cycles += self.hierarchy.write(core, self._bucket_address(flow), 1)
        cycles += self._touch_header(core, mbuf, write=True)
        return cycles

    def process_batch(self, core: int, mbuf_batch: MbufBatch) -> np.ndarray:
        """Vectorised NAPT: hashed buckets in one batch, ports in order.

        Bucket addresses come from one :func:`rss_hash_array` pass;
        first-seen flows are detected (and ports allocated) in arrival
        order against the live translation table, so control state
        matches per-packet :meth:`process` calls exactly.
        """
        n = len(mbuf_batch)
        headers = mbuf_batch.header_addresses()
        flows = _batch_flows(mbuf_batch)
        fields = _flow_field_arrays(flows)
        buckets = rss_hash_array(*fields) & np.uint32((1 << self.table_bits) - 1)
        base = self._table_mem.address_of(0)
        bucket_addr = base + buckets.astype(np.uint64) * np.uint64(CACHE_LINE)
        new = np.empty(n, dtype=bool)
        translations = self.translations
        for i, flow in enumerate(flows):
            new[i] = flow not in translations
            self.translate(flow)
        return _bucket_rewrite_cycles(
            self, core, headers, bucket_addr, new
        )


def _bucket_rewrite_cycles(
    nf: NetworkFunction,
    core: int,
    headers: np.ndarray,
    bucket_addr: np.ndarray,
    new: np.ndarray,
) -> np.ndarray:
    """Charge the shared NAPT/LB op pattern for one burst.

    Per packet, in scalar order: header read, bucket read, bucket
    write for first-seen flows, header write — issued through one
    ``access_batch`` call.
    """
    counts = 3 + new.astype(np.int64)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    starts = bounds[:-1]
    total = int(bounds[-1])
    addresses = np.empty(total, dtype=np.uint64)
    kinds = np.zeros(total, dtype=bool)
    addresses[starts] = headers
    addresses[starts + 1] = bucket_addr
    sel = np.nonzero(new)[0]
    addresses[starts[sel] + 2] = bucket_addr[sel]
    kinds[starts[sel] + 2] = True
    ends = starts + counts - 1
    addresses[ends] = headers
    kinds[ends] = True
    result = nf.hierarchy.access_batch(addresses, kinds, core)
    from repro.net.dataplane import segment_sums

    return nf.base_cost + segment_sums(result.cycles, bounds)


class RoundRobinLoadBalancer(NetworkFunction):
    """Flow-sticky round-robin load balancer (§5.2)."""

    name = "lb"
    base_cost = 50

    def __init__(self, n_backends: int = 8, table_bits: int = 16) -> None:
        if n_backends <= 0:
            raise ValueError(f"n_backends must be positive, got {n_backends}")
        self.n_backends = n_backends
        self.table_bits = table_bits
        self.assignments: Dict[FiveTuple, int] = {}
        self._next_backend = 0

    def setup(self, context: SliceAwareContext) -> None:
        """Allocate the flow-table bucket array.

        Re-entrant: restarts drop flow stickiness and re-assign from
        backend 0 over a cold table.
        """
        super().setup(context)
        self.assignments = {}
        self._next_backend = 0
        self._table_mem: LinearBuffer = context.allocate_normal(
            CACHE_LINE << self.table_bits
        )

    def _bucket_address(self, flow: FiveTuple) -> int:
        bucket = rss_hash(*flow) & ((1 << self.table_bits) - 1)
        return self._table_mem.address_of(bucket * CACHE_LINE)

    def backend_for(self, flow: FiveTuple) -> int:
        """Control plane: sticky round-robin backend choice."""
        backend = self.assignments.get(flow)
        if backend is None:
            backend = self._next_backend
            self._next_backend = (self._next_backend + 1) % self.n_backends
            self.assignments[flow] = backend
        return backend

    def process(self, core: int, mbuf: Mbuf) -> int:
        """Pick a backend, rewrite the destination."""
        cycles = self.base_cost
        cycles += self._touch_header(core, mbuf)
        flow: FiveTuple = mbuf.payload.flow  # type: ignore[union-attr]
        new_flow = flow not in self.assignments
        cycles += self.hierarchy.read(core, self._bucket_address(flow), 1)
        self.backend_for(flow)
        if new_flow:
            cycles += self.hierarchy.write(core, self._bucket_address(flow), 1)
        cycles += self._touch_header(core, mbuf, write=True)
        return cycles

    def process_batch(self, core: int, mbuf_batch: MbufBatch) -> np.ndarray:
        """Vectorised balancing: hashed buckets batched, picks in order.

        Same shape as :meth:`Napt.process_batch`: one
        :func:`rss_hash_array` pass yields every bucket address, while
        first-seen detection and the sticky round-robin assignment walk
        flows in arrival order against the live table so control state
        matches per-packet :meth:`process` calls exactly.
        """
        n = len(mbuf_batch)
        headers = mbuf_batch.header_addresses()
        flows = _batch_flows(mbuf_batch)
        fields = _flow_field_arrays(flows)
        buckets = rss_hash_array(*fields) & np.uint32((1 << self.table_bits) - 1)
        base = self._table_mem.address_of(0)
        bucket_addr = base + buckets.astype(np.uint64) * np.uint64(CACHE_LINE)
        new = np.empty(n, dtype=bool)
        assignments = self.assignments
        for i, flow in enumerate(flows):
            new[i] = flow not in assignments
            self.backend_for(flow)
        return _bucket_rewrite_cycles(
            self, core, headers, bucket_addr, new
        )
