"""Synthetic traffic: the campus-trace mix and fixed-size streams.

The paper's campus trace is characterised only by its frame-size mix —
"26.9 % of frames are smaller than 100 B; 11.8 % are between 100 &
500 B; and the remaining frames are more than 500 B" (§5) — and by
having enough flows for RSS/FlowDirector steering to matter.
:class:`CampusTraceGenerator` synthesises traffic with exactly that
mix over a heavy-tailed flow population (a handful of elephants over
many mice, as campus traffic shows).

:class:`FixedSizeTraffic` covers the Table 2 classes: 64/512/1024/1500 B
at the low (1000 pps) and high (~4 Mpps) rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.net.packet import FiveTuple, Packet, PROTO_TCP, PROTO_UDP
from repro.net.packet_batch import PacketBatch


@dataclass(frozen=True)
class TrafficClass:
    """One Table 2 traffic class."""

    packet_size: int
    rate_pps: float
    label: str

    @property
    def rate_gbps(self) -> float:
        """Offered load in Gbit/s (frame bytes on the wire)."""
        return self.rate_pps * self.packet_size * 8 / 1e9


#: Table 2 — low rate is 1000 pps, high rate ~4 Mpps.
LOW_RATE_PPS = 1_000.0
HIGH_RATE_PPS = 4_000_000.0

TABLE2_CLASSES: Tuple[TrafficClass, ...] = tuple(
    TrafficClass(packet_size=size, rate_pps=rate, label=f"{size}B-{name}")
    for size in (64, 512, 1024, 1500)
    for rate, name in ((LOW_RATE_PPS, "L"), (HIGH_RATE_PPS, "H"))
)

#: The campus-trace size mix (§5): (fraction, low, high) size buckets.
CAMPUS_MIX: Tuple[Tuple[float, int, int], ...] = (
    (0.269, 64, 99),
    (0.118, 100, 500),
    (0.613, 501, 1500),
)


class CampusTraceGenerator:
    """Campus-like traffic: paper's size mix over heavy-tailed flows.

    Args:
        n_flows: flow population size.
        elephant_fraction: fraction of flows that are elephants.
        elephant_weight: share of packets carried by elephants.
        seed: RNG seed (generation is fully deterministic).
    """

    def __init__(
        self,
        n_flows: int = 4096,
        elephant_fraction: float = 0.05,
        elephant_weight: float = 0.5,
        seed: int = 0,
    ) -> None:
        if n_flows <= 1:
            raise ValueError(f"n_flows must be > 1, got {n_flows}")
        if not 0 < elephant_fraction < 1:
            raise ValueError("elephant_fraction must be in (0, 1)")
        if not 0 <= elephant_weight < 1:
            raise ValueError("elephant_weight must be in [0, 1)")
        self.n_flows = n_flows
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Flow identities.
        self._flows: List[FiveTuple] = []
        for i in range(n_flows):
            proto = PROTO_TCP if rng.random() < 0.8 else PROTO_UDP
            self._flows.append(
                FiveTuple(
                    src_ip=int(rng.integers(0x0A00_0000, 0x0AFF_FFFF)),
                    dst_ip=int(rng.integers(0xC0A8_0000, 0xC0A8_FFFF)),
                    src_port=int(rng.integers(1024, 65535)),
                    dst_port=int(rng.choice([80, 443, 53, 8080, 5201])),
                    proto=proto,
                )
            )
        # Flow popularity: elephants share elephant_weight of traffic.
        n_elephants = max(1, int(n_flows * elephant_fraction))
        weights = np.full(n_flows, (1 - elephant_weight) / (n_flows - n_elephants))
        weights[:n_elephants] = elephant_weight / n_elephants
        self._weights = weights / weights.sum()

    @property
    def flows(self) -> List[FiveTuple]:
        """The flow population."""
        return list(self._flows)

    def sizes(self, n_packets: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw *n_packets* frame sizes with the campus mix."""
        if n_packets <= 0:
            raise ValueError(f"n_packets must be positive, got {n_packets}")
        rng = rng if rng is not None else np.random.default_rng(self.seed + 1)
        fractions = np.array([f for f, _, _ in CAMPUS_MIX])
        bucket = rng.choice(len(CAMPUS_MIX), size=n_packets, p=fractions / fractions.sum())
        lows = np.array([lo for _, lo, _ in CAMPUS_MIX])
        highs = np.array([hi for _, _, hi in CAMPUS_MIX])
        return rng.integers(lows[bucket], highs[bucket] + 1)

    def flow_indices(
        self, n_packets: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw *n_packets* flow indices with elephant skew."""
        rng = rng if rng is not None else np.random.default_rng(self.seed + 2)
        return rng.choice(self.n_flows, size=n_packets, p=self._weights)

    def generate(
        self,
        n_packets: int,
        rate_pps: float,
        seed_offset: int = 0,
    ) -> List[Packet]:
        """Generate a packet list with Poisson arrivals at *rate_pps*."""
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        rng = np.random.default_rng(self.seed + 17 + seed_offset)
        sizes = self.sizes(n_packets, rng)
        flows = self.flow_indices(n_packets, rng)
        gaps_ns = rng.exponential(1e9 / rate_pps, size=n_packets)
        arrivals = np.cumsum(gaps_ns)
        return [
            Packet(
                size=int(sizes[i]),
                flow=self._flows[int(flows[i])],
                arrival_ns=float(arrivals[i]),
                packet_id=i,
            )
            for i in range(n_packets)
        ]

    def generate_batch(
        self,
        n_packets: int,
        rate_pps: float,
        seed_offset: int = 0,
    ) -> PacketBatch:
        """Batched :meth:`generate`: same draws, one structured array.

        Makes the *same RNG calls in the same order* as
        :meth:`generate`, so ``generate_batch(...).to_packets()`` is
        packet-for-packet identical to the scalar list (sizes, flows,
        arrivals, ids).
        """
        if rate_pps <= 0:
            raise ValueError(f"rate_pps must be positive, got {rate_pps}")
        rng = np.random.default_rng(self.seed + 17 + seed_offset)
        sizes = self.sizes(n_packets, rng)
        flows = self.flow_indices(n_packets, rng)
        gaps_ns = rng.exponential(1e9 / rate_pps, size=n_packets)
        return PacketBatch.from_arrays(
            sizes, flows, np.cumsum(gaps_ns), self._flows
        )

    def generate_arrays(
        self,
        n_packets: int,
        rate_gbps: float,
        seed_offset: int = 0,
        burstiness: float = 0.7,
        burst_block: int = 4096,
        burst_rho: float = 0.5,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bulk form: ``(sizes_bytes, flow_indices, arrival_times_ns)``.

        The arrival process is Poisson with mean *bit* rate
        ``rate_gbps``, modulated by a slowly varying log-AR(1) factor
        (real campus traffic is bursty on millisecond scales; without
        modulation every latency percentile collapses onto the same
        queue state).

        Args:
            n_packets: stream length.
            rate_gbps: mean offered load.
            seed_offset: decorrelates repeated runs.
            burstiness: standard deviation of the log-rate modulation
                (0 disables it).
            burst_block: packets sharing one modulation value.
            burst_rho: AR(1) coefficient between consecutive blocks.
        """
        if burstiness < 0:
            raise ValueError(f"burstiness must be non-negative, got {burstiness}")
        if not 0 <= burst_rho < 1:
            raise ValueError(f"burst_rho must be in [0, 1), got {burst_rho}")
        rng = np.random.default_rng(self.seed + 23 + seed_offset)
        sizes = self.sizes(n_packets, rng)
        flows = self.flow_indices(n_packets, rng)
        mean_bits = float(sizes.mean()) * 8
        rate_pps = rate_gbps * 1e9 / mean_bits
        gaps_ns = rng.exponential(1e9 / rate_pps, size=n_packets)
        if burstiness > 0:
            n_blocks = (n_packets + burst_block - 1) // burst_block
            log_factor = np.empty(n_blocks)
            log_factor[0] = rng.normal(0, burstiness)
            noise = rng.normal(
                0, burstiness * np.sqrt(1 - burst_rho * burst_rho), size=n_blocks
            )
            for b in range(1, n_blocks):
                log_factor[b] = burst_rho * log_factor[b - 1] + noise[b]
            factor = np.exp(log_factor - burstiness * burstiness / 2)
            # Normalise the sampled factors so the *realised* mean rate
            # matches the requested one (with a few dozen correlated
            # blocks the sample mean otherwise drifts by 10-30 %).
            factor /= factor.mean()
            gaps_ns *= np.repeat(factor, burst_block)[:n_packets]
        return sizes, flows, np.cumsum(gaps_ns)

    def mean_frame_bytes(self, samples: int = 200_000) -> float:
        """Monte-Carlo mean frame size of the mix."""
        return float(self.sizes(samples).mean())


class FixedSizeTraffic:
    """Single-size traffic at a fixed rate (Table 2 classes).

    A small flow population keeps steering meaningful even for
    single-size streams.
    """

    def __init__(self, traffic_class: TrafficClass, n_flows: int = 256, seed: int = 0) -> None:
        self.traffic_class = traffic_class
        self._campus = CampusTraceGenerator(n_flows=n_flows, seed=seed)

    def generate(self, n_packets: int, seed_offset: int = 0) -> List[Packet]:
        """Generate *n_packets* at the class size and rate."""
        rng = np.random.default_rng(self._campus.seed + 31 + seed_offset)
        flows = self._campus.flow_indices(n_packets, rng)
        gaps_ns = rng.exponential(1e9 / self.traffic_class.rate_pps, size=n_packets)
        arrivals = np.cumsum(gaps_ns)
        return [
            Packet(
                size=self.traffic_class.packet_size,
                flow=self._campus.flows[int(flows[i])],
                arrival_ns=float(arrivals[i]),
                packet_id=i,
            )
            for i in range(n_packets)
        ]

    def generate_batch(self, n_packets: int, seed_offset: int = 0) -> PacketBatch:
        """Batched :meth:`generate` (same RNG draws, one array)."""
        rng = np.random.default_rng(self._campus.seed + 31 + seed_offset)
        flows = self._campus.flow_indices(n_packets, rng)
        gaps_ns = rng.exponential(1e9 / self.traffic_class.rate_pps, size=n_packets)
        sizes = np.full(n_packets, self.traffic_class.packet_size, dtype=np.int64)
        return PacketBatch.from_arrays(
            sizes, flows, np.cumsum(gaps_ns), self._campus._flows
        )
