"""Packet headers and the bulk packet record.

Two representations, for two jobs:

* Full header dataclasses with byte-exact ``pack``/``unpack`` codecs —
  used by the examples and tests (and by NFs that rewrite headers,
  whose field arithmetic must be real).
* :class:`Packet` — a slotted record of the fields the simulators
  need (size, flow 5-tuple, arrival time), cheap enough to create by
  the million.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

ETH_HEADER_LEN = 14
IPV4_HEADER_LEN = 20
UDP_HEADER_LEN = 8
TCP_HEADER_LEN = 20

PROTO_TCP = 6
PROTO_UDP = 17

ETHERTYPE_IPV4 = 0x0800


class FiveTuple(NamedTuple):
    """Flow identity: the classic 5-tuple."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int

    def reversed(self) -> "FiveTuple":
        """The reply direction of this flow."""
        return FiveTuple(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.proto)


@dataclass
class EthernetHeader:
    """Ethernet II header."""

    dst_mac: int  # 48-bit
    src_mac: int  # 48-bit
    ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        """Serialise to 14 wire bytes."""
        return (
            self.dst_mac.to_bytes(6, "big")
            + self.src_mac.to_bytes(6, "big")
            + struct.pack("!H", self.ethertype)
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        """Parse 14 wire bytes."""
        if len(data) < ETH_HEADER_LEN:
            raise ValueError(f"need {ETH_HEADER_LEN} bytes, got {len(data)}")
        return cls(
            dst_mac=int.from_bytes(data[0:6], "big"),
            src_mac=int.from_bytes(data[6:12], "big"),
            ethertype=struct.unpack("!H", data[12:14])[0],
        )

    def swap_macs(self) -> None:
        """Swap source and destination — the forwarding NF's one job."""
        self.dst_mac, self.src_mac = self.src_mac, self.dst_mac


def ipv4_checksum(header: bytes) -> int:
    """RFC 1071 ones-complement checksum of a header with zeroed cksum."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


@dataclass
class Ipv4Header:
    """IPv4 header (no options)."""

    src_ip: int
    dst_ip: int
    proto: int
    total_length: int
    ttl: int = 64
    identification: int = 0
    dscp: int = 0

    def pack(self) -> bytes:
        """Serialise to 20 wire bytes with a valid checksum."""
        without_cksum = struct.pack(
            "!BBHHHBBH4s4s",
            (4 << 4) | 5,
            self.dscp,
            self.total_length,
            self.identification,
            0,
            self.ttl,
            self.proto,
            0,
            self.src_ip.to_bytes(4, "big"),
            self.dst_ip.to_bytes(4, "big"),
        )
        cksum = ipv4_checksum(without_cksum)
        return without_cksum[:10] + struct.pack("!H", cksum) + without_cksum[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        """Parse 20 wire bytes (checksum is not verified here)."""
        if len(data) < IPV4_HEADER_LEN:
            raise ValueError(f"need {IPV4_HEADER_LEN} bytes, got {len(data)}")
        (
            version_ihl,
            dscp,
            total_length,
            identification,
            _flags_frag,
            ttl,
            proto,
            _cksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if version_ihl >> 4 != 4:
            raise ValueError(f"not an IPv4 header (version {version_ihl >> 4})")
        return cls(
            src_ip=int.from_bytes(src, "big"),
            dst_ip=int.from_bytes(dst, "big"),
            proto=proto,
            total_length=total_length,
            ttl=ttl,
            identification=identification,
            dscp=dscp,
        )

    def verify_checksum(self, data: bytes) -> bool:
        """Return whether 20 raw header bytes carry a valid checksum."""
        return ipv4_checksum(data[:IPV4_HEADER_LEN]) == 0


@dataclass
class TransportHeader:
    """The ports-only view of TCP/UDP that the NFs need."""

    src_port: int
    dst_port: int
    proto: int = PROTO_UDP

    def pack(self) -> bytes:
        """Serialise the first 4 bytes (ports) plus minimal remainder."""
        if self.proto == PROTO_UDP:
            return struct.pack("!HHHH", self.src_port, self.dst_port, UDP_HEADER_LEN, 0)
        return struct.pack(
            "!HHIIBBHHH", self.src_port, self.dst_port, 0, 0, 5 << 4, 0, 0, 0, 0
        )

    @classmethod
    def unpack(cls, data: bytes, proto: int) -> "TransportHeader":
        """Parse the ports from TCP or UDP wire bytes."""
        if len(data) < 4:
            raise ValueError(f"need 4 bytes of transport header, got {len(data)}")
        src_port, dst_port = struct.unpack("!HH", data[:4])
        return cls(src_port=src_port, dst_port=dst_port, proto=proto)


class Packet:
    """Bulk simulation record: one frame on the wire."""

    __slots__ = ("size", "flow", "arrival_ns", "timestamp_ns", "packet_id")

    def __init__(
        self,
        size: int,
        flow: FiveTuple,
        arrival_ns: float = 0.0,
        packet_id: int = 0,
    ) -> None:
        if size < 64:
            raise ValueError(f"minimum Ethernet frame is 64 B, got {size}")
        self.size = size
        self.flow = flow
        self.arrival_ns = arrival_ns
        self.timestamp_ns = arrival_ns  # LoadGen writes its TX time
        self.packet_id = packet_id

    @property
    def flow_key(self) -> Tuple[int, int, int, int, int]:
        """Hashable flow key for steering."""
        return tuple(self.flow)

    def header_bytes(self) -> bytes:
        """Build the real wire header for this packet (eth+ip+l4)."""
        eth = EthernetHeader(dst_mac=0x0200_0000_0001, src_mac=0x0200_0000_0002)
        ip = Ipv4Header(
            src_ip=self.flow.src_ip,
            dst_ip=self.flow.dst_ip,
            proto=self.flow.proto,
            total_length=max(IPV4_HEADER_LEN, self.size - ETH_HEADER_LEN),
        )
        l4 = TransportHeader(
            src_port=self.flow.src_port,
            dst_port=self.flow.dst_port,
            proto=self.flow.proto,
        )
        return eth.pack() + ip.pack() + l4.pack()

    def __repr__(self) -> str:
        return f"Packet(size={self.size}, flow={tuple(self.flow)}, id={self.packet_id})"
