"""NF supervision: crash/stall injection and bounded restarts.

The supervisor sits between the DuT's packet path and the service
chain.  Per packet and per NF it consults the fault clock: an injected
crash (:class:`~repro.faults.plan.NfCrashFault`) loses the in-flight
packet and triggers a restart — the NF's ``setup()`` runs again,
re-allocating its state in fresh (cache-cold) memory through the
existing hierarchy, so the re-warm cost shows up in subsequent
packets' service times rather than as a synthetic constant.  Restarts
are bounded; an NF that keeps crashing past the bound takes the chain
down and every further packet is shed (and counted) instead of raising.

Without a fault clock the supervisor is a transparent pass-through:
``process`` delegates straight to the chain, adding no cycles and
drawing no randomness — a supervised fault-free run is bit-identical
to an unsupervised one.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.slice_aware import SliceAwareContext
from repro.dpdk.mbuf import Mbuf
from repro.faults.plan import FaultClock, NfCrashFault
from repro.net.chain import ServiceChain

#: Fixed supervisor overhead of one restart (fork/exec, config reload)
#: charged to the polling core on the packet that observed the crash.
DEFAULT_RESTART_CYCLES = 150_000


class NfSupervisor:
    """Runs a service chain under fault injection with bounded restarts.

    Args:
        chain: the supervised service chain.
        context: machine context the chain was set up against; restarts
            re-run ``nf.setup(context)`` so replacement state is
            allocated cold through the same hierarchy.
        faults: fault clock driving crash/stall decisions (``None``
            disables injection entirely).
        max_restarts: per-NF restart budget; exceeding it marks the
            chain down (packets shed, no exception).
        restart_cycles: fixed cycle cost of one restart.
    """

    def __init__(
        self,
        chain: ServiceChain,
        context: SliceAwareContext,
        faults: Optional[FaultClock] = None,
        max_restarts: int = 8,
        restart_cycles: int = DEFAULT_RESTART_CYCLES,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be non-negative, got {max_restarts}")
        if restart_cycles < 0:
            raise ValueError(f"restart_cycles must be non-negative, got {restart_cycles}")
        self.chain = chain
        self.context = context
        self.faults = faults
        self.max_restarts = max_restarts
        self.restart_cycles = restart_cycles
        self.restarts: Dict[str, int] = {}
        self.crashes = 0
        self.dropped_crash = 0
        self.dropped_down = 0
        self.chain_down = False

    def _handle_crash(self, nf_name: str, fault: NfCrashFault) -> int:
        """Restart (or declare the chain down); returns cycles spent."""
        clock = self.faults
        assert clock is not None  # crashes only fire with a clock
        self.crashes += 1
        self.dropped_crash += 1
        clock.count("nf.crashes")
        clock.count(f"nf.crashes.{nf_name}")
        used = self.restarts.get(nf_name, 0)
        if used >= self.max_restarts:
            # Budget exhausted: shed instead of crash-looping.  The
            # injected fault is intentionally consumed here — this is
            # the recovery path, not a swallowed error.
            self.chain_down = True
            clock.count("nf.chain_down")
            return 0
        self.restarts[nf_name] = used + 1
        clock.count("nf.restarts")
        for nf in self.chain.nfs:
            if nf.name == nf_name:
                nf.setup(self.context)
                break
        else:
            raise fault  # unknown NF: a bug, never swallow it
        return self.restart_cycles

    def process(self, core: int, mbuf: Mbuf) -> Optional[int]:
        """Run one packet through the supervised chain.

        Returns the cycles the core spent, or ``None`` when the packet
        was lost (crash in flight, or chain down).  Injected stalls
        add their cycle cost to the packet that suffered them.
        """
        clock = self.faults
        if clock is None:
            return self.chain.process(core, mbuf)
        if self.chain_down:
            self.dropped_down += 1
            clock.count("nf.dropped_chain_down")
            return None
        rates = clock.rates
        cycles = self.chain.framework_cycles
        for nf in self.chain.nfs:
            if clock.fires("nf.crash", rates.nf_crash):
                cycles += self._handle_crash(nf.name, NfCrashFault(nf.name))
                return None
            if clock.fires("nf.stall", rates.nf_stall):
                cycles += rates.nf_stall_cycles
                clock.count("nf.injected_stalls")
            cycles += nf.process(core, mbuf)
        self.chain.packets_processed += 1
        return cycles

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready restart/drop accounting."""
        return {
            "crashes": self.crashes,
            "restarts": dict(sorted(self.restarts.items())),
            "dropped_crash": self.dropped_crash,
            "dropped_down": self.dropped_down,
            "chain_down": self.chain_down,
        }
