"""Record/replay machinery behind the batched dataplane.

The scalar dataplane charges every cache access and every DMA span the
moment it happens, one :meth:`CacheHierarchy.read` or
:meth:`DdioEngine.dma_write` call at a time.  Whether a packet is
dropped, which mbuf it gets, which fault draws fire — none of that
depends on cache *timing*; cache state only determines cycle counts.
The batched dataplane exploits exactly that split:

1. **Control pass** — run the real NIC/mempool/PMD/chain/supervisor
   code per packet, in arrival order, with the hierarchy's ``read``/
   ``write`` and the NIC's DDIO engine swapped for an
   :class:`OpRecorder`.  Every drop decision, fault draw, allocation
   and counter update happens exactly as in the scalar path (it *is*
   the scalar code); the recorder just captures the op stream —
   demand spans and DMA spans, interleaved in program order — instead
   of walking the cache model.
2. **Charging pass** — replay the recorded stream, in order, through
   :meth:`FastEngine.run_op_stream` (one flattened loop over the whole
   trace) or through the reference methods when the fast engine is not
   selected.  Because the ops execute in the order the scalar path
   would have issued them, every hit, victim, write-back and uncore
   counter lands identically — the differential harness
   (:func:`repro.cachesim.diff.run_dataplane_differential`) proves it.

Per-packet cycles are then the control pass's fixed costs plus the
segment sums of the replayed demand-op cycles (DMA ops charge nothing
to packets, mirroring the scalar path).

The one configuration this cannot serve is a hierarchy with a runtime
:class:`CacheSanitizer`: its DMA-overrun checks must interleave with
the accesses they guard, which deferred replay breaks.  Callers fall
back to the scalar loop in that case (results are identical either
way; only the speedup is lost).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.cachesim.engine import OP_DMA_READ, OP_DMA_WRITE, OP_READ, OP_WRITE
from repro.mem.address import CACHE_LINE

_LINE_MASK = ~(CACHE_LINE - 1)


class RecordingDdio:
    """Stand-in for :class:`DdioEngine` that records instead of filling.

    Installed over an object's ``.ddio`` attribute during the control
    pass; validates like the real engine, appends the span to the
    recorder, and leaves all cache and stats mutation to the replay.
    The record paths are closures over the recorder's op list — these
    run once per DMA span on the hot control path.
    """

    def __init__(self, recorder: "OpRecorder", index: int) -> None:
        append = recorder.ops.append

        def dma_write(address, size, _append=append, _index=index):
            if size <= 0:
                raise ValueError(f"size must be positive, got {size}")
            first = address & _LINE_MASK
            last = (address + size - 1) & _LINE_MASK
            _append((OP_DMA_WRITE, first, last, _index))
            return (last - first) // CACHE_LINE + 1

        def dma_read(address, size, _append=append, _index=index):
            if size <= 0:
                raise ValueError(f"size must be positive, got {size}")
            first = address & _LINE_MASK
            last = (address + size - 1) & _LINE_MASK
            _append((OP_DMA_READ, first, last, _index))
            return (last - first) // CACHE_LINE + 1

        #: Record an RX-side DMA span; returns lines touched.
        self.dma_write = dma_write
        #: Record a TX-side DMA span; returns lines touched.
        self.dma_read = dma_read


class OpRecorder:
    """Accumulates one interleaved dataplane op stream.

    The stream is one list of ``(kind, first_line, last_line, aux)``
    tuples — ``aux`` is the issuing core for demand ops and the
    DDIO-engine index for DMA ops (multi-engine callers like the fleet
    path run one engine per tenant).
    """

    def __init__(self) -> None:
        self.ops: List[Tuple[int, int, int, int]] = []
        append = self.ops.append

        # Recording callbacks as closures: these displace
        # ``CacheHierarchy.read``/``write`` on the hot control path,
        # so they skip bound-method and global-name lookups.
        def record_read(core, address, size=CACHE_LINE, _append=append):
            if size <= 0:
                raise ValueError(f"size must be positive, got {size}")
            _append(
                (
                    OP_READ,
                    address & _LINE_MASK,
                    (address + size - 1) & _LINE_MASK,
                    core,
                )
            )
            return 0

        def record_write(core, address, size=CACHE_LINE, _append=append):
            if size <= 0:
                raise ValueError(f"size must be positive, got {size}")
            _append(
                (
                    OP_WRITE,
                    address & _LINE_MASK,
                    (address + size - 1) & _LINE_MASK,
                    core,
                )
            )
            return 0

        #: Recording replacement for ``CacheHierarchy.read``.
        self.record_read = record_read
        #: Recording replacement for ``CacheHierarchy.write``.
        self.record_write = record_write

    @property
    def n_ops(self) -> int:
        """Ops recorded so far (packet boundaries snapshot this)."""
        return len(self.ops)

    # -- capture / replay ----------------------------------------------

    @contextmanager
    def capture(self, hierarchy, ddio_holders: Sequence[object]) -> Iterator[None]:
        """Swap *hierarchy*'s demand path and each holder's ``.ddio``.

        ``ddio_holders`` are the objects whose ``.ddio`` attribute the
        control code calls (the NIC; each fleet tenant's KVS server).
        The i-th holder's spans are tagged with DDIO index ``i`` so the
        replay can route them to the matching real engine.  Instance
        attributes are restored exactly on exit — including the case
        where ``set_engine("fast")`` had installed the fast engine's
        bound methods over ``read``/``write``.
        """
        saved_read = hierarchy.__dict__.get("read")
        saved_write = hierarchy.__dict__.get("write")
        saved_ddios = [holder.ddio for holder in ddio_holders]
        hierarchy.read = self.record_read
        hierarchy.write = self.record_write
        for i, holder in enumerate(ddio_holders):
            # One tiny wrapper per DDIO holder per capture (not per
            # packet); pooling would leak recorder state across bursts.
            holder.ddio = RecordingDdio(self, i)  # deepcheck: ignore[PERF002]
        try:
            yield
        finally:
            for holder, ddio in zip(ddio_holders, saved_ddios):
                holder.ddio = ddio
            if saved_read is None:
                hierarchy.__dict__.pop("read", None)
            else:
                hierarchy.read = saved_read
            if saved_write is None:
                hierarchy.__dict__.pop("write", None)
            else:
                hierarchy.write = saved_write

    def replay(
        self,
        hierarchy,
        ddios: Sequence[object],
        multi_ddio: bool = False,
    ) -> np.ndarray:
        """Charge the recorded stream in order; returns per-op cycles.

        With the fast engine selected (and no sanitizer — the callers
        guarantee it) the whole stream runs through one
        :meth:`FastEngine.run_op_stream` call; otherwise each op goes
        through the reference methods it displaced.  Either way the
        call sequence is the one the scalar path would have made, so
        outcomes are bit-identical.
        """
        n = self.n_ops
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if hierarchy.engine_name == "fast":
            return hierarchy.fast_engine().run_op_stream(
                self.ops, ddios, multi_ddio
            )
        out = np.zeros(n, dtype=np.int64)
        single = None if multi_ddio else ddios[0]
        for i, (kind, first, last, aux) in enumerate(self.ops):
            size = last - first + CACHE_LINE
            if kind == OP_READ:
                out[i] = hierarchy.read(aux, first, size)
            elif kind == OP_WRITE:
                out[i] = hierarchy.write(aux, first, size)
            else:
                ddio = single if single is not None else ddios[aux]
                # Intentional scalar reference path: the reference
                # engine charges op by op; the fast engine takes the
                # whole stream through run_op_stream instead.
                if kind == OP_DMA_WRITE:
                    ddio.dma_write(first, size)  # deepcheck: ignore[PERF001]
                else:
                    ddio.dma_read(first, size)  # deepcheck: ignore[PERF001]
        return out


def segment_sums(per_op: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Sum *per_op* over ``[bounds[i], bounds[i+1])`` segments.

    ``np.add.reduceat`` mis-handles empty segments (it returns the
    element at the index instead of 0), so this goes through a cumsum.
    """
    csum = np.concatenate(([0], np.cumsum(per_op, dtype=np.int64)))
    return csum[bounds[1:]] - csum[bounds[:-1]]
