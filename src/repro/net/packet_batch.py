"""Bulk packet representation: one numpy structured array per burst.

A :class:`PacketBatch` carries what the simulators need for a whole
trace — frame sizes, flow 5-tuple fields, arrival times, packet ids —
as columns of one structured array instead of a million
:class:`~repro.net.packet.Packet` objects.  Trace generators emit it
directly (:meth:`CampusTraceGenerator.generate_batch`), steering
resolves it in one vectorised pass (:meth:`PacketBatch.rss_queues`),
and :meth:`DutEnvironment.service_cycles_batch` consumes it.

The batch keeps the generator's flow population (a list of
:class:`FiveTuple`) alongside a per-packet flow index, so
:meth:`to_packets` reconstructs the *same* ``Packet`` objects —
identical flow-tuple identities included — that the scalar
``generate()`` would have produced.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.net.packet import FiveTuple, Packet

#: Columns of one packet record.
PACKET_DTYPE = np.dtype(
    [
        ("size", np.uint32),
        ("flow_index", np.int32),
        ("src_ip", np.uint32),
        ("dst_ip", np.uint32),
        ("src_port", np.uint16),
        ("dst_port", np.uint16),
        ("proto", np.uint8),
        ("arrival_ns", np.float64),
        ("packet_id", np.int64),
    ]
)


class PacketBatch:
    """A burst of packets as one structured array.

    Args:
        records: a :data:`PACKET_DTYPE` structured array.
        flows: the flow population the ``flow_index`` column points
            into (``None`` when the batch was built without one; then
            :meth:`to_packets` materialises tuples from the columns).
    """

    def __init__(
        self, records: np.ndarray, flows: Optional[Sequence[FiveTuple]] = None
    ) -> None:
        if records.dtype != PACKET_DTYPE:
            raise ValueError(f"records must have dtype {PACKET_DTYPE}")
        self.records = records
        self.flows: Optional[List[FiveTuple]] = (
            list(flows) if flows is not None else None
        )

    def __len__(self) -> int:
        return len(self.records)

    # -- construction --------------------------------------------------

    @classmethod
    def from_arrays(
        cls,
        sizes: np.ndarray,
        flow_indices: np.ndarray,
        arrivals_ns: np.ndarray,
        flows: Sequence[FiveTuple],
        first_packet_id: int = 0,
    ) -> "PacketBatch":
        """Build a batch from generator arrays plus a flow population."""
        n = len(sizes)
        records = np.zeros(n, dtype=PACKET_DTYPE)
        records["size"] = sizes
        records["flow_index"] = flow_indices
        records["arrival_ns"] = arrivals_ns
        records["packet_id"] = np.arange(
            first_packet_id, first_packet_id + n, dtype=np.int64
        )
        pop = np.array(
            [tuple(flow) for flow in flows], dtype=np.uint64
        ).reshape(len(flows), 5)
        idx = np.asarray(flow_indices, dtype=np.int64)
        records["src_ip"] = pop[idx, 0]
        records["dst_ip"] = pop[idx, 1]
        records["src_port"] = pop[idx, 2]
        records["dst_port"] = pop[idx, 3]
        records["proto"] = pop[idx, 4]
        return cls(records, flows)

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """Column-ise an existing packet list (flows deduplicated)."""
        n = len(packets)
        records = np.zeros(n, dtype=PACKET_DTYPE)
        flows: List[FiveTuple] = []
        index_of: dict = {}
        flow_indices = np.empty(n, dtype=np.int32)
        for i, packet in enumerate(packets):
            flow = packet.flow
            j = index_of.get(flow)
            if j is None:
                j = len(flows)
                index_of[flow] = j
                flows.append(flow)
            flow_indices[i] = j
            records["size"][i] = packet.size
            records["arrival_ns"][i] = packet.arrival_ns
            records["packet_id"][i] = packet.packet_id
        records["flow_index"] = flow_indices
        pop = np.array([tuple(flow) for flow in flows], dtype=np.uint64)
        idx = flow_indices.astype(np.int64)
        records["src_ip"] = pop[idx, 0]
        records["dst_ip"] = pop[idx, 1]
        records["src_port"] = pop[idx, 2]
        records["dst_port"] = pop[idx, 3]
        records["proto"] = pop[idx, 4]
        return cls(records, flows)

    # -- views ---------------------------------------------------------

    def flow_tuple(self, i: int) -> FiveTuple:
        """The *i*-th packet's flow identity."""
        if self.flows is not None:
            return self.flows[int(self.records["flow_index"][i])]
        r = self.records[i]
        return FiveTuple(
            src_ip=int(r["src_ip"]),
            dst_ip=int(r["dst_ip"]),
            src_port=int(r["src_port"]),
            dst_port=int(r["dst_port"]),
            proto=int(r["proto"]),
        )

    def to_packets(self) -> List[Packet]:
        """Materialise :class:`Packet` objects (shared flow tuples)."""
        records = self.records
        sizes = records["size"].tolist()
        arrivals = records["arrival_ns"].tolist()
        ids = records["packet_id"].tolist()
        if self.flows is not None:
            flows = self.flows
            indices = records["flow_index"].tolist()
            return [
                Packet(
                    size=sizes[i],
                    flow=flows[indices[i]],
                    arrival_ns=arrivals[i],
                    packet_id=ids[i],
                )
                for i in range(len(records))
            ]
        return [
            Packet(
                size=sizes[i],
                flow=self.flow_tuple(i),
                arrival_ns=arrivals[i],
                packet_id=ids[i],
            )
            for i in range(len(records))
        ]

    def rss_queues(self, steering) -> np.ndarray:
        """Vectorised RSS steering: one queue per packet.

        Matches per-packet ``steering.queue_for(packet.flow_key)`` for
        an :class:`~repro.dpdk.steering.RssSteering` exactly (same
        hash, same indirection table).
        """
        r = self.records
        return steering.queues_for(
            r["src_ip"], r["dst_ip"], r["src_port"], r["dst_port"], r["proto"]
        )
