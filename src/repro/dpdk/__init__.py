"""A DPDK-like user-space packet I/O substrate.

CacheDirector is ~200 lines of headroom arithmetic inside DPDK's
buffer management; this package rebuilds the DPDK structures it lives
in, sized and laid out like the originals (§4.1):

* :mod:`repro.dpdk.mbuf` — packet buffers: a two-cache-line metadata
  struct, a (dynamic) headroom and a data room.
* :mod:`repro.dpdk.mempool` — fixed-size element pools carved out of
  hugepages, with LIFO per-pool caches.
* :mod:`repro.dpdk.ring` — power-of-two circular queues.
* :mod:`repro.dpdk.steering` — RSS hashing and FlowDirector exact-match
  steering of flows to RX queues.
* :mod:`repro.dpdk.nic` — the NIC model: DMA through DDIO into the
  LLC, RX descriptor rings, CacheDirector hook on the RX path.
* :mod:`repro.dpdk.pmd` — the poll-mode driver whose per-packet cache
  accesses are charged to the polling core.
"""

from repro.dpdk.mbuf import Mbuf, MBUF_STRUCT_SIZE
from repro.dpdk.mempool import Mempool
from repro.dpdk.nic import Nic, NicStats
from repro.dpdk.pmd import PollModeDriver
from repro.dpdk.ring import Ring
from repro.dpdk.steering import FlowDirectorSteering, RssSteering, rss_hash

__all__ = [
    "FlowDirectorSteering",
    "MBUF_STRUCT_SIZE",
    "Mbuf",
    "Mempool",
    "Nic",
    "NicStats",
    "PollModeDriver",
    "Ring",
    "RssSteering",
    "rss_hash",
]
