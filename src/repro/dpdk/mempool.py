"""Fixed-size mbuf pools (``rte_mempool`` + ``rte_pktmbuf_pool``).

A mempool carves ``n_mbufs`` equal elements out of hugepage-backed
memory; each element is one mbuf struct plus its buffer region.  Frees
push onto a LIFO stack (mirroring DPDK's per-lcore object cache, which
re-uses the most recently freed — and therefore warmest — element
first).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.sanitizer import CacheSanitizer, resolve_sanitizer
from repro.faults.plan import FaultClock
from repro.dpdk.mbuf import (
    DEFAULT_DATAROOM,
    DEFAULT_HEADROOM,
    MBUF_STRUCT_SIZE,
    Mbuf,
)
from repro.mem.address import CACHE_LINE, align_up
from repro.mem.allocator import ContiguousAllocator


class MempoolEmptyError(RuntimeError):
    """Raised on allocation from an exhausted pool (rx drop territory)."""


class Mempool:
    """A pool of pre-initialised mbufs.

    Args:
        name: diagnostic label.
        allocator: contiguous allocator over a hugepage.
        n_mbufs: number of elements.
        data_room: bytes of buffer region after the default headroom;
            CacheDirector deployments must provision
            ``director.max_headroom - DEFAULT_HEADROOM`` extra bytes so
            the dynamic headroom never starves the data area (§4.2).
        default_headroom: initial headroom of fresh mbufs.
        phys_base_override: explicit physical base used in tests.
        sanitize: force CacheSanitizer shadowing on (``True``) or off
            (``False``); ``None`` defers to the ``RF_SANITIZE``
            environment switch.
        sanitizer: explicit sanitizer instance to join (wins over
            ``sanitize``); lets tests share one shadow state between a
            pool and a hierarchy.
        watermarks: optional ``(low, high)`` in-use element counts for
            backpressure hysteresis: :attr:`under_pressure` turns on
            when usage reaches *high* and off once it falls back to
            *low*, so the NIC sheds load before the pool exhausts.
    """

    def __init__(
        self,
        name: str,
        allocator: ContiguousAllocator,
        n_mbufs: int,
        data_room: int = DEFAULT_DATAROOM,
        default_headroom: int = DEFAULT_HEADROOM,
        sanitize: Optional[bool] = None,
        sanitizer: Optional[CacheSanitizer] = None,
        watermarks: Optional[Tuple[int, int]] = None,
    ) -> None:
        if n_mbufs <= 0:
            raise ValueError(f"n_mbufs must be positive, got {n_mbufs}")
        self.name = name
        self.data_room = data_room
        self.default_headroom = default_headroom
        buf_len = default_headroom + data_room
        element_size = align_up(MBUF_STRUCT_SIZE + buf_len, CACHE_LINE)
        virt_base = allocator.allocate(element_size * n_mbufs, align=CACHE_LINE)
        phys_base = allocator.buffer.virt_to_phys(virt_base)
        self.element_size = element_size
        self.base_phys = phys_base
        self.mbufs: List[Mbuf] = [
            Mbuf(
                pool=self,
                index=i,
                base_phys=phys_base + i * element_size,
                buf_len=buf_len,
                default_headroom=default_headroom,
            )
            for i in range(n_mbufs)
        ]
        # LIFO free stack, warmest element on top.
        self._free: List[Mbuf] = list(reversed(self.mbufs))
        self.alloc_failures = 0
        if watermarks is not None:
            low, high = watermarks
            if not 0 <= low < high <= n_mbufs:
                raise ValueError(
                    f"watermarks must satisfy 0 <= low < high <= {n_mbufs}, "
                    f"got {watermarks}"
                )
        self.watermarks = watermarks
        self._pressure = False
        #: Fault clock injecting allocation failures, or ``None``.
        self.faults: Optional[FaultClock] = None
        # Remaining forced failures of an open exhaustion window.
        self._exhaust_remaining = 0
        self.sanitizer = resolve_sanitizer(sanitize, sanitizer)
        if self.sanitizer is not None:
            self.sanitizer.register_pool(self)
            for mbuf in self.mbufs:
                mbuf.san = self.sanitizer

    @property
    def capacity(self) -> int:
        """Total number of elements."""
        return len(self.mbufs)

    @property
    def available(self) -> int:
        """Elements currently free."""
        return len(self._free)

    @property
    def in_use(self) -> int:
        """Elements currently allocated."""
        return self.capacity - self.available

    @property
    def under_pressure(self) -> bool:
        """Backpressure signal with watermark hysteresis.

        Always ``False`` without watermarks.  With them, turns on when
        ``in_use`` reaches the high mark and stays on until usage
        falls back to the low mark — the hysteresis keeps the NIC from
        flapping between shedding and admitting at the boundary.
        """
        if self.watermarks is None:
            return False
        low, high = self.watermarks
        if self._pressure:
            if self.in_use <= low:
                self._pressure = False
        elif self.in_use >= high:
            self._pressure = True
        return self._pressure

    def _fault_alloc_fails(self) -> bool:
        """Whether an injected fault fails this allocation.

        Exhaustion windows fail a drawn-length run of consecutive
        allocations (a burst of demand elsewhere); transient failures
        fail a single allocation.  All decisions come from the fault
        clock's own streams.
        """
        clock = self.faults
        if clock is None:
            return False
        if self._exhaust_remaining > 0:
            self._exhaust_remaining -= 1
            clock.count("mempool.exhaust_window_fails")
            return True
        rates = clock.rates
        if clock.fires("mempool.exhaust", rates.mempool_exhaust):
            self._exhaust_remaining = (
                clock.integers(
                    "mempool.exhaust_len",
                    rates.mempool_exhaust_allocs_min,
                    rates.mempool_exhaust_allocs_max + 1,
                )
                - 1  # this allocation is the window's first failure
            )
            clock.count("mempool.exhaust_windows")
            clock.count("mempool.exhaust_window_fails")
            return True
        if clock.fires("mempool.alloc_fail", rates.mempool_alloc_fail):
            clock.count("mempool.transient_alloc_fails")
            return True
        return False

    def alloc(self) -> Mbuf:
        """Pop one mbuf, reset to defaults.

        Raises:
            MempoolEmptyError: when the pool is exhausted (or an
                injected allocation fault fires).
        """
        if self._fault_alloc_fails():
            self.alloc_failures += 1
            raise MempoolEmptyError(
                f"mempool {self.name!r}: injected allocation failure"
            )
        if not self._free:
            self.alloc_failures += 1
            raise MempoolEmptyError(f"mempool {self.name!r} exhausted")
        mbuf = self._free.pop()
        if self.sanitizer is not None:
            self.sanitizer.on_alloc(self, mbuf)
        mbuf.reset()
        return mbuf

    def try_alloc(self) -> Optional[Mbuf]:
        """Pop one mbuf or return ``None`` when exhausted."""
        if self._fault_alloc_fails():
            self.alloc_failures += 1
            return None
        if not self._free:
            self.alloc_failures += 1
            return None
        mbuf = self._free.pop()
        if self.sanitizer is not None:
            self.sanitizer.on_alloc(self, mbuf)
        mbuf.reset()
        return mbuf

    def peek(self) -> Optional[Mbuf]:
        """The element the next successful alloc would pop (LIFO top)."""
        return self._free[-1] if self._free else None

    def free(self, mbuf: Mbuf) -> None:
        """Return an mbuf (and its whole chain) to the pool."""
        free_append = self._free.append
        sanitizer = self.sanitizer
        segment = mbuf
        while segment is not None:
            nxt = segment.next
            if segment.pool is not self:
                raise ValueError(
                    f"mbuf {segment.index} does not belong to pool {self.name!r}"
                )
            if sanitizer is not None:
                sanitizer.on_free(self, segment)
            segment.next = None
            free_append(segment)
            segment = nxt
        if len(self._free) > self.capacity:
            raise RuntimeError(f"double free detected in pool {self.name!r}")

    def alloc_bulk(self, count: int) -> List[Mbuf]:
        """Pop *count* mbufs; all-or-nothing like ``rte_pktmbuf_alloc_bulk``."""
        if count > self.available:
            self.alloc_failures += 1
            raise MempoolEmptyError(
                f"mempool {self.name!r}: wanted {count}, have {self.available}"
            )
        taken: List[Mbuf] = []
        try:
            for _ in range(count):
                taken.append(self.alloc())
        except MempoolEmptyError:
            # An injected allocation fault mid-bulk: stay all-or-nothing.
            for mbuf in taken:
                self.free(mbuf)
            raise
        return taken

    def __repr__(self) -> str:
        return (
            f"Mempool(name={self.name!r}, capacity={self.capacity}, "
            f"available={self.available}, data_room={self.data_room})"
        )
