"""RX steering: RSS and FlowDirector.

Receive Side Scaling hashes each packet's flow key through a
Toeplitz-style hash into an indirection table, spreading *flows* over
RX queues; heavy flows therefore skew per-queue load.  Intel Ethernet
FlowDirector matches flows exactly and can place them deliberately —
the paper observed it "reduces contention in each slice by performing
better load balancing compared to RSS for the campus trace" (§5.2.1),
which is why Figs. 13 and 14 trend differently.

Both steerers operate on hashable flow keys (tuples of header fields),
keeping this module independent of any packet representation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

#: Default RSS indirection-table size (Intel RETA).
RETA_SIZE = 128

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def rss_hash(*fields: int) -> int:
    """32-bit flow hash over integer header fields.

    A Toeplitz hash needs a key and bit-serial multiplication; an
    FNV-1a over the field bytes gives the same operational property —
    a fixed, well-mixing map from flow tuples to 32 bits — at a
    fraction of the cost.
    """
    value = _FNV_OFFSET
    for field in fields:
        while True:
            value = ((value ^ (field & 0xFF)) * _FNV_PRIME) & _MASK64
            field >>= 8
            if not field:
                break
    return (value ^ (value >> 32)) & 0xFFFFFFFF


def rss_hash_array(*field_arrays: np.ndarray) -> np.ndarray:
    """Vectorised :func:`rss_hash` over parallel field arrays.

    Each argument is one header field for every packet; entry *i* of
    the result equals ``rss_hash(fields[0][i], fields[1][i], …)``.
    The per-field byte loop is a do-while (at least one byte, then
    while bits remain), reproduced with a shrinking active mask —
    uint64 multiplication wraps exactly like the scalar ``& _MASK64``.
    """
    if not field_arrays:
        raise ValueError("rss_hash_array needs at least one field array")
    n = len(field_arrays[0])
    value = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    byte_mask = np.uint64(0xFF)
    eight = np.uint64(8)
    for field in field_arrays:
        remaining = np.asarray(field, dtype=np.uint64).copy()
        if len(remaining) != n:
            raise ValueError("field arrays must have equal length")
        active = np.ones(n, dtype=bool)
        while True:
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            chunk = remaining[idx]
            value[idx] = (value[idx] ^ (chunk & byte_mask)) * prime
            chunk >>= eight
            remaining[idx] = chunk
            active[idx] = chunk != 0
    return ((value ^ (value >> np.uint64(32))) & np.uint64(0xFFFFFFFF)).astype(
        np.uint32
    )


class RssSteering:
    """Hash-based flow→queue spreading through an indirection table."""

    def __init__(self, n_queues: int, reta_size: int = RETA_SIZE) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if reta_size <= 0:
            raise ValueError(f"reta_size must be positive, got {reta_size}")
        self.n_queues = n_queues
        self.reta: List[int] = [i % n_queues for i in range(reta_size)]

    def queue_for(self, flow_key: Sequence[int]) -> int:
        """RX queue for a flow key (tuple of integer header fields)."""
        return self.reta[rss_hash(*flow_key) % len(self.reta)]

    def queues_for(self, *field_arrays: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`queue_for` over parallel field arrays.

        Entry *i* equals ``queue_for((fields[0][i], fields[1][i], …))``
        — same hash, same indirection table, one numpy pass.
        """
        hashes = rss_hash_array(*field_arrays)
        reta = np.asarray(self.reta, dtype=np.int64)
        return reta[hashes % np.uint32(len(self.reta))]


class FlowDirectorSteering:
    """Exact-match flow steering with balanced placement.

    New flows are pinned to the queue with the fewest assigned flows
    (weighted by observed packets), modelling the better balance the
    paper measured; packets of known flows always follow their pin.
    Falls back to RSS when the (bounded) flow table overflows, exactly
    like the hardware's hash-filter fallback.
    """

    def __init__(
        self,
        n_queues: int,
        table_size: int = 8192,
        fallback: RssSteering | None = None,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        if table_size <= 0:
            raise ValueError(f"table_size must be positive, got {table_size}")
        self.n_queues = n_queues
        self.table_size = table_size
        self.fallback = fallback if fallback is not None else RssSteering(n_queues)
        self._flows: Dict[Hashable, int] = {}
        self._queue_load: List[int] = [0] * n_queues
        self.table_overflows = 0

    def queue_for(self, flow_key: Hashable) -> int:
        """RX queue for a flow key; pins new flows to the lightest queue."""
        queue = self._flows.get(flow_key)
        if queue is None:
            if len(self._flows) >= self.table_size:
                self.table_overflows += 1
                return self.fallback.queue_for(flow_key)  # type: ignore[arg-type]
            queue = min(range(self.n_queues), key=self._queue_load.__getitem__)
            self._flows[flow_key] = queue
        self._queue_load[queue] += 1
        return queue

    @property
    def n_flows(self) -> int:
        """Flows currently pinned."""
        return len(self._flows)

    def queue_loads(self) -> List[int]:
        """Packets observed per queue (balance diagnostic)."""
        return list(self._queue_load)
