"""Bulk mbuf representation: a burst as one numpy structured array.

An :class:`MbufBatch` is the column-ised view of a polled RX burst —
struct/header/payload line spans, sizes, FCS verdicts and queue ids —
that the batched PMD and NF paths consume: one
:meth:`~repro.cachesim.hierarchy.CacheHierarchy.access_batch` call can
then charge a whole burst's struct-line reads or header touches
instead of per-line ``hierarchy.read`` calls.

The batch keeps the live :class:`Mbuf` objects alongside the columns:
control flow (freeing, chaining, payload access) stays on the real
objects; only the cache charging is vectorised.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.dpdk.mbuf import Mbuf
from repro.mem.address import CACHE_LINE

_LINE_MASK = ~(CACHE_LINE - 1)

#: Columns of one mbuf record.
MBUF_DTYPE = np.dtype(
    [
        ("base_phys", np.uint64),
        ("data_phys", np.uint64),
        ("pkt_len", np.uint32),
        ("data_len", np.uint32),
        ("headroom", np.uint32),
        ("queue", np.uint16),
        ("fcs_ok", np.bool_),
        # Line spans: the two struct lines start at base_phys; the
        # payload spans [data_first_line, data_last_line].
        ("data_first_line", np.uint64),
        ("data_last_line", np.uint64),
    ]
)


class MbufBatch:
    """A burst of mbufs as one structured array plus the live objects."""

    def __init__(self, records: np.ndarray, mbufs: Sequence[Mbuf]) -> None:
        if records.dtype != MBUF_DTYPE:
            raise ValueError(f"records must have dtype {MBUF_DTYPE}")
        if len(records) != len(mbufs):
            raise ValueError("records and mbufs must have equal length")
        self.records = records
        self.mbufs: List[Mbuf] = list(mbufs)

    def __len__(self) -> int:
        return len(self.records)

    @classmethod
    def from_mbufs(cls, mbufs: Sequence[Mbuf]) -> "MbufBatch":
        """Column-ise a polled burst (head mbufs; chains keep `.next`)."""
        n = len(mbufs)
        records = np.zeros(n, dtype=MBUF_DTYPE)
        for i, mbuf in enumerate(mbufs):
            records["base_phys"][i] = mbuf.base_phys
            records["data_phys"][i] = mbuf.data_phys
            records["pkt_len"][i] = mbuf.pkt_len
            records["data_len"][i] = mbuf.data_len
            records["headroom"][i] = mbuf.headroom
            records["queue"][i] = mbuf.queue
            records["fcs_ok"][i] = mbuf.fcs_ok
            first = mbuf.data_phys & _LINE_MASK
            records["data_first_line"][i] = first
            records["data_last_line"][i] = (
                (mbuf.data_phys + mbuf.data_len - 1) & _LINE_MASK
                if mbuf.data_len
                else first
            )
        return cls(records, mbufs)

    # -- address vectors ------------------------------------------------

    def struct_line_addresses(self) -> np.ndarray:
        """Both struct lines per mbuf, packet-major (m0l0, m0l1, m1l0, …).

        The interleaving matches the scalar PMD loop's access order, so
        charging this vector through ``access_batch`` evolves the cache
        identically.
        """
        base = self.records["base_phys"]
        out = np.empty(2 * len(base), dtype=np.uint64)
        out[0::2] = base
        out[1::2] = base + np.uint64(CACHE_LINE)
        return out

    def header_addresses(self) -> np.ndarray:
        """The first payload (header) line per mbuf."""
        return self.records["data_phys"].copy()

    def select(self, mask: np.ndarray) -> "MbufBatch":
        """Sub-batch of the rows where *mask* is true (order kept)."""
        idx = np.nonzero(mask)[0]
        return MbufBatch(
            self.records[idx], [self.mbufs[int(i)] for i in idx]
        )
