"""Power-of-two circular FIFO queues (``rte_ring``).

RX/TX queues between the NIC model and the poll-mode driver are rings
of mbuf references, like DPDK's descriptor-backed software rings.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, List, Optional, TypeVar

from repro.mem.address import is_power_of_two

T = TypeVar("T")


class Ring(Generic[T]):
    """Bounded FIFO with burst enqueue/dequeue.

    Args:
        size: capacity; must be a power of two (as ``rte_ring_create``
            requires).
        name: diagnostic label.
    """

    def __init__(self, size: int, name: str = "ring") -> None:
        if not is_power_of_two(size):
            raise ValueError(f"ring size must be a power of two, got {size}")
        self.size = size
        self.name = name
        self._items: Deque[T] = deque()
        self.enqueue_drops = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free_count(self) -> int:
        """Free slots remaining."""
        return self.size - len(self._items)

    @property
    def full(self) -> bool:
        """Whether the ring has no free slots."""
        return len(self._items) >= self.size

    @property
    def empty(self) -> bool:
        """Whether the ring holds no items."""
        return not self._items

    def enqueue(self, item: T) -> bool:
        """Append one item; ``False`` (and a drop count) when full."""
        if len(self._items) >= self.size:
            self.enqueue_drops += 1
            return False
        self._items.append(item)
        return True

    def enqueue_burst(self, items: List[T]) -> int:
        """Append as many items as fit; returns how many were taken."""
        taken = 0
        for item in items:
            if not self.enqueue(item):
                break
            taken += 1
        return taken

    def dequeue(self) -> Optional[T]:
        """Pop the oldest item, or ``None`` when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def dequeue_burst(self, max_items: int) -> List[T]:
        """Pop up to *max_items* oldest items."""
        if max_items <= 0:
            raise ValueError(f"max_items must be positive, got {max_items}")
        burst: List[T] = []
        items = self._items
        while items and len(burst) < max_items:
            burst.append(items.popleft())
        return burst

    def peek(self) -> Optional[T]:
        """Return the oldest item without removing it."""
        return self._items[0] if self._items else None

    def __repr__(self) -> str:
        return f"Ring(name={self.name!r}, size={self.size}, used={len(self._items)})"
