"""Packet buffers (``rte_mbuf``).

Layout mirrors DPDK (§4.1, Fig. 9): a metadata struct occupying exactly
two cache lines (128 B), then the buffer region — headroom followed by
the data room.  CacheDirector's whole trick is that the headroom is
*dynamic*: moving the data start by whole cache lines moves the header
line to a different LLC slice (Fig. 10).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.mem.address import CACHE_LINE

#: The rte_mbuf struct is two cache lines (Fig. 9).
MBUF_STRUCT_SIZE = 128

#: DPDK's default fixed headroom (RTE_PKTMBUF_HEADROOM).
DEFAULT_HEADROOM = 128

#: DPDK's default data room.
DEFAULT_DATAROOM = 2048


class Mbuf:
    """One packet buffer.

    Args:
        pool: owning mempool (``None`` for standalone buffers in tests).
        index: element index within the pool.
        base_phys: physical address of the metadata struct (line
            aligned); the buffer region starts ``MBUF_STRUCT_SIZE``
            bytes later.
        buf_len: bytes in the buffer region (headroom + data room).
        default_headroom: headroom applied by :meth:`reset`.
    """

    __slots__ = (
        "pool",
        "index",
        "base_phys",
        "buf_len",
        "default_headroom",
        "headroom",
        "data_len",
        "pkt_len",
        "udata64",
        "next",
        "payload",
        "port",
        "queue",
        "rss_hash",
        "fcs_ok",
        "san",
    )

    def __init__(
        self,
        pool: Optional[object],
        index: int,
        base_phys: int,
        buf_len: int = DEFAULT_HEADROOM + DEFAULT_DATAROOM,
        default_headroom: int = DEFAULT_HEADROOM,
    ) -> None:
        if base_phys % CACHE_LINE:
            raise ValueError(f"mbuf base {base_phys:#x} must be line-aligned")
        if buf_len <= default_headroom:
            raise ValueError(
                f"buf_len {buf_len} leaves no data room after "
                f"{default_headroom} B of headroom"
            )
        self.pool = pool
        self.index = index
        self.base_phys = base_phys
        self.buf_len = buf_len
        self.default_headroom = default_headroom
        self.udata64 = 0
        self.next: Optional[Mbuf] = None
        self.payload: Optional[object] = None
        #: CacheSanitizer shadowing this mbuf's pool, or ``None`` — set
        #: by the owning Mempool when sanitizing is on.
        self.san: Optional[object] = None
        self.reset()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def buf_phys(self) -> int:
        """Physical address of the buffer region (headroom start)."""
        return self.base_phys + MBUF_STRUCT_SIZE

    @property
    def data_phys(self) -> int:
        """Physical address of the first data byte (the packet start)."""
        return self.buf_phys + self.headroom

    @property
    def tailroom(self) -> int:
        """Bytes left after the current data."""
        return self.buf_len - self.headroom - self.data_len

    @property
    def data_room(self) -> int:
        """Bytes available for data at the current headroom."""
        return self.buf_len - self.headroom

    def struct_lines(self) -> List[int]:
        """The two cache lines of the metadata struct."""
        return [self.base_phys, self.base_phys + CACHE_LINE]

    def data_lines(self) -> Iterator[int]:
        """Line addresses covering the current data segment."""
        if self.data_len == 0:
            return
        first = self.data_phys & ~(CACHE_LINE - 1)
        last = (self.data_phys + self.data_len - 1) & ~(CACHE_LINE - 1)
        for line in range(first, last + CACHE_LINE, CACHE_LINE):
            yield line

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Return to the freshly-allocated state (default headroom)."""
        self.headroom = self.default_headroom
        self.data_len = 0
        self.pkt_len = 0
        self.next = None
        self.payload = None
        self.port = 0
        self.queue = 0
        self.rss_hash = 0
        # Frame-check-sequence verdict from the NIC; fault injection
        # flips it to False and the PMD discards the frame on poll.
        self.fcs_ok = True

    def set_headroom(self, headroom: int) -> None:
        """Apply a (CacheDirector-chosen) headroom before DMA.

        Raises:
            ValueError: if the headroom is not line-aligned relative to
                the buffer start or exceeds the buffer.
        """
        if self.san is not None:
            self.san.check_mbuf_live(self, "set_headroom")
        if headroom < 0 or headroom >= self.buf_len:
            raise ValueError(
                f"headroom {headroom} outside buffer of {self.buf_len} B"
            )
        if (self.buf_phys + headroom) % CACHE_LINE:
            raise ValueError(
                f"headroom {headroom} does not line-align the data start"
            )
        self.headroom = headroom

    def append(self, length: int) -> int:
        """Extend the data segment; returns the physical write offset.

        Mirrors ``rte_pktmbuf_append``: fails (raises) when the data
        room cannot hold the extra bytes — the caller must then chain
        another mbuf.
        """
        if self.san is not None:
            self.san.check_mbuf_live(self, "append")
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if length > self.tailroom:
            raise ValueError(
                f"append of {length} B exceeds tailroom {self.tailroom}"
            )
        offset = self.data_phys + self.data_len
        self.data_len += length
        return offset

    def chain_length(self) -> int:
        """Number of mbufs in this chain (1 for unchained)."""
        count = 0
        node: Optional[Mbuf] = self
        while node is not None:
            count += 1
            node = node.next
        return count

    def segments(self) -> Iterator["Mbuf"]:
        """Iterate over the chain starting at this mbuf."""
        node: Optional[Mbuf] = self
        while node is not None:
            yield node
            node = node.next

    def __repr__(self) -> str:
        return (
            f"Mbuf(index={self.index}, base={self.base_phys:#x}, "
            f"headroom={self.headroom}, data_len={self.data_len}, "
            f"pkt_len={self.pkt_len})"
        )
