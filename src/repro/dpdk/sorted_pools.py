"""Application-level mbuf sorting — the paper's alternative design.

§4.2: "an application can allocate one large mempool containing mbufs.
Then, it can sort mbufs across multiple mempools, each of which is
dedicated to one CPU core, based on their LLC slice mappings" — the
FastClick-level alternative to driver-level dynamic headroom.  The
headroom stays fixed; instead, each core's RX queue is refilled only
with mbufs whose (fixed-headroom) data start already maps to that
core's slice, which also "eliminates the memory wastage" of
provisioning every mbuf for the worst-case dynamic headroom.

:func:`sort_mbufs_by_slice` performs the sort;
:class:`PerCorePools` is the resulting pool-per-core façade that a
NIC/driver can allocate RX buffers from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cachesim.hashfn import SliceHash
from repro.dpdk.mbuf import Mbuf
from repro.dpdk.mempool import Mempool, MempoolEmptyError


def slice_of_mbuf(mbuf: Mbuf, slice_hash: SliceHash) -> int:
    """Slice of the mbuf's first data line at its *current* headroom."""
    return slice_hash.slice_of(mbuf.data_phys)


def sort_mbufs_by_slice(
    pool: Mempool, slice_hash: SliceHash
) -> Dict[int, List[Mbuf]]:
    """Classify every mbuf of *pool* by the slice its data start maps to.

    The pool's elements are drained (allocated) and grouped; callers
    hand the groups to :class:`PerCorePools`.  With the XOR hash and
    line-aligned element strides the groups are near-balanced.
    """
    groups: Dict[int, List[Mbuf]] = {s: [] for s in range(slice_hash.n_slices)}
    drained: List[Mbuf] = []
    while True:
        mbuf = pool.try_alloc()
        if mbuf is None:
            break
        drained.append(mbuf)
    for mbuf in drained:
        groups[slice_of_mbuf(mbuf, slice_hash)].append(mbuf)
    return groups


@dataclass
class PerCorePools:
    """Per-core free lists of slice-matched mbufs.

    Args:
        core_to_slice: preferred slice per core.
        groups: slice → mbufs mapping from :func:`sort_mbufs_by_slice`.
        fallback: mbufs whose slice matches no core's preference (on
            machines with more slices than cores) — used when a core's
            matched list runs dry rather than dropping the packet.
    """

    core_to_slice: Sequence[int]
    groups: Dict[int, List[Mbuf]]
    fallback: List[Mbuf] = field(default_factory=list)
    fallback_allocations: int = 0

    def __post_init__(self) -> None:
        # Each slice's group belongs to the first core preferring it;
        # unclaimed groups feed the fallback list.
        self._free: Dict[int, List[Mbuf]] = {
            core: [] for core in range(len(self.core_to_slice))
        }
        claimed: Dict[int, int] = {}
        for core, target in enumerate(self.core_to_slice):
            if target not in claimed:
                claimed[target] = core
                self._free[core] = list(self.groups.get(target, ()))
        for slice_index, mbufs in self.groups.items():
            if slice_index not in claimed:
                self.fallback.extend(mbufs)

    def available(self, core: int) -> int:
        """Slice-matched mbufs currently free for *core*."""
        return len(self._free[core])

    def alloc(self, core: int) -> Mbuf:
        """Allocate an mbuf whose data line maps to *core*'s slice.

        Falls back to unmatched mbufs when the matched list is empty
        (losing the placement benefit for that packet, not the packet).
        """
        free = self._free[core]
        if free:
            mbuf = free.pop()
            mbuf.reset()
            return mbuf
        if self.fallback:
            self.fallback_allocations += 1
            mbuf = self.fallback.pop()
            mbuf.reset()
            return mbuf
        raise MempoolEmptyError(f"per-core pool for core {core} exhausted")

    def free(self, mbuf: Mbuf, slice_hash: SliceHash) -> None:
        """Return an mbuf to the list matching its data line's slice."""
        for segment in list(mbuf.segments()):
            segment.next = None
            target = slice_of_mbuf(segment, slice_hash)
            owner: Optional[int] = None
            for core, preferred in enumerate(self.core_to_slice):
                if preferred == target:
                    owner = core
                    break
            if owner is None:
                self.fallback.append(segment)
            else:
                self._free[owner].append(segment)
