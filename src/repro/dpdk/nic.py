"""The NIC model: DMA via DDIO, descriptor rings, CacheDirector hook.

The receive path reproduces the mechanics CacheDirector instruments
(§4.2, "Ensuring the appropriate headroom size"): just before a buffer
is handed to the NIC for DMA, the driver — knowing which core polls
this queue — sets the mbuf's headroom from the pre-computed per-slice
values in ``udata64``; the NIC then DMAs the frame to ``data_phys``,
and DDIO allocates those lines into the LLC.  With CacheDirector, the
first (header) line of every packet therefore lands in the polling
core's closest slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cachesim.ddio import DdioEngine
from repro.core.cache_director import CacheDirector
from repro.dpdk.mbuf import Mbuf
from repro.dpdk.mempool import Mempool
from repro.dpdk.ring import Ring
from repro.faults.plan import FaultClock
from repro.mem.address import CACHE_LINE
from repro.mem.allocator import ContiguousAllocator


@dataclass
class NicStats:
    """Packet counters for one port."""

    rx_packets: int = 0
    rx_bytes: int = 0
    rx_drops_no_mbuf: int = 0
    rx_drops_ring_full: int = 0
    rx_drops_backpressure: int = 0
    rx_drops_injected: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_drops_no_mbuf = 0
        self.rx_drops_ring_full = 0
        self.rx_drops_backpressure = 0
        self.rx_drops_injected = 0
        self.tx_packets = 0
        self.tx_bytes = 0


class Nic:
    """One port with per-queue RX rings and descriptor arrays.

    Args:
        n_queues: RX/TX queue pairs.
        mempool: pool backing RX buffers.
        ddio: DMA engine into the LLC.
        allocator: used to place the descriptor arrays in memory (the
            NIC writes completion descriptors that the PMD polls).
        queue_to_core: which core polls each queue (identity when
            omitted) — CacheDirector needs it to pick target slices.
        cache_director: when present, RX buffers get dynamic headrooms.
        rx_ring_size: descriptor-ring depth per queue.
    """

    def __init__(
        self,
        n_queues: int,
        mempool: Mempool,
        ddio: DdioEngine,
        allocator: ContiguousAllocator,
        queue_to_core: Optional[Sequence[int]] = None,
        cache_director: Optional[CacheDirector] = None,
        rx_ring_size: int = 1024,
    ) -> None:
        if n_queues <= 0:
            raise ValueError(f"n_queues must be positive, got {n_queues}")
        self.n_queues = n_queues
        self.mempool = mempool
        self.ddio = ddio
        self.cache_director = cache_director
        self.queue_to_core = (
            list(queue_to_core) if queue_to_core is not None else list(range(n_queues))
        )
        if len(self.queue_to_core) != n_queues:
            raise ValueError("queue_to_core must name one core per queue")
        self.rx_rings: List[Ring[Mbuf]] = [
            Ring(rx_ring_size, name=f"rxq{q}") for q in range(n_queues)
        ]
        # One completion-descriptor cache line per ring slot, per queue.
        self._descriptor_base: List[int] = []
        self._descriptor_slot: List[int] = [0] * n_queues
        for queue in range(n_queues):
            virt = allocator.allocate(rx_ring_size * CACHE_LINE, align=CACHE_LINE)
            self._descriptor_base.append(allocator.buffer.virt_to_phys(virt))
        self.rx_ring_size = rx_ring_size
        self.stats = NicStats()
        #: Fault clock injecting wire-side faults, or ``None``.
        self.faults: Optional[FaultClock] = None
        if cache_director is not None:
            for mbuf in mempool.mbufs:
                mbuf.udata64 = cache_director.precompute_udata(mbuf.buf_phys)

    # ------------------------------------------------------------------
    # Wire-side (what the link makes the NIC do)
    # ------------------------------------------------------------------

    def descriptor_line(self, queue: int, slot: int) -> int:
        """Physical address of one completion descriptor."""
        return self._descriptor_base[queue] + (slot % self.rx_ring_size) * CACHE_LINE

    def deliver(self, payload: object, length: int, queue: int) -> Optional[Mbuf]:
        """A frame arrives from the wire into *queue*.

        Allocates mbuf(s), applies the (possibly dynamic) headroom,
        DMAs the frame and a completion descriptor through DDIO, and
        posts the chain to the RX ring.  Returns the head mbuf, or
        ``None`` when the frame was dropped (injected wire loss, pool
        empty, backpressure shed, or ring full).
        """
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        clock = self.faults
        if clock is not None and clock.fires("nic.drop", clock.rates.nic_drop):
            # Frame lost on the wire: it never reaches the DuT.
            self.stats.rx_drops_injected += 1
            clock.count("nic.injected_drops")
            return None
        ring = self.rx_rings[queue]
        if ring.full:
            self.stats.rx_drops_ring_full += 1
            return None
        if self.mempool.under_pressure:
            # Watermark backpressure: shed at the NIC while free
            # elements remain, instead of exhausting the pool and
            # failing mid-chain.
            self.stats.rx_drops_backpressure += 1
            if clock is not None:
                clock.count("nic.backpressure_sheds")
            return None
        head = self.mempool.try_alloc()
        if head is None:
            self.stats.rx_drops_no_mbuf += 1
            if clock is not None:
                clock.count("nic.drops_no_mbuf")
            return None
        if self.cache_director is not None:
            core = self.queue_to_core[queue]
            head.set_headroom(
                self.cache_director.headroom_for_core(head.udata64, core)
            )
        head.pkt_len = length
        head.payload = payload
        head.queue = queue
        # Fill the chain: the head takes what fits in its (possibly
        # shrunken) data room; the rest goes to chained mbufs (§4.2,
        # "Dynamic headroom" — oversized headrooms can force chaining).
        # Intentional scalar reference path: one frame at a time with
        # interleaved DMA is the per-packet latency contract;
        # deliver_burst is the batched twin (one flattened DDIO pass).
        remaining = length
        segment = head
        while True:
            take = min(remaining, segment.data_room)
            segment.append(take)  # deepcheck: ignore[PERF003]
            self.ddio.dma_write(segment.data_phys, take)  # deepcheck: ignore[PERF001]
            remaining -= take
            if remaining == 0:
                break
            extra = self.mempool.try_alloc()  # deepcheck: ignore[PERF001]
            if extra is None:
                self.stats.rx_drops_no_mbuf += 1
                self.mempool.free(head)  # deepcheck: ignore[PERF001]
                return None
            extra.pkt_len = 0
            segment.next = extra
            segment = extra
        if clock is not None and clock.fires(
            "nic.corrupt", clock.rates.nic_corrupt
        ):
            # Frame delivered with a bad FCS; the PMD discards it.
            head.fcs_ok = False
            clock.count("nic.injected_corruptions")
        # Completion descriptor write (the line the PMD polls).
        slot = self._descriptor_slot[queue]
        self._descriptor_slot[queue] = (slot + 1) % self.rx_ring_size
        self.ddio.dma_write(self.descriptor_line(queue, slot), CACHE_LINE)
        ring.enqueue(head)
        self.stats.rx_packets += 1
        self.stats.rx_bytes += length
        return head

    def deliver_burst(
        self,
        payloads: Sequence[object],
        lengths: Sequence[int],
        queues: Sequence[int],
    ) -> List[Optional[Mbuf]]:
        """Bulk :meth:`deliver`: the burst's DDIO spans flush in one pass.

        Runs the real per-frame control path (drops, fault draws,
        allocation, ring posting — identical decisions and stats), but
        defers every DMA span into one recorded stream that is charged
        in a single flattened engine pass afterwards.  Because
        ``deliver`` issues no demand accesses, deferring the DMA keeps
        the span order — and therefore every cache outcome —
        bit-identical to sequential ``deliver`` calls.

        With a :class:`CacheSanitizer` installed the spans are not
        deferred (its checks must interleave with the fills); the call
        then simply loops ``deliver``.
        """
        if not (len(payloads) == len(lengths) == len(queues)):
            raise ValueError("payloads, lengths and queues must align")
        if self.ddio.hierarchy.sanitizer is not None:
            return [
                self.deliver(p, ln, q)
                for p, ln, q in zip(payloads, lengths, queues)
            ]
        from repro.net.dataplane import OpRecorder

        recorder = OpRecorder()
        ddio = self.ddio
        with recorder.capture(ddio.hierarchy, [self]):
            heads = [
                self.deliver(p, ln, q)
                for p, ln, q in zip(payloads, lengths, queues)
            ]
        recorder.replay(ddio.hierarchy, [ddio])
        return heads

    def transmit(self, mbuf: Mbuf) -> None:
        """Send a packet chain: DMA-read the data, free the buffers."""
        dma_read = self.ddio.dma_read
        segment = mbuf
        while segment is not None:
            if segment.data_len:
                dma_read(segment.data_phys, segment.data_len)
            segment = segment.next
        self.stats.tx_packets += 1
        self.stats.tx_bytes += mbuf.pkt_len
        self.mempool.free(mbuf)

    def __repr__(self) -> str:
        return (
            f"Nic(n_queues={self.n_queues}, rx_ring_size={self.rx_ring_size}, "
            f"cache_director={'on' if self.cache_director else 'off'})"
        )
