"""Poll-mode driver: the core-side RX/TX path with cycle accounting.

Every cache line the driver touches is charged to the polling core
through the simulated hierarchy — this is where CacheDirector's placed
header line pays off (or doesn't): the PMD and the network functions
behind it read the packet through the same hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.cachesim.hierarchy import CacheHierarchy
from repro.dpdk.mbuf import Mbuf
from repro.dpdk.mbuf_batch import MbufBatch
from repro.dpdk.nic import Nic
from repro.mem.address import CACHE_LINE


@dataclass
class PmdCosts:
    """Fixed instruction costs of the driver paths (cycles).

    These model the non-memory work (descriptor parsing, refill
    bookkeeping, function-call overhead) that the cache simulator does
    not see.
    """

    rx_per_burst: int = 30
    rx_per_packet: int = 25
    tx_per_burst: int = 20
    tx_per_packet: int = 20


class PollModeDriver:
    """RX/TX bursts against one NIC, charged to the polling core."""

    def __init__(
        self,
        nic: Nic,
        hierarchy: CacheHierarchy,
        costs: PmdCosts | None = None,
    ) -> None:
        self.nic = nic
        self.hierarchy = hierarchy
        self.costs = costs if costs is not None else PmdCosts()
        #: Frames discarded at the FCS check (injected corruption).
        self.fcs_discards = 0

    def rx_burst(self, queue: int, max_packets: int = 32) -> Tuple[List[Mbuf], int]:
        """Poll *queue*; returns ``(mbufs, cycles)``.

        Per burst the driver reads the completion descriptor line; per
        packet it reads the mbuf metadata struct (two lines).  An empty
        poll costs one descriptor read — the price of spinning.
        Frames the NIC flagged with a bad FCS are freed back to the
        pool here (their struct reads are still paid), and an injected
        poll stall inflates the burst by the plan's stall cycles.
        """
        core = self.nic.queue_to_core[queue]
        hierarchy = self.hierarchy
        ring = self.nic.rx_rings[queue]
        clock = self.nic.faults
        cycles = self.costs.rx_per_burst
        if clock is not None and clock.fires(
            "pmd.stall", clock.rates.nic_stall
        ):
            cycles += clock.rates.nic_stall_cycles
            clock.count("pmd.injected_stalls")
        # Poll the next completion descriptor.  The model charges the
        # head-of-ring line (slot 0) on every poll — empty or not —
        # rather than tracking a consumer index: the descriptor array
        # is a homogeneous DDIO-written region, so which slot is read
        # does not change the placement the experiments measure, and a
        # constant keeps the charge identical across runs.
        slot = 0
        cycles += hierarchy.read(core, self.nic.descriptor_line(queue, slot))
        polled = ring.dequeue_burst(max_packets) if len(ring) else []
        mbufs: List[Mbuf] = []
        for mbuf in polled:
            cycles += self.costs.rx_per_packet
            # Intentional scalar reference path: the per-mbuf loop
            # mirrors DPDK's rx_burst semantics line by line; the
            # vectorized fast path lives in FastEngine.access_batch.
            for line in mbuf.struct_lines():  # deepcheck: ignore[PERF001]
                cycles += hierarchy.read(core, line)  # deepcheck: ignore[PERF005]
            if not mbuf.fcs_ok:
                self.nic.mempool.free(mbuf)
                self.fcs_discards += 1
                if clock is not None:
                    clock.count("pmd.fcs_discards")
                continue
            # Reference semantics: delivery order must match the ring.
            mbufs.append(mbuf)  # deepcheck: ignore[PERF003]
        return mbufs, cycles

    def rx_burst_batch(
        self, queue: int, max_packets: int = 32
    ) -> Tuple[MbufBatch, int]:
        """Batched :meth:`rx_burst`: one ``access_batch`` per burst.

        Charges the descriptor line and every polled mbuf's two struct
        lines through a single
        :meth:`~repro.cachesim.hierarchy.CacheHierarchy.access_batch`
        call, in the scalar loop's exact access order (descriptor
        first, then struct lines packet-major) — so cache state and
        total cycles match :meth:`rx_burst` on the same ring content.
        Frames with a bad FCS are freed after charging; frees never
        touch the hierarchy, so the deferred order changes nothing.
        """
        core = self.nic.queue_to_core[queue]
        ring = self.nic.rx_rings[queue]
        clock = self.nic.faults
        cycles = self.costs.rx_per_burst
        if clock is not None and clock.fires(
            "pmd.stall", clock.rates.nic_stall
        ):
            cycles += clock.rates.nic_stall_cycles
            clock.count("pmd.injected_stalls")
        polled = ring.dequeue_burst(max_packets) if len(ring) else []
        batch = MbufBatch.from_mbufs(polled)
        addresses = np.empty(1 + 2 * len(polled), dtype=np.uint64)
        addresses[0] = self.nic.descriptor_line(queue, 0)
        if polled:
            addresses[1:] = batch.struct_line_addresses()
        result = self.hierarchy.access_batch(addresses, core=core)
        cycles += int(result.cycles.sum())
        cycles += self.costs.rx_per_packet * len(polled)
        fcs = batch.records["fcs_ok"]
        if not fcs.all():
            for keep, mbuf in zip(fcs.tolist(), batch.mbufs):
                if keep:
                    continue
                self.nic.mempool.free(mbuf)
                self.fcs_discards += 1
                if clock is not None:
                    clock.count("pmd.fcs_discards")
            batch = batch.select(fcs)
        return batch, cycles

    def tx_burst_batch(
        self, queue: int, mbufs: Union[MbufBatch, Sequence[Mbuf]]
    ) -> int:
        """Batched :meth:`tx_burst`: struct writes in one ``access_batch``.

        All TX descriptor-fill writes (one struct line per mbuf) are
        charged in a single batch, then the chains are handed to the
        NIC for DMA-read and free.  For a one-packet burst this is
        op-for-op the scalar path; for larger bursts the store/DMA
        interleaving is coalesced (batched semantics) — the end-to-end
        bit-identical path is ``DutEnvironment.service_cycles_batch``,
        which replays the scalar interleaving exactly.
        """
        batch = mbufs if isinstance(mbufs, MbufBatch) else MbufBatch.from_mbufs(mbufs)
        core = self.nic.queue_to_core[queue]
        cycles = self.costs.tx_per_burst
        cycles += self.costs.tx_per_packet * len(batch)
        result = self.hierarchy.access_batch(
            batch.records["base_phys"], kinds=True, core=core
        )
        cycles += int(result.cycles.sum())
        for mbuf in batch.mbufs:
            self.nic.transmit(mbuf)
        return cycles

    def tx_burst(self, queue: int, mbufs: Sequence[Mbuf]) -> int:
        """Transmit *mbufs*; returns cycles spent by the core.

        The core writes each mbuf's metadata (to fill the TX
        descriptor) and hands the chain to the NIC, which DMA-reads
        the data and frees the buffers.
        """
        core = self.nic.queue_to_core[queue]
        hierarchy = self.hierarchy
        cycles = self.costs.tx_per_burst
        for mbuf in mbufs:
            cycles += self.costs.tx_per_packet
            # Intentional scalar reference path (see rx_burst).
            cycles += hierarchy.write(core, mbuf.base_phys, CACHE_LINE)  # deepcheck: ignore[PERF005]
            self.nic.transmit(mbuf)  # deepcheck: ignore[PERF001]
        return cycles
