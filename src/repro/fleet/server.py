"""One fleet server: a full single-machine simulation with tenant budgets.

Each server instantiates the existing single-machine building blocks —
a :class:`~repro.cachesim.hierarchy.CacheHierarchy` built from its
:class:`~repro.cachesim.machines.MachineSpec`, a
:class:`~repro.core.slice_aware.SliceAwareContext`, and one
slice-aware :class:`~repro.kvs.store.KvsStore` +
:class:`~repro.kvs.server.KvsServer` pair **per tenant** — and adds
the multi-tenant enforcement the paper's §7 sketches:

* **CAT way budget per tenant**: each tenant gets its own CLOS with a
  contiguous way mask sized ``llc_ways // n_tenants`` (the
  ``multitenant`` experiment's "cat" policy, now per server).
* **Slice budget per tenant**: each tenant's values are slice-aware on
  its serving core's preferred slice, so tenants also partition
  spatially (the "slice" policy).
* **DDIO budget per server**: the NIC's DDIO ways can be clamped below
  the spec default, bounding how much of every tenant's LLC budget
  I/O traffic can churn.

Fleets mix the paper's two testbed machines: even server ids are
Haswell (E5-2667 v3), odd ids Skylake (Gold 6134).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cachesim.cat import CatController
from repro.cachesim.machines import (
    HASWELL_E5_2667V3,
    SKYLAKE_GOLD_6134,
    MachineSpec,
    build_hierarchy,
)
from repro.core.slice_aware import SliceAwareContext
from repro.kvs.server import KvsServer
from repro.kvs.store import KvsStore

#: The fleet's machine mix, cycled by server id.
MACHINE_MIX = (HASWELL_E5_2667V3, SKYLAKE_GOLD_6134)


def spec_for_server(server_id: int) -> MachineSpec:
    """The machine spec a server id maps to (alternating mix)."""
    if server_id < 0:
        raise ValueError(f"server_id must be non-negative, got {server_id}")
    return MACHINE_MIX[server_id % len(MACHINE_MIX)]


class FleetServer:
    """One simulated server hosting every tenant's KVS shard.

    Args:
        server_id: fleet-wide id (also selects the machine spec).
        n_tenants: tenants sharing this server.
        n_keys: per-tenant key-space size.
        seed: seed for the hierarchy/layout (derived per server by the
            cluster so servers are decorrelated).
        tenant_ways: CAT ways per tenant (default: even split).
        ddio_ways: per-server DDIO way budget (default: spec's).
        engine: cache-access engine (``"fast"``/``"reference"``).
        spec: override the machine spec (default: the fleet mix).

    Every tenant serves from its own core (``tenant % n_cores``) with
    its own CLOS, so CAT masks — and therefore eviction pressure — are
    enforced by the underlying cache simulation, not bookkeeping.
    """

    def __init__(
        self,
        server_id: int,
        n_tenants: int,
        n_keys: int,
        seed: int = 0,
        tenant_ways: Optional[int] = None,
        ddio_ways: Optional[int] = None,
        engine: str = "fast",
        spec: Optional[MachineSpec] = None,
    ) -> None:
        if n_tenants <= 0:
            raise ValueError(f"n_tenants must be positive, got {n_tenants}")
        self.server_id = server_id
        self.name = f"server-{server_id}"
        self.spec = spec if spec is not None else spec_for_server(server_id)
        self.n_tenants = n_tenants
        if tenant_ways is None:
            tenant_ways = max(1, self.spec.llc_ways // n_tenants)
        if not 1 <= tenant_ways <= self.spec.llc_ways:
            raise ValueError(
                f"tenant_ways must be in [1, {self.spec.llc_ways}], "
                f"got {tenant_ways}"
            )
        self.tenant_ways = tenant_ways
        self.tenant_cores: List[int] = [
            t % self.spec.n_cores for t in range(n_tenants)
        ]
        self._n_keys = n_keys
        self._seed = seed
        self._ddio_ways = ddio_ways
        self._engine = engine
        self._provision()
        #: Simulated time (cycles) this server is busy until.
        self.busy_until_cycles = 0.0
        #: Chaos state: a killed server leaves the ring permanently —
        #: unless the plan arms recovery, in which case it reboots
        #: cold after ``down_until_epoch``.
        self.alive = True
        self.killed_at_request: Optional[int] = None
        self.served = 0
        #: Self-healing state (epoch-indexed; -1 = inactive).
        self.stalled_until_epoch = -1
        self.down_until_epoch = -1
        self.reboots = 0
        self.stall_events = 0
        self.rebooted_at_request: Optional[int] = None

    def _provision(self) -> None:
        """Build the machine: hierarchy, CAT budgets, per-tenant KVS.

        Runs at construction and again on :meth:`reboot` — a recovered
        server gets brand-new hierarchy/store state, so its caches are
        genuinely cold and the post-rejoin re-warm is real simulated
        work, not bookkeeping.
        """
        cat = CatController(self.spec.llc_ways, self.spec.n_cores)
        # Contiguous per-tenant way masks; when budgets exceed the
        # cache (many tenants), masks wrap and overlap deterministically
        # — oversubscription is then visible as real contention.
        span = self.spec.llc_ways - self.tenant_ways + 1
        for tenant in range(self.n_tenants):
            low = (tenant * self.tenant_ways) % span
            cat.define_clos(
                tenant + 1, ((1 << self.tenant_ways) - 1) << low
            )
            cat.assign_core(self.tenant_cores[tenant], tenant + 1)
        hierarchy = build_hierarchy(
            self.spec, ddio_ways=self._ddio_ways, cat=cat, seed=self._seed
        )
        self.context = SliceAwareContext(
            self.spec, hierarchy=hierarchy, seed=self._seed
        )
        self._tenants: List[KvsServer] = []
        for tenant in range(self.n_tenants):
            store = KvsStore(
                self.context,
                core=self.tenant_cores[tenant],
                n_keys=self._n_keys,
                slice_aware=True,
            )
            self._tenants.append(
                KvsServer(
                    self.context,
                    store,
                    core=self.tenant_cores[tenant],
                    engine=self._engine,
                )
            )

    def serve(self, tenant: int, key: int, is_get: bool) -> int:
        """Serve one request for *tenant*; returns core cycles spent."""
        cycles = self._tenants[tenant].serve_one(key, is_get)
        self.served += 1
        return cycles

    def serve_batch(
        self,
        tenants: Sequence[int],
        keys: Sequence[int],
        is_get: Sequence[bool],
    ) -> np.ndarray:
        """Serve many requests (arrival order) in one charging pass.

        Control pass: the real :meth:`KvsServer.serve_one` runs per
        request with the server's hierarchy and every tenant's DDIO
        engine swapped for an :class:`~repro.net.dataplane.OpRecorder`
        — RX buffer rotation, request counters and fixed costs evolve
        exactly as in :meth:`serve`.  Charging pass: the interleaved
        op stream replays in one flattened engine pass, with each DMA
        span routed back to its owning tenant's engine
        (``multi_ddio``), so per-request cycles, cache state and every
        per-tenant DDIO counter match the scalar loop bit for bit.
        """
        from repro.net.dataplane import OpRecorder, segment_sums

        n = len(tenants)
        if not (n == len(keys) == len(is_get)):
            raise ValueError("tenants/keys/is_get must have equal length")
        recorder = OpRecorder()
        bounds = np.zeros(n + 1, dtype=np.int64)
        fixed = np.zeros(n, dtype=np.int64)
        servers = self._tenants
        hierarchy = self.context.hierarchy
        with recorder.capture(hierarchy, servers):
            for i in range(n):
                bounds[i] = recorder.n_ops
                # The record pass must run the real per-request control
                # path (index probes, fault draws); only the cache
                # charging below is batched.
                fixed[i] = servers[int(tenants[i])].serve_one(  # deepcheck: ignore[PERF001]
                    int(keys[i]), bool(is_get[i])
                )
            bounds[n] = recorder.n_ops
        per_op = recorder.replay(
            hierarchy, [t.ddio for t in servers], multi_ddio=True
        )
        self.served += n
        return fixed + segment_sums(per_op, bounds)

    def kill(self, request_index: int) -> None:
        """Mark this server dead (chaos server-kill fault)."""
        self.alive = False
        self.killed_at_request = request_index
        self.stalled_until_epoch = -1

    def stall(self, until_epoch: int) -> None:
        """Turn gray: alive but slow until *until_epoch* (exclusive)."""
        self.stalled_until_epoch = until_epoch
        self.stall_events += 1

    def stalled_at(self, epoch: int) -> bool:
        """Whether this server is stalled during *epoch*."""
        return self.alive and epoch < self.stalled_until_epoch

    def reboot(self, request_index: int) -> None:
        """Recover from a kill: rejoin service with cold caches.

        Re-provisions the hierarchy and every tenant's KVS from
        scratch (same seed, so the layout is deterministic) — the
        first requests after recovery pay genuine cold-cache misses
        until the working set re-warms.
        """
        self._provision()
        self.alive = True
        self.killed_at_request = None
        self.busy_until_cycles = 0.0
        self.stalled_until_epoch = -1
        self.down_until_epoch = -1
        self.reboots += 1
        self.rebooted_at_request = request_index

    def latency_us(self, cycles: float) -> float:
        """Convert cycles on this server's clock to microseconds."""
        return cycles / (self.spec.freq_ghz * 1e3)

    def stats(self) -> Dict[str, object]:
        """JSON-ready per-server summary.

        Self-healing keys (``reboots``, ``stalls``) appear only when
        non-zero so runs that never arm those faults keep the exact
        payload the pre-self-healing goldens embed.
        """
        data: Dict[str, object] = {
            "name": self.name,
            "machine": self.spec.name,
            "alive": self.alive,
            "served": self.served,
            "tenant_ways": self.tenant_ways,
            "killed_at_request": self.killed_at_request,
        }
        if self.reboots:
            data["reboots"] = self.reboots
        if self.stall_events:
            data["stalls"] = self.stall_events
        return data

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"FleetServer({self.name}, {self.spec.name}, {state})"
