"""Self-healing fleet: replication, detection, recovery, admission.

:func:`run_healing_cell` is the self-healing counterpart of the legacy
loop in :mod:`repro.fleet.cluster`.  It adds four mechanisms on top of
the same servers, ring and traffic stream:

* **R-way replication** — every ``(tenant, key)`` pair maps to the
  ``replication`` first *distinct* servers clockwise from its ring
  slot (:meth:`~repro.fleet.ring.ConsistentHashRing.successors_at`).
  Replica sets are computed on the **full static ring** so they nest
  across R (``R`` replicas are a prefix of ``R+1``'s) and stay fixed
  as membership beliefs change; failover walks the set in order.
* **Transient failures + recovery** — whole-server kills and gray
  stalls come from a pre-drawn :class:`~repro.faults.streams.OutageSchedule`
  (nested sampling: fire sets are intensity-supersets).  A kill with a
  recovery delay reboots the server cold after the delay — the
  hierarchy and every tenant's KVS are re-provisioned, so the rejoin
  re-warm is genuine simulated work.  Unlike the legacy loop there is
  **no last-server kill guard**: a guard would break the monotone
  lost-key curves (whether a server is "last alive" depends on which
  other kills fired, so guarded fire sets stop nesting), and total
  outage is a well-defined measured state — requests simply count as
  unavailable.
* **Heartbeat failure detection** — a deterministic phi-accrual-style
  detector: every alive, non-stalled server beats once per epoch;
  ``phi = elapsed / (mean_gap * ln 10)`` over a sliding window of
  observed gaps, and a server whose phi exceeds the threshold is
  *suspected* (clients stop trying it, so gray servers shed traffic).
  Stalled servers beat late, which inflates the window mean and slows
  future detection — the classic gray-failure cost, made measurable.
  A suspected server rejoins after ``rejoin_heartbeats`` consecutive
  on-time beats.
* **Admission control** — a per-tenant token bucket over arrival time
  plus a per-server queue-lag watermark with hysteresis, both
  evaluated only at epoch boundaries / from arrival times so decisions
  never depend on cache timing (which is what keeps the scalar and
  batched dataplanes bit-identical).

Determinism contract: all randomness is the outage schedule, drawn
upfront through the plan's :class:`~repro.faults.plan.FaultClock`
per-site streams; everything else is a pure function of the arrival
stream and epoch-boundary state.  A persisted plan replays bit-exactly
and ``run_fleet_cell(healing=...)`` with a trivial config routes to
the legacy loop, byte-identical with every pre-healing golden.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, fields
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults.plan import FaultClock, resolve_plan
from repro.faults.streams import OutageSchedule, draw_outage_schedule
from repro.fleet.ring import ConsistentHashRing, key_positions
from repro.fleet.server import FleetServer
from repro.fleet.traffic import REFERENCE_FREQ_GHZ, FleetTrafficGenerator
from repro.stats.percentiles import LatencySummary, summarize_latencies

_LN10 = math.log(10.0)


@dataclass(frozen=True)
class SelfHealingConfig:
    """Knobs for the self-healing serving loop.

    The defaults are all-off: ``replication=1``, detector disabled, no
    admission control.  Such a *trivial* config makes
    :func:`resolve_healing` return ``None``, which routes
    ``run_fleet_cell`` to the legacy loop — so passing a default
    config is byte-identical to passing no config at all.
    """

    #: Distinct servers per key (R).  1 = no replication.
    replication: int = 1
    #: Arm the heartbeat failure detector.  Off = perfect knowledge
    #: (clients skip dead servers instantly, no detection lag).
    detector_enabled: bool = False
    #: Suspicion threshold on phi; ~0.8 suspects after ~2 missed beats.
    phi_threshold: float = 0.8
    #: Sliding window of observed heartbeat gaps (epochs).
    heartbeat_window: int = 8
    #: Consecutive on-time beats before a suspect rejoins.
    rejoin_heartbeats: int = 2
    #: Client-side cost (cycles) of timing out on a believed-up but
    #: dead replica before trying the next one.
    failover_timeout_cycles: float = 30_000.0
    #: Per-tenant token-bucket refill rate; ``None`` disables the
    #: bucket.
    admit_tenant_mrps: Optional[float] = None
    #: Token-bucket depth (burst allowance), in requests.
    admit_bucket_depth: float = 64.0
    #: Queue-lag watermark (µs) above which a server sheds new
    #: requests; ``None`` disables shedding.  Must be set together
    #: with :attr:`shed_lag_low_us`.
    shed_lag_high_us: Optional[float] = None
    #: Queue-lag watermark (µs) below which a shedding server resumes
    #: (hysteresis; evaluated at epoch boundaries only).
    shed_lag_low_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.phi_threshold <= 0:
            raise ValueError(
                f"phi_threshold must be positive, got {self.phi_threshold}"
            )
        if self.heartbeat_window < 1:
            raise ValueError(
                f"heartbeat_window must be >= 1, got {self.heartbeat_window}"
            )
        if self.rejoin_heartbeats < 1:
            raise ValueError(
                f"rejoin_heartbeats must be >= 1, got {self.rejoin_heartbeats}"
            )
        if self.failover_timeout_cycles < 0:
            raise ValueError("failover_timeout_cycles must be >= 0")
        if self.admit_tenant_mrps is not None and self.admit_tenant_mrps <= 0:
            raise ValueError("admit_tenant_mrps must be positive when set")
        if self.admit_bucket_depth <= 0:
            raise ValueError("admit_bucket_depth must be positive")
        if (self.shed_lag_high_us is None) != (self.shed_lag_low_us is None):
            raise ValueError(
                "shed_lag_high_us and shed_lag_low_us must be set together"
            )
        if self.shed_lag_high_us is not None:
            low = self.shed_lag_low_us
            assert low is not None
            if not 0 <= low <= self.shed_lag_high_us:
                raise ValueError(
                    "need 0 <= shed_lag_low_us <= shed_lag_high_us, got "
                    f"{low}/{self.shed_lag_high_us}"
                )

    @property
    def is_trivial(self) -> bool:
        """Whether this config changes nothing versus the legacy loop."""
        return (
            self.replication == 1
            and not self.detector_enabled
            and self.admit_tenant_mrps is None
            and self.shed_lag_high_us is None
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (persisted with experiment artifacts)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SelfHealingConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown self-healing config keys: {sorted(unknown)}"
            )
        return cls(**data)


def resolve_healing(healing: Optional[object]) -> Optional[SelfHealingConfig]:
    """Normalise a healing argument; trivial configs become ``None``.

    Accepts ``None``, a :class:`SelfHealingConfig`, or its dict form.
    Returning ``None`` for trivial configs is what guarantees the
    zero-feature path is *the legacy code*, not a re-implementation
    that merely tries to match it.
    """
    if healing is None:
        return None
    if isinstance(healing, SelfHealingConfig):
        config = healing
    elif isinstance(healing, dict):
        config = SelfHealingConfig.from_dict(healing)
    else:
        raise TypeError(
            f"healing must be SelfHealingConfig, dict or None, "
            f"got {type(healing).__name__}"
        )
    return None if config.is_trivial else config


class HeartbeatDetector:
    """Deterministic phi-accrual-style failure detector.

    One heartbeat per alive, non-stalled server per epoch.  For a
    server that has not beaten for ``elapsed`` epochs with a windowed
    mean observed gap ``g``, the suspicion level is
    ``phi = elapsed / (g * ln 10)`` — the shape of phi-accrual with an
    exponential inter-arrival model, with the window mean standing in
    for the fitted scale so the detector is a pure function of the
    beat history (no clocks, no RNG).
    """

    def __init__(self, n_servers: int, config: SelfHealingConfig) -> None:
        self.config = config
        self.n_servers = n_servers
        self.believed_down: Set[int] = set()
        self._last_beat = [0] * n_servers
        self._streak = [0] * n_servers
        self._gaps: List[Deque[float]] = [
            deque(maxlen=config.heartbeat_window) for _ in range(n_servers)
        ]

    def mean_gap(self, server_id: int) -> float:
        """Windowed mean observed heartbeat gap (1.0 before any beat)."""
        window = self._gaps[server_id]
        if not window:
            return 1.0
        return sum(window) / len(window)

    def phi(self, server_id: int, epoch: int) -> float:
        """Current suspicion level for one server."""
        elapsed = epoch - self._last_beat[server_id]
        return elapsed / (self.mean_gap(server_id) * _LN10)

    def observe_epoch(
        self, epoch: int, beating: Sequence[bool]
    ) -> Tuple[List[int], List[int]]:
        """Process one epoch boundary's heartbeats.

        ``beating[s]`` says whether server *s* delivered an on-schedule
        beat this epoch (alive and not stalled).  Returns the ids
        newly suspected and newly rejoined, in id order.
        """
        suspected: List[int] = []
        rejoined: List[int] = []
        for sid in range(self.n_servers):
            if beating[sid]:
                gap = float(epoch - self._last_beat[sid])
                if gap > 0:
                    # Late beats (gap > 1) enter the window too: a gray
                    # server's slow beats inflate the mean and slow
                    # *future* detection — the gray-failure cost.
                    self._gaps[sid].append(gap)
                    self._last_beat[sid] = epoch
                    self._streak[sid] = (
                        self._streak[sid] + 1 if gap <= 1.0 else 1
                    )
                if (
                    sid in self.believed_down
                    and self._streak[sid] >= self.config.rejoin_heartbeats
                ):
                    self.believed_down.discard(sid)
                    rejoined.append(sid)
                continue
            self._streak[sid] = 0
            if sid in self.believed_down:
                continue
            if self.phi(sid, epoch) > self.config.phi_threshold:
                self.believed_down.add(sid)
                suspected.append(sid)
        return suspected, rejoined


class TokenBucketAdmission:
    """Per-tenant token bucket over *arrival* time (timing-free).

    Refill is proportional to inter-arrival cycles at the reference
    clock, so admit/reject decisions are a pure function of the
    traffic stream — identical under both dataplanes by construction.
    """

    def __init__(
        self,
        n_tenants: int,
        rate_mrps: float,
        depth: float,
        freq_ghz: float = REFERENCE_FREQ_GHZ,
    ) -> None:
        if rate_mrps <= 0:
            raise ValueError(f"rate_mrps must be positive, got {rate_mrps}")
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        #: Tokens per reference cycle (mrps = 1e6 req/s; GHz = 1e9 c/s).
        self.rate_per_cycle = rate_mrps / (freq_ghz * 1e3)
        self.depth = depth
        self._tokens = [depth] * n_tenants
        self._last_arrival = [0.0] * n_tenants

    def admit(self, tenant: int, arrival_cycles: float) -> bool:
        """Consume one token for *tenant* if available."""
        gained = (arrival_cycles - self._last_arrival[tenant]) * (
            self.rate_per_cycle
        )
        self._last_arrival[tenant] = arrival_cycles
        tokens = min(self.depth, self._tokens[tenant] + gained)
        if tokens >= 1.0:
            self._tokens[tenant] = tokens - 1.0
            return True
        self._tokens[tenant] = tokens
        return False


def lost_key_fraction(
    ring: ConsistentHashRing,
    alive: Sequence[bool],
    n_tenants: int,
    n_keys: int,
    replication: int,
) -> float:
    """Fraction of ``(tenant, key)`` pairs with every replica dead.

    Exact (full key-space enumeration), vectorised per unique ring
    slot.  ``alive`` is indexed like :attr:`ring.nodes`.  Because
    replica sets nest in R and dead sets nest in kill intensity (for
    permanent kills under nested sampling), the result is monotone
    non-increasing in ``replication`` and non-decreasing in intensity.
    """
    if len(alive) != len(ring):
        raise ValueError(
            f"alive has {len(alive)} entries for a {len(ring)}-node ring"
        )
    tenants = np.repeat(np.arange(n_tenants, dtype=np.uint64), n_keys)
    keys = np.tile(np.arange(n_keys, dtype=np.uint64), n_tenants)
    slots = ring.slot_positions(key_positions(tenants, keys))
    unique, counts = np.unique(slots, return_counts=True)
    lost = 0
    for slot, count in zip(unique, counts):
        owners = ring.successors_at(int(slot), replication)
        if not any(alive[owner] for owner in owners):
            lost += int(count)
    return lost / float(tenants.size)


@dataclass
class _WorkItem:
    """One unit of chargeable work on one server (phase A output)."""

    request: int
    tenant: int
    key: int
    is_get: bool
    bearing: bool  # whether this item defines the request's latency


def run_healing_cell(
    n_servers: int,
    n_tenants: int,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    plan: Optional[object] = None,
    dataplane: str = "scalar",
    healing: Optional[SelfHealingConfig] = None,
) -> "FleetRunResult":
    """Simulate one fleet cell under the self-healing serving loop.

    Structured as three phases per epoch so the scalar and batched
    dataplanes are bit-identical by construction:

    * **Phase A (decisions)** — admission, routing, replica walk,
      failover and hint recording.  Every input (arrival times,
      aliveness, beliefs, shed flags) is frozen at the epoch boundary,
      so decisions never depend on cache timing.
    * **Phase B (charging)** — each server charges its work items in
      arrival order: one :meth:`~repro.fleet.server.FleetServer.serve`
      call per item (scalar) or one
      :meth:`~repro.fleet.server.FleetServer.serve_batch` (batched) —
      documented bit-identical per request.
    * **Phase C (queueing)** — per-server FIFO fold over the charged
      cycles, applying the gray-stall service multiplier and failover
      penalties; the bearing item's finish defines request latency.
    """
    from repro.fleet.cluster import (
        FLEET_PERCENTILES,
        FleetCluster,
        FleetClusterConfig,
        FleetKillEvent,
        FleetRunResult,
    )

    if healing is None or healing.is_trivial:
        raise ValueError(
            "run_healing_cell needs a non-trivial SelfHealingConfig; "
            "use run_fleet_cell for the legacy loop"
        )
    if dataplane not in ("scalar", "batched"):
        raise ValueError(
            f"dataplane must be 'scalar' or 'batched', got {dataplane!r}"
        )
    if requests <= 0:
        raise ValueError(f"requests must be positive, got {requests}")
    if not 0 <= warmup < requests:
        raise ValueError(
            f"warmup must be in [0, requests), got {warmup}/{requests}"
        )
    if epoch_requests <= 0:
        raise ValueError(
            f"epoch_requests must be positive, got {epoch_requests}"
        )
    config = healing
    resolved = resolve_plan(plan)
    clock = (
        FaultClock(resolved)
        if resolved is not None and resolved.rates.any_active
        else None
    )
    n_epochs = (requests + epoch_requests - 1) // epoch_requests
    schedule: Optional[OutageSchedule] = None
    if clock is not None and (
        clock.rates.server_kill > 0.0 or clock.rates.server_stall > 0.0
    ):
        schedule = draw_outage_schedule(clock, n_epochs, n_servers)

    cluster_config = FleetClusterConfig(
        n_servers=n_servers,
        n_tenants=n_tenants,
        n_keys=n_keys,
        vnodes=vnodes,
        tenant_ways=tenant_ways,
        ddio_ways=ddio_ways,
        engine=engine,
    )
    cluster = FleetCluster(cluster_config, seed=seed)
    servers = cluster.servers
    # Same sanitizer fallback as the legacy loop: deferred replay would
    # decouple checks from the accesses they guard.
    use_batched = dataplane == "batched" and all(
        server.context.hierarchy.sanitizer is None for server in servers
    )
    generator = FleetTrafficGenerator(
        n_tenants=n_tenants,
        n_keys=n_keys,
        theta=theta,
        get_fraction=get_fraction,
        offered_mrps=offered_mrps,
        seed=seed + 17,
    )
    batch = generator.generate(requests)

    # Replica sets live on the full static ring: slots for every
    # request upfront, successor walks cached per unique slot.
    slots = cluster.ring.slot_positions(
        key_positions(batch.tenants, batch.keys)
    )
    replica_cache: Dict[int, List[int]] = {}

    def replicas_of(slot: int) -> List[int]:
        cached = replica_cache.get(slot)
        if cached is None:
            cached = cluster.ring.successors_at(slot, config.replication)
            replica_cache[slot] = cached
        return cached

    detector = (
        HeartbeatDetector(n_servers, config)
        if config.detector_enabled
        else None
    )
    believed_down: Set[int] = set()
    admission = (
        TokenBucketAdmission(
            n_tenants,
            config.admit_tenant_mrps,
            config.admit_bucket_depth,
        )
        if config.admit_tenant_mrps is not None
        else None
    )
    shedding: Set[int] = set()

    latencies_us = np.full(requests, np.nan)
    finishes = np.full(requests, np.nan)
    kills: List[FleetKillEvent] = []
    stall_log: List[Dict[str, int]] = []
    reboot_log: List[Dict[str, Any]] = []
    detections: List[Dict[str, Any]] = []
    rejoins: List[Dict[str, Any]] = []
    hints: List[List[Tuple[int, int]]] = [[] for _ in range(n_servers)]
    pending_event: Dict[int, Tuple[int, str]] = {}
    counters = {
        "served": 0,
        "rejected": 0,
        "shed": 0,
        "unavailable": 0,
        "failovers": 0,
        "hints_recorded": 0,
        "hints_replayed": 0,
        "reboots": 0,
        "stall_events": 0,
    }
    per_epoch: Dict[str, List[int]] = {
        key: [0] * n_epochs
        for key in ("served", "rejected", "shed", "unavailable")
    }
    believed_down_series: List[int] = [0] * n_epochs

    def replay_hints(server: FleetServer, boundary_cycles: float) -> None:
        """Re-warm a rebooted server from its hint queue (in order)."""
        queued = hints[server.server_id]
        if not queued:
            return
        busy = boundary_cycles
        if use_batched:
            services = server.serve_batch(
                np.array([t for t, _ in queued], dtype=np.int64),
                np.array([k for _, k in queued], dtype=np.int64),
                np.zeros(len(queued), dtype=bool),
            )
            for service in services:
                busy += float(service)
        else:
            for tenant, key in queued:
                # Intentional scalar reference path (mirrors serve()).
                busy += float(server.serve(tenant, key, False))  # deepcheck: ignore[PERF001,PERF005]
        server.busy_until_cycles = busy
        counters["hints_replayed"] += len(queued)
        hints[server.server_id] = []

    for epoch_start in range(0, requests, epoch_requests):
        epoch = epoch_start // epoch_requests
        boundary_cycles = float(batch.arrivals_cycles[epoch_start])
        if epoch > 0:
            # 1. Recoveries due this boundary: reboot cold, replay hints.
            for server in servers:
                if (
                    not server.alive
                    and server.down_until_epoch > 0
                    and epoch >= server.down_until_epoch
                ):
                    server.reboot(epoch_start)
                    replay_hints(server, boundary_cycles)
                    counters["reboots"] += 1
                    reboot_log.append(
                        {"server": server.name, "epoch": epoch}
                    )
            # 2. Scheduled kills (no last-server guard — see module doc).
            if schedule is not None:
                for sid in range(n_servers):
                    server = servers[sid]
                    if schedule.kill_fires[epoch, sid] and server.alive:
                        server.kill(epoch_start)
                        delay = int(schedule.recovery_epochs[epoch, sid])
                        server.down_until_epoch = (
                            epoch + delay if delay > 0 else -1
                        )
                        assert clock is not None
                        clock.count("fleet.injected_server_kills")
                        pending_event[sid] = (epoch, "kill")
                        kills.append(
                            FleetKillEvent(
                                epoch=epoch,
                                request_index=epoch_start,
                                server=server.name,
                            )
                        )
                # 3. Scheduled stalls (guarded: never gray the last
                # alive server — stalls do not feed the durability
                # curves, so the guard cannot break monotonicity).
                for sid in range(n_servers):
                    server = servers[sid]
                    if not (
                        schedule.stall_fires[epoch, sid] and server.alive
                    ):
                        continue
                    if len(cluster.alive_servers) <= 1:
                        continue
                    until = epoch + int(schedule.stall_epochs[epoch, sid])
                    if until > server.stalled_until_epoch:
                        server.stall(until)
                        assert clock is not None
                        clock.count("fleet.injected_server_stalls")
                        counters["stall_events"] += 1
                        if sid not in pending_event:
                            pending_event[sid] = (epoch, "stall")
                        stall_log.append(
                            {
                                "server_id": sid,
                                "epoch": epoch,
                                "until_epoch": until,
                            }
                        )
            # 4. Failure detection (or perfect knowledge).
            if detector is not None:
                beating = [
                    server.alive and not server.stalled_at(epoch)
                    for server in servers
                ]
                suspected, recovered = detector.observe_epoch(epoch, beating)
                believed_down = detector.believed_down
                for sid in suspected:
                    event = pending_event.pop(sid, None)
                    detections.append(
                        {
                            "server": servers[sid].name,
                            "kind": event[1] if event else "unknown",
                            "event_epoch": event[0] if event else None,
                            "detected_epoch": epoch,
                            "lag_epochs": (
                                epoch - event[0] if event else None
                            ),
                        }
                    )
                for sid in recovered:
                    pending_event.pop(sid, None)
                    rejoins.append(
                        {"server": servers[sid].name, "rejoin_epoch": epoch}
                    )
            else:
                believed_down = {
                    sid
                    for sid in range(n_servers)
                    if not servers[sid].alive
                }
            # Healthy beats clear stale pending events (stall ended
            # before the detector ever noticed).
            for sid in list(pending_event):
                server = servers[sid]
                if server.alive and not server.stalled_at(epoch):
                    if detector is None or sid not in believed_down:
                        del pending_event[sid]
            # 5. Queue-lag watermark shedding with hysteresis.
            if config.shed_lag_high_us is not None:
                low = config.shed_lag_low_us
                assert low is not None
                for server in servers:
                    lag_cycles = max(
                        0.0, server.busy_until_cycles - boundary_cycles
                    )
                    lag_us = server.latency_us(lag_cycles)
                    if lag_us > config.shed_lag_high_us:
                        shedding.add(server.server_id)
                    elif lag_us < low:
                        shedding.discard(server.server_id)
        believed_down_series[epoch] = len(believed_down)

        # ---- Phase A: decisions (timing-independent) ----------------
        epoch_stop = min(epoch_start + epoch_requests, requests)
        items: Dict[int, List[_WorkItem]] = {}
        penalties = np.zeros(epoch_stop - epoch_start)
        for index in range(epoch_start, epoch_stop):
            tenant = int(batch.tenants[index])
            key = int(batch.keys[index])
            is_get = bool(batch.is_get[index])
            if admission is not None and not admission.admit(
                tenant, float(batch.arrivals_cycles[index])
            ):
                counters["rejected"] += 1
                per_epoch["rejected"][epoch] += 1
                continue
            replicas = replicas_of(int(slots[index]))
            # Walk the replica set: skip believed-down replicas for
            # free, pay a timeout on believed-up-but-dead ones, and
            # bear the request on the first believed-up live server.
            bearing_sid = -1
            penalty = 0.0
            for sid in replicas:
                if sid in believed_down:
                    continue
                if not servers[sid].alive:
                    penalty += config.failover_timeout_cycles
                    counters["failovers"] += 1
                    continue
                bearing_sid = sid
                break
            if bearing_sid < 0:
                counters["unavailable"] += 1
                per_epoch["unavailable"][epoch] += 1
                continue
            if bearing_sid in shedding:
                counters["shed"] += 1
                per_epoch["shed"][epoch] += 1
                continue
            counters["served"] += 1
            per_epoch["served"][epoch] += 1
            penalties[index - epoch_start] = penalty
            items.setdefault(bearing_sid, []).append(
                _WorkItem(index, tenant, key, is_get, True)
            )
            if not is_get:
                # SET fan-out: every other replica either serves the
                # write (live) or gets a hint for rejoin replay.
                for sid in replicas:
                    if sid == bearing_sid:
                        continue
                    if sid in believed_down or not servers[sid].alive:
                        hints[sid].append((tenant, key))
                        counters["hints_recorded"] += 1
                    else:
                        items.setdefault(sid, []).append(
                            _WorkItem(index, tenant, key, False, False)
                        )

        # ---- Phase B: charging ---- Phase C: queueing fold ----------
        for sid in sorted(items):
            server = servers[sid]
            work = items[sid]
            if use_batched:
                services = server.serve_batch(
                    np.array([w.tenant for w in work], dtype=np.int64),
                    np.array([w.key for w in work], dtype=np.int64),
                    np.array([w.is_get for w in work], dtype=bool),
                )
            else:
                # Intentional scalar reference path (one serve per item).
                services = [
                    float(server.serve(w.tenant, w.key, w.is_get))  # deepcheck: ignore[PERF001,PERF005]
                    for w in work
                ]
            factor = (
                clock.rates.server_stall_factor
                if clock is not None and server.stalled_at(epoch)
                else 1.0
            )
            busy = server.busy_until_cycles
            for item, service in zip(work, services):
                arrival = float(batch.arrivals_cycles[item.request])
                effective = arrival + (
                    float(penalties[item.request - epoch_start])
                    if item.bearing
                    else 0.0
                )
                start = effective if effective > busy else busy
                busy = start + float(service) * factor
                if item.bearing:
                    finishes[item.request] = busy
                    latencies_us[item.request] = server.latency_us(
                        busy - arrival
                    )
            server.busy_until_cycles = busy

    # ---- Statistics (served requests only) --------------------------
    measured_slice = slice(warmup, requests)
    measured_lat = latencies_us[measured_slice]
    served_mask = ~np.isnan(measured_lat)
    measured = int(served_mask.sum())
    if measured:
        duration_cycles = float(
            np.nanmax(finishes[measured_slice])
            - batch.arrivals_cycles[warmup]
        )
    else:
        duration_cycles = 0.0
    duration_s = duration_cycles / (REFERENCE_FREQ_GHZ * 1e9)
    goodput_mrps = measured / duration_s / 1e6 if duration_s > 0 else 0.0

    def summary_of(values: np.ndarray) -> LatencySummary:
        if values.size:
            return summarize_latencies(values, percentiles=FLEET_PERCENTILES)
        return LatencySummary(
            percentiles={q: 0.0 for q in FLEET_PERCENTILES},
            mean=0.0,
            count=0,
        )

    tenant_summaries: List[LatencySummary] = []
    measured_tenants = batch.tenants[measured_slice]
    for tenant in range(n_tenants):
        mask = (measured_tenants == tenant) & served_mask
        tenant_summaries.append(summary_of(measured_lat[mask]))

    window_p99: List[float] = []
    for window_start in range(warmup, requests, epoch_requests):
        window = latencies_us[
            window_start : min(window_start + epoch_requests, requests)
        ]
        window = window[~np.isnan(window)]
        # Served-only windows are ragged, so this stays a per-window
        # loop (the vectorised reshape needs rectangular windows).
        window_p99.append(  # deepcheck: ignore[PERF004]
            float(np.percentile(window, 99.0)) if window.size else 0.0
        )

    self_healing: Dict[str, Any] = {
        "config": config.to_dict(),
        "counters": dict(counters),
        "per_epoch": {k: list(v) for k, v in per_epoch.items()},
        "believed_down_per_epoch": list(believed_down_series),
        "detections": detections,
        "rejoins": rejoins,
        "reboots": reboot_log,
        "stalls": [
            {
                "server": servers[entry["server_id"]].name,
                "epoch": entry["epoch"],
                "until_epoch": entry["until_epoch"],
            }
            for entry in stall_log
        ],
        "believed_down_at_end": sorted(
            servers[sid].name for sid in believed_down
        ),
        "lost_key_fraction": lost_key_fraction(
            cluster.ring,
            [server.alive for server in servers],
            n_tenants,
            n_keys,
            config.replication,
        ),
    }

    return FleetRunResult(
        n_servers=n_servers,
        n_tenants=n_tenants,
        requests=requests,
        measured=measured,
        goodput_mrps=goodput_mrps,
        offered_mrps=offered_mrps,
        duration_ms=duration_s * 1e3,
        summary=summary_of(measured_lat[served_mask]),
        tenant_summaries=tenant_summaries,
        window_p99_us=window_p99,
        server_stats=[server.stats() for server in cluster.servers],
        kills=kills,
        alive_at_end=len(cluster.alive_servers),
        fault_counters=(
            clock.stats.to_dict() if clock is not None else None
        ),
        self_healing=self_healing,
    )
