"""The fleet front end: routing, queueing, chaos kills, failover.

:class:`FleetCluster` owns N :class:`~repro.fleet.server.FleetServer`
instances and a :class:`~repro.fleet.ring.ConsistentHashRing` with one
entry per *alive* server.  :func:`run_fleet_cell` drives a Zipf
traffic stream through it:

1. requests are processed strictly in arrival order;
2. each request routes by consistent hash of ``(tenant, key)`` to the
   owning server, waits for the server to drain its queue (one
   simulated clock per server), then pays the full cache-simulated
   KVS service cost on that server's hierarchy;
3. at every epoch boundary the chaos clock may kill whole servers
   (site ``fleet.server_kill``): a killed server leaves the ring, and
   only its keys re-shard — to their ring successors, whose caches are
   cold for them, which is exactly the tail inflation + recovery the
   ``fleet-failover`` experiment measures.

Determinism contract: server layouts derive per-server seeds from the
cell seed, kills draw from the plan's dedicated per-site stream (zero
rates draw nothing), and routing is hash-based — so a cell result is a
pure function of ``(params, seed, plan)``, a persisted plan replays
bit-exactly, and a zero-rate plan is bit-identical to no plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.faults.plan import FaultClock, resolve_plan
from repro.fleet.ring import ConsistentHashRing, key_positions
from repro.fleet.server import FleetServer
from repro.fleet.traffic import (
    REFERENCE_FREQ_GHZ,
    FleetTrafficGenerator,
    TrafficBatch,
)
from repro.lab.spec import derive_seed
from repro.stats.percentiles import LatencySummary, summarize_latencies

#: The tail percentiles the fleet experiments report.
FLEET_PERCENTILES = (50.0, 99.0, 99.9)


@dataclass(frozen=True)
class FleetClusterConfig:
    """Shape and budgets of one simulated fleet."""

    n_servers: int
    n_tenants: int
    n_keys: int = 1 << 12
    vnodes: int = 64
    tenant_ways: Optional[int] = None
    ddio_ways: Optional[int] = None
    engine: str = "fast"

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ValueError(
                f"n_servers must be positive, got {self.n_servers}"
            )
        if self.n_tenants <= 0:
            raise ValueError(
                f"n_tenants must be positive, got {self.n_tenants}"
            )
        if self.n_keys <= 1:
            raise ValueError(f"n_keys must be > 1, got {self.n_keys}")


class FleetCluster:
    """N simulated servers behind a consistent-hash load balancer."""

    def __init__(self, config: FleetClusterConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.servers: List[FleetServer] = [
            FleetServer(
                server_id,
                n_tenants=config.n_tenants,
                n_keys=config.n_keys,
                seed=derive_seed(seed, "fleet-server", server_id),
                tenant_ways=config.tenant_ways,
                ddio_ways=config.ddio_ways,
                engine=config.engine,
            )
            for server_id in range(config.n_servers)
        ]
        self._by_name: Dict[str, FleetServer] = {
            server.name: server for server in self.servers
        }
        self.ring = ConsistentHashRing(vnodes=config.vnodes)
        for server in self.servers:
            self.ring.add_node(server.name)

    @property
    def alive_servers(self) -> List[FleetServer]:
        """Servers still on the ring, in id order."""
        return [server for server in self.servers if server.alive]

    def server(self, name: str) -> FleetServer:
        """Look up one server by ring name."""
        return self._by_name[name]

    def kill_server(
        self, name: str, request_index: int, allow_last: bool = False
    ) -> None:
        """Remove one server from service (chaos or operator action).

        The legacy fleet must keep serving, so killing the last alive
        server is refused unless *allow_last* — the self-healing path
        sets it because total outage is a well-defined (and measured)
        state there: requests simply find no live replica.
        """
        server = self._by_name[name]
        if not server.alive:
            raise ValueError(f"{name} is already dead")
        if not allow_last and len(self.alive_servers) <= 1:
            raise ValueError("cannot kill the last alive server")
        server.kill(request_index)
        self.ring.remove_node(name)

    def stall_server(self, name: str, until_epoch: int) -> None:
        """Turn one server gray (slow) until *until_epoch*.

        Same last-server guard as :meth:`kill_server`: a stall on the
        only alive server would leave the fleet with no healthy
        capacity at all, so it is refused.
        """
        server = self._by_name[name]
        if not server.alive:
            raise ValueError(f"cannot stall {name}: already dead")
        if len(self.alive_servers) <= 1:
            raise ValueError("cannot stall the last alive server")
        server.stall(until_epoch)

    def depart_ring(self, name: str) -> None:
        """Take a server out of routing (suspicion or death)."""
        if name in self.ring:
            self.ring.remove_node(name)

    def rejoin_ring(self, name: str) -> None:
        """Return a server to routing.

        Virtual-node positions are a pure function of the name, so a
        rejoining server reclaims its exact original ring segments —
        only the keys that failed over during the outage remap back.
        """
        if name not in self.ring:
            self.ring.add_node(name)

    def route_epoch(self, batch: TrafficBatch) -> List[FleetServer]:
        """Owning server per request under the current membership."""
        owners = self.ring.route_positions(
            key_positions(batch.tenants, batch.keys)
        )
        nodes = self.ring.nodes
        return [self._by_name[nodes[int(i)]] for i in owners]


@dataclass
class FleetKillEvent:
    """One chaos server kill, for the persisted payload."""

    epoch: int
    request_index: int
    server: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "request_index": self.request_index,
            "server": self.server,
        }


@dataclass
class FleetRunResult:
    """Outcome of one fleet cell (one shape × one plan)."""

    n_servers: int
    n_tenants: int
    requests: int
    measured: int
    goodput_mrps: float
    offered_mrps: float
    duration_ms: float
    summary: LatencySummary
    tenant_summaries: List[LatencySummary]
    window_p99_us: List[float]
    server_stats: List[Dict[str, Any]]
    kills: List[FleetKillEvent] = field(default_factory=list)
    alive_at_end: int = 0
    fault_counters: Optional[Dict[str, int]] = None
    #: Self-healing telemetry (detector/replication/admission); only
    #: emitted when the healing layer ran, so legacy payloads — and the
    #: goldens that embed them — are byte-for-byte unchanged.
    self_healing: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (the persisted cell payload)."""
        payload: Dict[str, Any] = {
            "n_servers": self.n_servers,
            "n_tenants": self.n_tenants,
            "requests": self.requests,
            "measured": self.measured,
            "goodput_mrps": self.goodput_mrps,
            "offered_mrps": self.offered_mrps,
            "duration_ms": self.duration_ms,
            "latency_us": self.summary.to_dict(),
            "tenants": [s.to_dict() for s in self.tenant_summaries],
            "window_p99_us": list(self.window_p99_us),
            "servers": list(self.server_stats),
            "kills": [k.to_dict() for k in self.kills],
            "alive_at_end": self.alive_at_end,
        }
        if self.fault_counters is not None:
            payload["fault_counters"] = self.fault_counters
        if self.self_healing is not None:
            payload["self_healing"] = self.self_healing
        return payload


def run_fleet_cell(
    n_servers: int,
    n_tenants: int,
    requests: int = 4000,
    warmup: int = 800,
    n_keys: int = 1 << 12,
    theta: float = 0.99,
    get_fraction: float = 0.95,
    offered_mrps: float = 2.0,
    vnodes: int = 64,
    epoch_requests: int = 500,
    tenant_ways: Optional[int] = None,
    ddio_ways: Optional[int] = None,
    engine: str = "fast",
    seed: int = 0,
    plan: Optional[object] = None,
    dataplane: str = "scalar",
    healing: Optional[object] = None,
) -> FleetRunResult:
    """Simulate one fleet shape under one (optional) fault plan.

    The first *warmup* requests are served but excluded from the
    latency/goodput statistics (cold caches).  ``plan`` — a
    :class:`~repro.faults.plan.FaultPlan` or its persisted dict form —
    arms the ``fleet.server_kill`` site; ``None`` or all-zero rates
    leave every code path and RNG stream untouched.  ``dataplane``
    selects how each server charges an epoch's requests: ``"scalar"``
    serves one request at a time (the reference), ``"batched"`` groups
    each epoch's requests by owning server and replays every server's
    op stream in one flattened engine pass
    (:meth:`FleetServer.serve_batch`) — results are bit-identical
    because routing, queueing and kill draws never depend on cache
    timing.

    ``healing`` — a :class:`~repro.fleet.healing.SelfHealingConfig` or
    its dict form — switches the cell to the self-healing serving loop
    (replication, failure detection, recovery, admission control).
    ``None`` or a trivial config (R=1, detector off, admission off)
    keeps this legacy loop, which stays bit-identical to every run
    before the healing layer existed.
    """
    from repro.fleet.healing import resolve_healing

    resolved_healing = resolve_healing(healing)
    if resolved_healing is not None:
        from repro.fleet.healing import run_healing_cell

        return run_healing_cell(
            n_servers=n_servers,
            n_tenants=n_tenants,
            requests=requests,
            warmup=warmup,
            n_keys=n_keys,
            theta=theta,
            get_fraction=get_fraction,
            offered_mrps=offered_mrps,
            vnodes=vnodes,
            epoch_requests=epoch_requests,
            tenant_ways=tenant_ways,
            ddio_ways=ddio_ways,
            engine=engine,
            seed=seed,
            plan=plan,
            dataplane=dataplane,
            healing=resolved_healing,
        )
    if dataplane not in ("scalar", "batched"):
        raise ValueError(
            f"dataplane must be 'scalar' or 'batched', got {dataplane!r}"
        )
    if requests <= 0:
        raise ValueError(f"requests must be positive, got {requests}")
    if not 0 <= warmup < requests:
        raise ValueError(
            f"warmup must be in [0, requests), got {warmup}/{requests}"
        )
    if epoch_requests <= 0:
        raise ValueError(
            f"epoch_requests must be positive, got {epoch_requests}"
        )
    resolved = resolve_plan(plan)
    clock = (
        FaultClock(resolved)
        if resolved is not None and resolved.rates.any_active
        else None
    )
    config = FleetClusterConfig(
        n_servers=n_servers,
        n_tenants=n_tenants,
        n_keys=n_keys,
        vnodes=vnodes,
        tenant_ways=tenant_ways,
        ddio_ways=ddio_ways,
        engine=engine,
    )
    cluster = FleetCluster(config, seed=seed)
    # A runtime CacheSanitizer needs its checks interleaved with the
    # accesses they guard; deferred replay breaks that, so fall back to
    # the scalar loop (identical results, no speedup) when one is on.
    use_batched = dataplane == "batched" and all(
        server.context.hierarchy.sanitizer is None
        for server in cluster.servers
    )
    generator = FleetTrafficGenerator(
        n_tenants=n_tenants,
        n_keys=n_keys,
        theta=theta,
        get_fraction=get_fraction,
        offered_mrps=offered_mrps,
        seed=seed + 17,
    )
    batch = generator.generate(requests)

    latencies_us = np.zeros(requests, dtype=float)
    finishes = np.zeros(requests, dtype=float)
    kills: List[FleetKillEvent] = []
    kill_rate = clock.rates.server_kill if clock is not None else 0.0

    for epoch_start in range(0, requests, epoch_requests):
        epoch = epoch_start // epoch_requests
        if clock is not None and epoch > 0:
            # Kill draws happen per alive server, in id order, at every
            # epoch boundary after the first.  The last alive server is
            # never killed (the fleet must keep serving) but clock
            # decisions stay a pure function of the plan because each
            # site draw consumes exactly one uniform.
            for server in cluster.servers:
                if not server.alive:
                    continue
                if len(cluster.alive_servers) <= 1:
                    break
                if clock.fires("fleet.server_kill", kill_rate):
                    cluster.kill_server(server.name, epoch_start)
                    clock.count("fleet.injected_server_kills")
                    kills.append(
                        FleetKillEvent(
                            epoch=epoch,
                            request_index=epoch_start,
                            server=server.name,
                        )
                    )
        epoch_stop = min(epoch_start + epoch_requests, requests)
        sub = batch.slice(epoch_start, epoch_stop)
        owners = cluster.route_epoch(sub)
        if use_batched:
            # Group the epoch's requests by owning server, preserving
            # arrival order within each group.  Servers have disjoint
            # hierarchies and per-server FIFO queues, so per-server
            # charging order equals the global loop's and queueing
            # (below) folds the groups back by arrival index.
            groups: Dict[int, List[int]] = {}
            for i, server in enumerate(owners):
                groups.setdefault(server.server_id, []).append(i)
            by_id = {server.server_id: server for server in owners}
            for server_id, indices in groups.items():
                server = by_id[server_id]
                rows = [epoch_start + i for i in indices]
                services = server.serve_batch(
                    batch.tenants[rows],
                    batch.keys[rows],
                    batch.is_get[rows],
                )
                busy = server.busy_until_cycles
                for j, index in enumerate(rows):
                    arrival = float(batch.arrivals_cycles[index])
                    start = arrival if arrival > busy else busy
                    busy = start + float(services[j])
                    finishes[index] = busy
                    latencies_us[index] = server.latency_us(busy - arrival)
                server.busy_until_cycles = busy
            continue
        for i, server in enumerate(owners):
            index = epoch_start + i
            arrival = float(batch.arrivals_cycles[index])
            # Intentional scalar reference path: one request at a time
            # on the owning server, in global arrival order.
            service = server.serve(  # deepcheck: ignore[PERF001,PERF005]
                int(batch.tenants[index]),
                int(batch.keys[index]),
                bool(batch.is_get[index]),
            )
            start = max(arrival, server.busy_until_cycles)
            finish = start + service
            server.busy_until_cycles = finish
            finishes[index] = finish
            latencies_us[index] = server.latency_us(finish - arrival)

    measured_slice = slice(warmup, requests)
    measured_lat = latencies_us[measured_slice]
    measured = int(measured_lat.size)
    duration_cycles = float(
        finishes[measured_slice].max() - batch.arrivals_cycles[warmup]
    )
    duration_s = duration_cycles / (REFERENCE_FREQ_GHZ * 1e9)
    goodput_mrps = measured / duration_s / 1e6 if duration_s > 0 else 0.0

    tenant_summaries: List[LatencySummary] = []
    measured_tenants = batch.tenants[measured_slice]
    for tenant in range(n_tenants):
        tenant_lat = measured_lat[measured_tenants == tenant]
        if tenant_lat.size:
            tenant_summaries.append(
                summarize_latencies(tenant_lat, percentiles=FLEET_PERCENTILES)
            )
        else:
            tenant_summaries.append(
                LatencySummary(
                    percentiles={q: 0.0 for q in FLEET_PERCENTILES},
                    mean=0.0,
                    count=0,
                )
            )

    # Windowed p99 series, vectorized: one axis-wise percentile over
    # the full windows plus one call for the ragged tail (bit-identical
    # to the per-window loop deepcheck PERF004 flagged).
    window_p99: List[float] = []
    n_full = max(0, (requests - warmup)) // epoch_requests
    if n_full:
        full_windows = latencies_us[
            warmup : warmup + n_full * epoch_requests
        ].reshape(n_full, epoch_requests)
        window_p99 = [
            float(v) for v in np.percentile(full_windows, 99.0, axis=1)
        ]
    tail = latencies_us[warmup + n_full * epoch_requests : requests]
    if tail.size:
        window_p99.append(float(np.percentile(tail, 99.0)))

    return FleetRunResult(
        n_servers=n_servers,
        n_tenants=n_tenants,
        requests=requests,
        measured=measured,
        goodput_mrps=goodput_mrps,
        offered_mrps=offered_mrps,
        duration_ms=duration_s * 1e3,
        summary=summarize_latencies(
            measured_lat, percentiles=FLEET_PERCENTILES
        ),
        tenant_summaries=tenant_summaries,
        window_p99_us=window_p99,
        server_stats=[server.stats() for server in cluster.servers],
        kills=kills,
        alive_at_end=len(cluster.alive_servers),
        fault_counters=(
            clock.stats.to_dict() if clock is not None else None
        ),
    )
