"""Fleet: cluster-scale multi-tenant serving simulation.

The paper proves CacheDirector on one machine; this package asks the
datacenter question (ROADMAP item 1, IOCA/A4 framing): N simulated
servers — mixed Haswell/Skylake, each a full instance of the
single-machine cache-simulated KVS building blocks — behind a
consistent-hash front end, serving Zipf traffic from simulated
clients, with per-tenant CAT way budgets and a per-server DDIO budget,
and whole-server chaos kills triggering deterministic failover
re-sharding.

Layout:

* :mod:`repro.fleet.ring` — consistent-hash ring (virtual nodes,
  minimal remapping, vectorised routing).
* :mod:`repro.fleet.traffic` — Zipf fleet traffic generation.
* :mod:`repro.fleet.server` — one simulated server: machine spec,
  per-tenant CAT/slice budgets, per-tenant KVS instances.
* :mod:`repro.fleet.cluster` — the load balancer + request loop:
  routing, queueing, chaos server kills, failover re-sharding.

The lab entry points live in :mod:`repro.experiments.fleet`
(``fleet-scale`` and ``fleet-failover``), exposed via ``repro fleet``.
"""

from repro.fleet.cluster import (
    FleetClusterConfig,
    FleetCluster,
    FleetRunResult,
    run_fleet_cell,
)
from repro.fleet.ring import ConsistentHashRing, key_positions, mix64
from repro.fleet.server import FleetServer, spec_for_server
from repro.fleet.traffic import FleetTrafficGenerator, TrafficBatch

__all__ = [
    "ConsistentHashRing",
    "FleetCluster",
    "FleetClusterConfig",
    "FleetRunResult",
    "FleetServer",
    "FleetTrafficGenerator",
    "TrafficBatch",
    "key_positions",
    "mix64",
    "run_fleet_cell",
    "spec_for_server",
]
