"""Fleet traffic: Zipf request streams from millions of simulated clients.

One generator produces the whole fleet's arrival stream: per-request
tenant ids, Zipf-skewed keys (each tenant draws from its **own**
:class:`~repro.kvs.workload.ZipfKeys` sampler, seeded independently,
so tenants have uncorrelated hot sets), GET/SET flags, and Poisson
arrival times at a configured offered rate.

Determinism contract: every random quantity comes from its own
``np.random.default_rng([seed, purpose])`` stream, so the stream is a
pure function of the seed regardless of how many tenants or requests
are drawn — and per-tenant key sequences do not shift when the GET
fraction or the arrival rate changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.kvs.workload import ZipfKeys

#: Reference core frequency used to convert the offered rate into
#: cycles between arrivals (both testbed machines clock 3.2 GHz).
REFERENCE_FREQ_GHZ = 3.2


@dataclass
class TrafficBatch:
    """One contiguous slice of the fleet's arrival stream."""

    tenants: np.ndarray        # int64 tenant id per request
    keys: np.ndarray           # int64 key per request (tenant-local)
    is_get: np.ndarray         # bool per request
    arrivals_cycles: np.ndarray  # float64, non-decreasing

    def __len__(self) -> int:
        return int(self.tenants.size)

    def slice(self, start: int, stop: int) -> "TrafficBatch":
        """A view of requests ``[start, stop)`` (no copies)."""
        return TrafficBatch(
            tenants=self.tenants[start:stop],
            keys=self.keys[start:stop],
            is_get=self.is_get[start:stop],
            arrivals_cycles=self.arrivals_cycles[start:stop],
        )


class FleetTrafficGenerator:
    """Zipf fleet traffic at a configured offered rate.

    Args:
        n_tenants: how many tenants share the fleet.
        n_keys: per-tenant key-space size.
        theta: Zipf skew (paper: 0.99).
        get_fraction: GET share of the op mix.
        offered_mrps: offered load, million requests/second fleet-wide
            (sets the mean of the exponential interarrival gap).
        seed: RNG seed; all streams derive from it.
    """

    def __init__(
        self,
        n_tenants: int,
        n_keys: int,
        theta: float = 0.99,
        get_fraction: float = 0.95,
        offered_mrps: float = 2.0,
        seed: int = 0,
    ) -> None:
        if n_tenants <= 0:
            raise ValueError(f"n_tenants must be positive, got {n_tenants}")
        if offered_mrps <= 0:
            raise ValueError(
                f"offered_mrps must be positive, got {offered_mrps}"
            )
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError(
                f"get_fraction must be in [0, 1], got {get_fraction}"
            )
        self.n_tenants = n_tenants
        self.n_keys = n_keys
        self.theta = theta
        self.get_fraction = get_fraction
        self.offered_mrps = offered_mrps
        self.seed = seed
        self._samplers = [
            ZipfKeys(n_keys, theta, seed=seed) for _ in range(n_tenants)
        ]
        #: Mean cycles between arrivals at the reference clock.
        self.mean_gap_cycles = REFERENCE_FREQ_GHZ * 1e9 / (offered_mrps * 1e6)

    def generate(self, count: int) -> TrafficBatch:
        """Draw the first *count* requests of the stream.

        The same generator always yields the same stream prefix: a
        longer draw extends, never reshuffles, a shorter one.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        tenant_rng = np.random.default_rng([self.seed, 101])
        ops_rng = np.random.default_rng([self.seed, 103])
        arrival_rng = np.random.default_rng([self.seed, 105])
        tenants = tenant_rng.integers(0, self.n_tenants, size=count)
        keys = np.zeros(count, dtype=np.int64)
        for tenant in range(self.n_tenants):
            mask = tenants == tenant
            n = int(mask.sum())
            if n == 0:
                continue
            key_rng = np.random.default_rng([self.seed, 107, tenant])
            keys[mask] = self._samplers[tenant].keys(n, key_rng)
        is_get = ops_rng.random(count) < self.get_fraction
        gaps = arrival_rng.exponential(self.mean_gap_cycles, size=count)
        arrivals = np.cumsum(gaps)
        return TrafficBatch(
            tenants=tenants.astype(np.int64),
            keys=keys,
            is_get=is_get,
            arrivals_cycles=arrivals,
        )

    def hot_key_share(self, batch: TrafficBatch, tenant: int) -> float:
        """Fraction of *tenant*'s requests hitting its hottest key
        (skew diagnostic used by the property tests)."""
        mask = batch.tenants == tenant
        total = int(mask.sum())
        if total == 0:
            return 0.0
        keys = batch.keys[mask]
        counts: Dict[int, int] = {}
        for key in keys.tolist():
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values()) / total
