"""Consistent-hash ring: virtual nodes, minimal remapping, bulk routing.

The front-end load balancer places every ``(tenant, key)`` pair on the
ring by a 64-bit mix and assigns it to the first virtual node at or
after that position (clockwise).  Each physical server contributes
``vnodes`` virtual nodes, so load spreads evenly and removing a server
remaps **only** the keys that server owned — the property that makes
whole-server failover cheap (each orphaned key moves to the next
surviving node on the ring instead of the whole fleet re-sharding).

Determinism contract: virtual-node positions come from BLAKE2b digests
of ``"name#replica"`` strings and key positions from a splitmix64-style
integer mix — no ``hash()``, so placement is identical across
processes, Python versions and ``PYTHONHASHSEED`` values (the lab's
parallel-vs-serial bit-identity depends on this).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

#: Default virtual nodes per server; 64 keeps the max/mean load ratio
#: under ~1.5 for the fleet sizes the experiments sweep.
DEFAULT_VNODES = 64

_MIX_MULT1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT2 = np.uint64(0x94D049BB133111EB)
_GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def mix64(values: Union[int, np.ndarray]) -> np.ndarray:
    """Splitmix64 finalizer: a cheap, vectorisable 64-bit bijection.

    Accepts a scalar or an array; always returns a ``uint64`` array
    (0-d for scalars).  Used to scatter sequential key ids uniformly
    over the ring's position space.
    """
    z = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (z + _GOLDEN_GAMMA).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _MIX_MULT1
        z = (z ^ (z >> np.uint64(27))) * _MIX_MULT2
        z = z ^ (z >> np.uint64(31))
    return z


def key_positions(
    tenants: Union[int, np.ndarray], keys: Union[int, np.ndarray]
) -> np.ndarray:
    """Ring positions for ``(tenant, key)`` pairs (vectorised).

    Tenants are mixed first so two tenants' identical key ids land on
    unrelated positions — tenant key spaces never shadow each other.
    """
    tenant_mix = mix64(np.asarray(tenants, dtype=np.uint64))
    with np.errstate(over="ignore"):
        combined = tenant_mix ^ (
            np.asarray(keys, dtype=np.uint64) + _GOLDEN_GAMMA
        ).astype(np.uint64)
    return mix64(combined)


def _vnode_position(name: str, replica: int) -> int:
    """The ring position of one virtual node (stable across runs)."""
    digest = hashlib.blake2b(
        f"{name}#{replica}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """The load balancer's node→position table.

    Args:
        vnodes: virtual nodes per physical server.

    Nodes are identified by name (``"server-3"``).  Lookups walk
    clockwise from the key position to the next virtual node;
    :meth:`route_positions` does the same for a whole position array
    with one ``searchsorted``, which is what lets the traffic loop
    route millions of requests cheaply.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        self._ring_positions = np.empty(0, dtype=np.uint64)
        self._ring_owners = np.empty(0, dtype=np.int64)

    # -- membership ----------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current members, in insertion order."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def add_node(self, name: str) -> None:
        """Add a server; duplicate names are an error."""
        if name in self._nodes:
            raise ValueError(f"node {name!r} already on the ring")
        self._nodes.append(name)
        self._rebuild()

    def remove_node(self, name: str) -> None:
        """Remove a server; only its keys remap (to ring successors)."""
        try:
            self._nodes.remove(name)
        except ValueError:
            raise KeyError(f"node {name!r} not on the ring") from None
        self._rebuild()

    def _rebuild(self) -> None:
        entries: List[Tuple[int, str]] = []
        for name in self._nodes:
            entries.extend(
                (_vnode_position(name, replica), name)
                for replica in range(self.vnodes)
            )
        # Position ties (astronomically rare) break by name so the
        # table is a pure function of the membership set.
        entries.sort()
        index: Dict[str, int] = {
            name: i for i, name in enumerate(self._nodes)
        }
        self._ring_positions = np.array(
            [position for position, _ in entries], dtype=np.uint64
        )
        self._ring_owners = np.array(
            [index[name] for _, name in entries], dtype=np.int64
        )

    # -- routing -------------------------------------------------------

    def route_positions(self, positions: np.ndarray) -> np.ndarray:
        """Owner index (into :attr:`nodes`) for each ring position.

        One vectorised clockwise walk: the first virtual node at or
        after each position, wrapping past the top of the ring.
        """
        return self._ring_owners[self.slot_positions(positions)]

    def node_for(self, tenant: int, key: int) -> str:
        """The server owning one ``(tenant, key)`` pair."""
        owner = int(self.route_positions(key_positions(tenant, key))[()])
        return self._nodes[owner]

    # -- replication ---------------------------------------------------

    def slot_positions(self, positions: np.ndarray) -> np.ndarray:
        """Virtual-node slot index per ring position (bulk).

        The slot is where the clockwise walk *starts*; feed it to
        :meth:`successors_at` to expand a replica set without
        re-searching the ring.
        """
        if not self._nodes:
            raise RuntimeError("cannot route on an empty ring")
        slots = np.searchsorted(
            self._ring_positions, np.asarray(positions, dtype=np.uint64),
            side="left",
        )
        slots %= len(self._ring_positions)
        return slots

    def successors_at(self, slot: int, count: int) -> List[int]:
        """The first *count* distinct owners clockwise from *slot*.

        Returns owner indices (into :attr:`nodes`) in walk order.  By
        construction the result for ``count`` is a prefix of the
        result for ``count + 1`` — replica sets nest, which is what
        makes lost-key fractions monotone in the replication factor.
        Fewer than *count* members yields every member once.
        """
        if not self._nodes:
            raise RuntimeError("cannot route on an empty ring")
        want = min(count, len(self._nodes))
        n_slots = len(self._ring_positions)
        owners: List[int] = []
        seen = set()
        for offset in range(n_slots):
            owner = int(self._ring_owners[(slot + offset) % n_slots])
            if owner not in seen:
                seen.add(owner)
                owners.append(owner)
                if len(owners) == want:
                    break
        return owners

    def replicas_for(
        self, tenant: int, key: int, replication: int
    ) -> List[str]:
        """The *replication* distinct servers replicating one pair.

        The first entry is the primary (the :meth:`node_for` owner);
        the rest are its next-distinct-server ring successors.
        """
        if replication <= 0:
            raise ValueError(
                f"replication must be positive, got {replication}"
            )
        slot = int(
            self.slot_positions(key_positions(tenant, key).reshape(1))[0]
        )
        return [self._nodes[i] for i in self.successors_at(slot, replication)]

    def owners_for_keys(
        self, tenants: np.ndarray, keys: np.ndarray
    ) -> List[str]:
        """Owning server name per ``(tenant, key)`` pair (bulk)."""
        owners = self.route_positions(key_positions(tenants, keys))
        return [self._nodes[int(i)] for i in owners]

    def load_counts(
        self, tenants: np.ndarray, keys: np.ndarray
    ) -> Dict[str, int]:
        """How many of the given pairs each server owns."""
        owners = self.route_positions(key_positions(tenants, keys))
        counts = np.bincount(owners, minlength=len(self._nodes))
        return {name: int(counts[i]) for i, name in enumerate(self._nodes)}

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(nodes={len(self._nodes)}, "
            f"vnodes={self.vnodes})"
        )


def build_ring(names: Sequence[str], vnodes: int = DEFAULT_VNODES) -> ConsistentHashRing:
    """Convenience: a ring populated with *names* in order."""
    ring = ConsistentHashRing(vnodes=vnodes)
    for name in names:
        ring.add_node(name)
    return ring
