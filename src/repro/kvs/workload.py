"""KVS workload generation: MICA-style key distributions and op mixes.

The paper "used MICA's library to generate skewed (0.99) keys in the
range [0, 2^24)".  MICA's generator is the classic Gray et al.
(SIGMOD '94) incremental Zipf sampler; :class:`ZipfKeys` implements the
same closed form, vectorised with numpy so millions of keys are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def zeta(n: int, theta: float) -> float:
    """Generalised harmonic number ``sum_{i=1..n} 1/i^theta``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return float(np.sum(1.0 / np.arange(1, n + 1, dtype=float) ** theta))


class ZipfKeys:
    """Zipf-distributed keys over ``[0, n_keys)`` (Gray et al. sampler).

    Rank 0 is the hottest key; ranks are scattered over the key space
    with a fixed permutation-ish multiplier so that hot keys are not
    physically adjacent (as MICA does).

    Args:
        n_keys: key-space size (paper: 2^24).
        theta: skew (paper: 0.99).
        seed: RNG seed.
        scatter: map ranks through a multiplicative scatter so hot
            keys spread over the index (disable for rank==key tests).
    """

    def __init__(
        self,
        n_keys: int,
        theta: float = 0.99,
        seed: int = 0,
        scatter: bool = True,
    ) -> None:
        if n_keys <= 1:
            raise ValueError(f"n_keys must be > 1, got {n_keys}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.n_keys = n_keys
        self.theta = theta
        self.seed = seed
        self.scatter = scatter
        self._zetan = zeta_fast(n_keys, theta)
        self._zeta2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n_keys) ** (1.0 - theta)) / (
            1.0 - self._zeta2 / self._zetan
        )
        # Odd multiplier, coprime with any power-of-two key space.
        self._mult = 0x9E3779B1 | 1

    def ranks(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw *count* Zipf ranks (0 = hottest)."""
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        u = rng.random(count)
        uz = u * self._zetan
        ranks = 1.0 + self.n_keys * np.power(
            self._eta * u - self._eta + 1.0, self._alpha
        )
        ranks = np.where(uz < 1.0, 1.0, ranks)
        ranks = np.where((uz >= 1.0) & (uz < 1.0 + 0.5**self.theta), 2.0, ranks)
        out = ranks.astype(np.int64) - 1
        return np.clip(out, 0, self.n_keys - 1)

    def keys(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw *count* keys (ranks scattered over the key space)."""
        ranks = self.ranks(count, rng)
        if not self.scatter:
            return ranks
        return (ranks * self._mult + 0x5BD1E995) % self.n_keys


def zeta_fast(n: int, theta: float) -> float:
    """Harmonic sum in numpy chunks (n can be 2^24)."""
    total = 0.0
    chunk = 1 << 22
    for start in range(1, n + 1, chunk):
        stop = min(start + chunk, n + 1)
        total += float(np.sum(1.0 / np.arange(start, stop, dtype=float) ** theta))
    return total


class UniformKeys:
    """Uniformly distributed keys over ``[0, n_keys)``."""

    def __init__(self, n_keys: int, seed: int = 0) -> None:
        if n_keys <= 1:
            raise ValueError(f"n_keys must be > 1, got {n_keys}")
        self.n_keys = n_keys
        self.seed = seed

    def keys(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Draw *count* uniform keys."""
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        return rng.integers(0, self.n_keys, size=count)


@dataclass(frozen=True)
class GetSetMix:
    """A GET/SET operation mix (paper: 100 %, 95 %, 50 % GET)."""

    get_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ValueError(
                f"get_fraction must be in [0, 1], got {self.get_fraction}"
            )

    @property
    def label(self) -> str:
        """Workload label as the paper prints it."""
        return f"{self.get_fraction:.0%} GET"

    def operations(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Boolean array: True = GET, False = SET.

        *rng* is required: an implicit constant fallback here silently
        decoupled the op mix from the experiment seed (the fig04
        dropped-seed class, flagged by deepcheck FLOW002).
        """
        return rng.random(count) < self.get_fraction


#: The three mixes of Fig. 8.
PAPER_MIXES: Tuple[GetSetMix, ...] = (
    GetSetMix(1.00),
    GetSetMix(0.95),
    GetSetMix(0.50),
)
