"""Emulated DPDK key-value store (§3.1, Fig. 8).

* :mod:`repro.kvs.workload` — MICA-style Zipf(0.99) and uniform key
  generators over 2^24 keys, and GET/SET operation mixes.
* :mod:`repro.kvs.store` — the value array (slice-aware or normal
  placement) and the direct-indexed bucket array.
* :mod:`repro.kvs.server` — the single-core request loop: packets in
  via DDIO, index probe, value access, response out — with full cycle
  accounting on the cache simulator.
"""

from repro.kvs.server import KvsServer, KvsWorkloadResult
from repro.kvs.store import KvsStore, SliceLocalArray
from repro.kvs.workload import GetSetMix, UniformKeys, ZipfKeys

__all__ = [
    "GetSetMix",
    "KvsServer",
    "KvsStore",
    "KvsWorkloadResult",
    "SliceLocalArray",
    "UniformKeys",
    "ZipfKeys",
]
