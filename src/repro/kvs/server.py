"""The emulated KVS request loop (§3.1).

One core serves GET/SET requests arriving as 128 B TCP packets at high
rate through the DPDK-like I/O path: the NIC DMA-writes each request
into a rotating RX buffer via DDIO, the core parses it, probes the
index, touches the value line (read for GET, write for SET), writes
the response header and the NIC DMA-reads it back out.  Every memory
touch runs on the cache simulator, so the reported cycles-per-request
— and hence transactions per second — reflect placement policy,
slice distance, DDIO churn and capacity effects together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cachesim.ddio import DdioEngine
from repro.core.slice_aware import SliceAwareContext
from repro.faults.plan import FaultClock, KvsRequestFault
from repro.kvs.store import KvsStore
from repro.mem.address import CACHE_LINE

#: The paper's request packets: 128 B TCP.
REQUEST_BYTES = 128

#: Response: header + 64 B value.
RESPONSE_BYTES = 64 + 64


@dataclass
class KvsWorkloadResult:
    """Outcome of one KVS measurement run."""

    requests: int
    total_cycles: int
    freq_ghz: float

    @property
    def cycles_per_request(self) -> float:
        """Average request cost in cycles (the paper's ~160 vs ~194)."""
        return self.total_cycles / self.requests

    @property
    def tps_millions(self) -> float:
        """Transactions per second, in millions (Fig. 8's y-axis)."""
        return self.freq_ghz * 1e9 / self.cycles_per_request / 1e6


class KvsServer:
    """Single-core KVS server over simulated DPDK I/O.

    Args:
        context: machine context.
        store: index/value layout (normal or slice-aware).
        core: serving core.
        rx_buffers: rotating RX buffer count (models the mbuf ring).
        fixed_cost: per-request instruction cost (parse, hash, respond)
            outside the measured memory accesses.
        engine: cache-access engine for the request loop
            (``"reference"`` or ``"fast"``; identical outcomes).
    """

    def __init__(
        self,
        context: SliceAwareContext,
        store: KvsStore,
        core: int = 0,
        rx_buffers: int = 1024,
        fixed_cost: int = 30,
        engine: str = "reference",
    ) -> None:
        if rx_buffers <= 0:
            raise ValueError(f"rx_buffers must be positive, got {rx_buffers}")
        self.context = context
        self.store = store
        self.core = core
        self.fixed_cost = fixed_cost
        self.hierarchy = context.hierarchy
        self.hierarchy.set_engine(engine)
        self.ddio = DdioEngine(self.hierarchy)
        buf = context.allocate_normal(rx_buffers * REQUEST_BYTES)
        self._rx_buffers = [
            buf.address_of(i * REQUEST_BYTES) for i in range(rx_buffers)
        ]
        self._next_buffer = 0
        self.requests_served = 0
        #: Fault clock injecting request failures/slowdowns, or ``None``.
        self.faults: Optional[FaultClock] = None

    def serve_one(self, key: int, is_get: bool) -> int:
        """Serve one request; returns cycles spent by the core.

        Raises:
            KvsRequestFault: when the fault clock injects a server-side
                failure (the request is lost; clients retry).
        """
        hierarchy = self.hierarchy
        core = self.core
        clock = self.faults
        if clock is not None and clock.fires("kvs.fail", clock.rates.kvs_fail):
            clock.count("kvs.injected_failures")
            raise KvsRequestFault(f"injected failure serving key {key}")
        # Request arrives: NIC DMA-writes 128 B into the next RX buffer.
        rx = self._rx_buffers[self._next_buffer]
        self._next_buffer = (self._next_buffer + 1) % len(self._rx_buffers)
        self.ddio.dma_write(rx, REQUEST_BYTES)
        cycles = self.fixed_cost
        if clock is not None and clock.fires("kvs.slow", clock.rates.kvs_slow):
            # Server-side hiccup (SMI, scheduler preemption): the
            # request completes but pays extra cycles.
            cycles += clock.rates.kvs_slow_cycles
            clock.count("kvs.injected_slow_requests")
        # Core parses the request (two lines of the 128 B packet).
        cycles += hierarchy.read(core, rx, REQUEST_BYTES)
        # Index probe.
        cycles += hierarchy.read(core, self.store.index_address(key), 1)
        # Value access (multi-line values touch every line, §8).
        if self.store.lines_per_value == 1:
            value_line = self.store.value_address(key)
            if is_get:
                cycles += hierarchy.read(core, value_line, 1)
            else:
                cycles += hierarchy.write(core, value_line, 1)
        else:
            # Intentional scalar reference path: per-line charging in
            # request order; batched charging goes through
            # FleetServer.serve_batch's recorded replay instead.
            for value_line in self.store.value_addresses(key):  # deepcheck: ignore[PERF001]
                if is_get:
                    cycles += hierarchy.read(core, value_line, 1)
                else:
                    cycles += hierarchy.write(core, value_line, 1)
        # Response header write into the RX buffer, then TX DMA.
        cycles += hierarchy.write(core, rx, 1)
        self.ddio.dma_read(rx, RESPONSE_BYTES)
        self.requests_served += 1
        return cycles

    def run(
        self,
        keys: Sequence[int],
        is_get: Sequence[bool],
        warmup: int = 0,
    ) -> KvsWorkloadResult:
        """Serve a request stream; returns aggregate statistics.

        Args:
            keys: request keys.
            is_get: per-request GET flag (same length as *keys*).
            warmup: leading requests excluded from the measurement
                (cold-cache transient).
        """
        if len(keys) != len(is_get):
            raise ValueError("keys and is_get must have equal length")
        if warmup >= len(keys):
            raise ValueError("warmup must leave requests to measure")
        total = 0
        for i in range(warmup):
            self.serve_one(int(keys[i]), bool(is_get[i]))
        measured = 0
        for i in range(warmup, len(keys)):
            total += self.serve_one(int(keys[i]), bool(is_get[i]))
            measured += 1
        return KvsWorkloadResult(
            requests=measured,
            total_cycles=total,
            freq_ghz=self.context.spec.freq_ghz,
        )
