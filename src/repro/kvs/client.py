"""A resilient KVS client: retry with capped exponential backoff.

The server side (:class:`~repro.kvs.server.KvsServer`) raises
:class:`~repro.faults.plan.KvsRequestFault` when the fault clock
injects a request failure.  This client is the recovery layer: it
retries the request after an exponentially growing, capped backoff,
within a per-request timeout budget — all measured in core cycles so
the cost of resilience shows up in the same unit as service time.

The client catches **only** ``KvsRequestFault``; genuine bugs in the
server propagate untouched.  Without faults it adds zero cycles and
performs no bookkeeping beyond one counter read, so fault-free results
are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.faults.plan import KvsRequestFault
from repro.kvs.server import KvsServer, KvsWorkloadResult


@dataclass
class RetryPolicy:
    """Backoff/timeout knobs, all in core cycles.

    The backoff before attempt *k* (k = 1 for the first retry) is
    ``min(base_backoff_cycles * 2**(k-1), max_backoff_cycles)``.
    A request whose attempts plus backoffs would exceed
    ``timeout_budget_cycles`` is abandoned and counted as failed.
    """

    max_attempts: int = 4
    base_backoff_cycles: int = 2_000
    max_backoff_cycles: int = 32_000
    timeout_budget_cycles: int = 200_000

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_cycles < 0 or self.max_backoff_cycles < 0:
            raise ValueError("backoff cycles must be non-negative")
        if self.timeout_budget_cycles <= 0:
            raise ValueError("timeout_budget_cycles must be positive")

    def backoff_cycles(self, retry_index: int) -> int:
        """Backoff before the *retry_index*-th retry (1-based)."""
        if retry_index < 1:
            raise ValueError(f"retry_index must be >= 1, got {retry_index}")
        shift = min(retry_index - 1, 62)  # avoid silly overflow
        return min(self.base_backoff_cycles << shift, self.max_backoff_cycles)


@dataclass
class ClientRunResult:
    """Aggregate outcome of a retried request stream."""

    requests: int
    succeeded: int
    failed: int
    retries: int
    total_cycles: int
    backoff_cycles: int
    freq_ghz: float

    @property
    def cycles_per_request(self) -> float:
        """Mean end-to-end cost per issued request (incl. backoffs)."""
        return self.total_cycles / self.requests if self.requests else 0.0

    @property
    def failure_fraction(self) -> float:
        """Fraction of requests abandoned after exhausting retries."""
        return self.failed / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return {
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "retries": self.retries,
            "total_cycles": self.total_cycles,
            "backoff_cycles": self.backoff_cycles,
            "cycles_per_request": self.cycles_per_request,
            "failure_fraction": self.failure_fraction,
        }


class RetryingKvsClient:
    """Issues requests against a server, absorbing injected failures."""

    def __init__(
        self,
        server: KvsServer,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.server = server
        self.policy = policy if policy is not None else RetryPolicy()
        self.retries = 0
        self.failed_requests = 0
        self.backoff_cycles_total = 0
        # Cycles burned by the most recent abandoned request (run()
        # charges them to the stream total; giving up is not free).
        self._last_failed_cycles = 0

    def request(self, key: int, is_get: bool) -> Optional[int]:
        """One request with retries; returns total cycles or ``None``.

        ``None`` means the request was abandoned: every attempt failed,
        or the timeout budget ran out before the next retry could be
        issued.  The spent cycles still accumulate into the run totals
        via :meth:`run` — giving up is not free.
        """
        policy = self.policy
        clock = self.server.faults
        spent = 0
        for attempt in range(policy.max_attempts):
            try:
                spent += self.server.serve_one(key, is_get)
                return spent
            except KvsRequestFault:
                # The injected failure is consumed here by design: this
                # is the recovery path the chaos layer exists to test.
                if attempt + 1 >= policy.max_attempts:
                    break
                backoff = policy.backoff_cycles(attempt + 1)
                if spent + backoff > policy.timeout_budget_cycles:
                    if clock is not None:
                        clock.count("kvs.timeout_abandons")
                    break
                spent += backoff
                self.backoff_cycles_total += backoff
                self.retries += 1
                if clock is not None:
                    clock.count("kvs.retries")
        self.failed_requests += 1
        if clock is not None:
            clock.count("kvs.failed_requests")
        self._last_failed_cycles = spent
        return None

    def run(
        self,
        keys: Sequence[int],
        is_get: Sequence[bool],
    ) -> ClientRunResult:
        """Issue a request stream; returns aggregate statistics."""
        if len(keys) != len(is_get):
            raise ValueError("keys and is_get must have equal length")
        total = 0
        succeeded = 0
        failed = 0
        self._last_failed_cycles = 0
        for key, get in zip(keys, is_get):
            cycles = self.request(int(key), bool(get))
            if cycles is None:
                failed += 1
                total += self._last_failed_cycles
            else:
                succeeded += 1
                total += cycles
        return ClientRunResult(
            requests=len(keys),
            succeeded=succeeded,
            failed=failed,
            retries=self.retries,
            total_cycles=total,
            backoff_cycles=self.backoff_cycles_total,
            freq_ghz=self.server.context.spec.freq_ghz,
        )
