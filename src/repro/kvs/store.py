"""KVS storage layout: index and value arrays.

The paper's emulated KVS stores 2^24 64 B values (1 GB) plus an index.
Two value placements are compared:

* **normal** — values contiguous: value *k* at ``base + 64k``; Complex
  Addressing spreads them over all slices.
* **slice-aware** — every value on a line mapping to the serving
  core's preferred slice.  With the published XOR hash each aligned
  8-line block contains exactly one line per slice, so the *k*-th
  slice-local line is found inside block *k* — :class:`SliceLocalArray`
  exploits that, paying 8× the physical address span for single-slice
  residency (the "memory fragmentation" cost §7 mentions).
"""

from __future__ import annotations

from typing import Optional

from repro.core.slice_aware import LinearBuffer, SliceAwareContext
from repro.mem.slice_array import SliceLocalArray
from repro.mem.address import CACHE_LINE, align_up


class KvsStore:
    """Index + value arrays for the emulated KVS.

    Args:
        context: machine context (provides hugepages and the hash).
        core: serving core (its preferred slice hosts values when
            slice-aware).
        n_keys: key-space size.
        slice_aware: placement policy for values.
        index_entry_bytes: bytes per index entry (key is the index, as
            in the paper's direct-indexed emulation).
    """

    VALUE_SIZE = 64  # the paper's 64 B values

    def __init__(
        self,
        context: SliceAwareContext,
        core: int,
        n_keys: int,
        slice_aware: bool,
        index_entry_bytes: int = 8,
        value_size: int = VALUE_SIZE,
    ) -> None:
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        if value_size <= 0 or value_size % CACHE_LINE:
            raise ValueError(
                f"value_size must be a positive multiple of {CACHE_LINE}, "
                f"got {value_size}"
            )
        self.context = context
        self.core = core
        self.n_keys = n_keys
        self.slice_aware = slice_aware
        self.index_entry_bytes = index_entry_bytes
        self.value_size = value_size
        self.lines_per_value = value_size // CACHE_LINE
        self.target_slice = context.preferred_slice(core)
        index_bytes = align_up(n_keys * index_entry_bytes, CACHE_LINE)
        index_page = context.address_space.mmap_auto(index_bytes)
        self._index_base = index_page.phys
        n_value_lines = n_keys * self.lines_per_value
        if slice_aware:
            # The XOR hash guarantees one line per slice in every
            # aligned n_slices-line block; other hashes get headroom.
            # Values larger than one line scatter over consecutive
            # slice-local lines — §8's linked-list scheme.
            from repro.cachesim.hashfn import ComplexAddressingHash

            if isinstance(context.hash, ComplexAddressingHash):
                block_lines = context.hash.n_slices
            else:
                block_lines = 4 * context.hash.n_slices
            span = n_value_lines * block_lines * CACHE_LINE
            value_page = context.address_space.mmap_auto(span)
            self._values = SliceLocalArray(
                base_phys=value_page.phys,
                n_lines=n_value_lines,
                slice_hash=context.hash,
                target_slice=self.target_slice,
                block_lines=block_lines,
            )
            self._value_base = None
        else:
            value_page = context.address_space.mmap_auto(n_value_lines * CACHE_LINE)
            self._values = None
            self._value_base = value_page.phys

    def index_address(self, key: int) -> int:
        """Physical address of the index entry's cache line."""
        self._check_key(key)
        return (self._index_base + key * self.index_entry_bytes) & ~(CACHE_LINE - 1)

    def value_address(self, key: int) -> int:
        """Physical address of the value's first cache line."""
        self._check_key(key)
        if self._values is not None:
            return self._values.line_address(key * self.lines_per_value)
        assert self._value_base is not None
        return self._value_base + key * self.value_size

    def value_addresses(self, key: int) -> list:
        """Physical addresses of every line of the value (§8: values
        larger than 64 B scatter over a slice-local linked list)."""
        self._check_key(key)
        if self._values is not None:
            first = key * self.lines_per_value
            return [
                self._values.line_address(first + i)
                for i in range(self.lines_per_value)
            ]
        assert self._value_base is not None
        base = self._value_base + key * self.value_size
        return [base + i * CACHE_LINE for i in range(self.lines_per_value)]

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.n_keys:
            raise KeyError(f"key {key} outside [0, {self.n_keys})")

    def __repr__(self) -> str:
        placement = "slice-aware" if self.slice_aware else "normal"
        return f"KvsStore(n_keys={self.n_keys}, placement={placement})"
