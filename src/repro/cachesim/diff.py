"""Differential testing of the fast batch engine against the reference.

The fast engine (:mod:`repro.cachesim.engine`) promises *bit-identical*
outcomes to the reference per-access path — same cycles, same servicing
level, same slice, same eviction and write-back decisions, and the same
final cache state.  This module makes that promise checkable: it replays
one randomized trace through two fresh hierarchies, one driven by
``access_line`` and one by ``access_batch``, optionally injecting "rare"
events (clflush, DDIO DMA, CAT reconfiguration) between chunks, and
compares both the per-access outcome streams and deep fingerprints of
the final state.

The same helpers back ``tests/test_engine_differential.py`` and the
Hypothesis property tests, so a shrunk counterexample from either can be
replayed here verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cachesim.ddio import DdioEngine
from repro.cachesim.hierarchy import CacheHierarchy
from repro.mem.address import CACHE_LINE

#: Maps ``AccessResult.level`` strings onto the engine's level codes.
LEVEL_CODES: Dict[str, int] = {"l1": 0, "l2": 1, "llc": 2, "dram": 3}


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------


@dataclass
class Trace:
    """One randomized access trace (line-aligned addresses)."""

    addresses: List[int]
    writes: List[bool]
    cores: List[int]

    def __len__(self) -> int:
        return len(self.addresses)

    def chunks(self, chunk_size: int) -> List[Tuple[List[int], List[bool], List[int]]]:
        """Split into ``chunk_size``-long pieces (last one may be short)."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        out = []
        for start in range(0, len(self.addresses), chunk_size):
            stop = start + chunk_size
            out.append(
                (
                    self.addresses[start:stop],
                    self.writes[start:stop],
                    self.cores[start:stop],
                )
            )
        return out


def random_trace(
    rng: random.Random,
    n_accesses: int,
    n_cores: int,
    hot_lines: int = 64,
    hot_fraction: float = 0.5,
    warm_span: int = 1 << 24,
    cold_span: int = 1 << 30,
    write_fraction: float = 0.3,
) -> Trace:
    """Build a mixed locality trace: hot reuse, warm region, cold misses.

    The mix deliberately exercises every hierarchy level: the hot set
    lives in L1/L2, the warm region churns the LLC, and the cold span
    streams through DRAM (forcing evictions, back-invalidations and
    dirty write-backs when combined with stores).
    """
    hot = [rng.randrange(0, warm_span) & ~(CACHE_LINE - 1) for _ in range(hot_lines)]
    addresses: List[int] = []
    writes: List[bool] = []
    cores: List[int] = []
    for _ in range(n_accesses):
        r = rng.random()
        if r < hot_fraction:
            address = rng.choice(hot)
        elif r < (1 + hot_fraction) / 2:
            address = rng.randrange(0, warm_span) & ~(CACHE_LINE - 1)
        else:
            address = rng.randrange(0, cold_span) & ~(CACHE_LINE - 1)
        addresses.append(address)
        writes.append(rng.random() < write_fraction)
        cores.append(rng.randrange(n_cores))
    return Trace(addresses, writes, cores)


# ----------------------------------------------------------------------
# State fingerprinting
# ----------------------------------------------------------------------


def state_fingerprint(hierarchy: CacheHierarchy) -> dict:
    """Deep, order-independent digest of all mutable simulator state.

    Covers the aggregate statistics, every per-slice uncore counter,
    the contents (line, dirty) of every L1/L2 set and every LLC set.
    Two hierarchies with equal fingerprints are observably identical to
    any future access sequence except for replacement-order state,
    which the per-access outcome comparison covers instead.
    """
    fp: dict = {"stats": dict(hierarchy.stats.__dict__)}
    fp["counters"] = [
        dict(slice_counter.counts)
        for slice_counter in hierarchy.llc.counters.slices
    ]
    for name, caches in (("l1", hierarchy.l1s), ("l2", hierarchy.l2s)):
        fp[name] = [
            sorted(cache._sets[i].items())
            for cache in caches
            for i in range(len(cache._sets))
        ]
    fp["llc"] = [
        [
            sorted(
                (tag, bool(slc._dirty[set_i][way]))
                for way, tag in enumerate(ways)
                if tag is not None
            )
            for set_i, ways in enumerate(slc._tags)
        ]
        for slc in hierarchy.llc.slices
    ]
    return fp


# ----------------------------------------------------------------------
# Rare-event injection
# ----------------------------------------------------------------------


def make_rare_events(
    rng: random.Random,
    trace: Trace,
    n_cores: int,
    n_ways: int,
) -> List[Callable[[CacheHierarchy], None]]:
    """Build one randomized rare-event closure per chunk boundary.

    Each closure runs *identically* on both hierarchies, driving the
    code paths the batch engine deliberately leaves on the reference
    implementation: clflush, DDIO DMA traffic, and CAT reconfiguration.
    """
    lines = trace.addresses

    def clflush_event(address: int, size: int):
        def run(h: CacheHierarchy) -> None:
            h.clflush(address, size)

        return run

    def ddio_event(address: int, size: int, is_write: bool):
        def run(h: CacheHierarchy) -> None:
            engine = DdioEngine(h)
            if is_write:
                engine.dma_write(address, size)
            else:
                engine.dma_read(address, size)

        return run

    def cat_event(way_mask: int, assignments: List[int]):
        def run(h: CacheHierarchy) -> None:
            cat = h.llc.cat
            cat.define_clos(1, way_mask)
            for core, clos in enumerate(assignments):
                cat.assign_core(core, clos)

        return run

    def cat_reset_event():
        def run(h: CacheHierarchy) -> None:
            h.llc.cat.reset()

        return run

    events: List[Callable[[CacheHierarchy], None]] = []
    kinds = ["clflush", "ddio_write", "ddio_read", "cat", "cat_reset", "none"]
    for _ in range(max(0, len(lines) - 1)):
        kind = rng.choice(kinds)
        address = rng.choice(lines)
        if kind == "clflush":
            events.append(clflush_event(address, rng.choice([1, CACHE_LINE, 256])))
        elif kind == "ddio_write":
            events.append(ddio_event(address, rng.choice([64, 128, 1500]), True))
        elif kind == "ddio_read":
            events.append(ddio_event(address, rng.choice([64, 128]), False))
        elif kind == "cat":
            low_half = (1 << max(1, n_ways // 2)) - 1
            assignments = [rng.randrange(2) for _ in range(n_cores)]
            events.append(cat_event(low_half, assignments))
        elif kind == "cat_reset":
            events.append(cat_reset_event())
        else:
            events.append(lambda h: None)
    return events


# ----------------------------------------------------------------------
# Replay + comparison
# ----------------------------------------------------------------------


@dataclass
class DiffReport:
    """Outcome of one differential replay."""

    n_accesses: int
    equal: bool
    first_divergence: Optional[int] = None
    detail: str = ""
    reference_outcomes: List[Tuple[int, int, int]] = field(default_factory=list)
    fast_outcomes: List[Tuple[int, int, int]] = field(default_factory=list)


def _reference_outcomes(
    hierarchy: CacheHierarchy,
    addresses: Sequence[int],
    writes: Sequence[bool],
    cores: Sequence[int],
) -> List[Tuple[int, int, int]]:
    out = []
    mask = ~(CACHE_LINE - 1)
    for address, write, core in zip(addresses, writes, cores):
        result = hierarchy.access_line(core, address & mask, write)
        slice_index = result.slice_index if result.slice_index is not None else -1
        out.append((result.cycles, LEVEL_CODES[result.level], slice_index))
    return out


def _fast_outcomes(
    hierarchy: CacheHierarchy,
    addresses: Sequence[int],
    writes: Sequence[bool],
    cores: Sequence[int],
) -> List[Tuple[int, int, int]]:
    batch = hierarchy.access_batch(addresses, writes, cores, engine="fast")
    return list(
        zip(
            batch.cycles.tolist(),
            batch.levels.tolist(),
            batch.slices.tolist(),
        )
    )


def run_differential(
    build: Callable[[], CacheHierarchy],
    trace: Trace,
    chunk_size: int = 1024,
    rare_events: Optional[Sequence[Callable[[CacheHierarchy], None]]] = None,
    keep_outcomes: bool = False,
) -> DiffReport:
    """Replay *trace* through reference and fast engines and compare.

    Args:
        build: zero-argument factory producing a fresh hierarchy (it is
            called twice; both instances must be identically
            configured).
        trace: the access trace to replay.
        chunk_size: accesses per ``access_batch`` call on the fast
            side (the reference side always goes line by line).
        rare_events: optional per-chunk-boundary closures executed on
            both hierarchies between chunks.
        keep_outcomes: retain the full outcome streams in the report
            (useful when printing a divergence).

    Returns:
        A :class:`DiffReport`; ``equal`` is True only if every
        per-access outcome matches AND the final state fingerprints
        (including uncore counters) are identical.
    """
    reference = build()
    fast = build()
    # Install the fast engine for real on the fast hierarchy so rare
    # events dispatch exactly as production call sites would (in
    # particular DdioEngine's flattened DMA spans).
    fast.set_engine("fast")
    ref_out: List[Tuple[int, int, int]] = []
    fast_out: List[Tuple[int, int, int]] = []
    chunks = trace.chunks(chunk_size)
    for index, (addresses, writes, cores) in enumerate(chunks):
        ref_out.extend(_reference_outcomes(reference, addresses, writes, cores))
        fast_out.extend(_fast_outcomes(fast, addresses, writes, cores))
        if rare_events is not None and index < len(chunks) - 1:
            event = rare_events[index % len(rare_events)]
            event(reference)
            event(fast)
    report = DiffReport(n_accesses=len(trace), equal=True)
    if keep_outcomes:
        report.reference_outcomes = ref_out
        report.fast_outcomes = fast_out
    for i, (r, f) in enumerate(zip(ref_out, fast_out)):
        if r != f:
            report.equal = False
            report.first_divergence = i
            report.detail = (
                f"access {i}: reference (cycles, level, slice)={r} "
                f"!= fast {f} for address "
                f"{trace.addresses[i]:#x} write={trace.writes[i]} "
                f"core={trace.cores[i]}"
            )
            return report
    ref_fp = state_fingerprint(reference)
    fast_fp = state_fingerprint(fast)
    if ref_fp != fast_fp:
        report.equal = False
        diverging = [k for k in ref_fp if ref_fp[k] != fast_fp[k]]
        report.detail = f"state fingerprints diverge in: {diverging}"
    return report


# ----------------------------------------------------------------------
# Dataplane-level differential replay (scalar vs batched)
# ----------------------------------------------------------------------


@dataclass
class DataplaneDiffReport:
    """Outcome of one scalar-vs-batched dataplane replay."""

    n_packets: int
    equal: bool
    #: Names of the observables that diverged (empty when equal).
    mismatches: List[str] = field(default_factory=list)
    detail: str = ""


def _chain_counters(env) -> Dict[str, int]:
    """Every integer counter on the chain and its NFs (control state)."""
    out: Dict[str, int] = {"packets_processed": env.chain.packets_processed}
    for i, nf in enumerate(env.chain.nfs):
        for key, value in vars(nf).items():
            if isinstance(value, (int, bool)):
                out[f"nf{i}.{nf.name}.{key}"] = int(value)
            elif isinstance(value, dict):
                out[f"nf{i}.{nf.name}.len({key})"] = len(value)
    return out


def run_dataplane_differential(
    chain_factory,
    n_packets: int = 1000,
    trace_seed: int = 7,
    rate_pps: float = 1e6,
    scalar_engine: str = "reference",
    batched_engine: str = "fast",
    plan: Optional[object] = None,
    **config_kwargs,
) -> DataplaneDiffReport:
    """Replay one packet trace through the scalar and batched dataplanes.

    Builds two identically-configured :class:`~repro.net.chain.
    DutEnvironment` instances — one ``dataplane="scalar"`` on
    *scalar_engine*, one ``dataplane="batched"`` on *batched_engine* —
    drives the same :class:`~repro.net.trace.CampusTraceGenerator`
    trace through both in arrival order, and compares every observable
    the batched rewrite could possibly perturb: per-packet cycles
    (including ``None`` drop positions), NIC and DDIO statistics,
    mempool occupancy and allocation failures, PMD FCS discards,
    descriptor-ring slots, chain/NF control counters, injected-fault
    counters (when *plan* arms a chaos plan, applied to both sides
    from the same seed), and the deep cache-state fingerprint.

    Extra keyword arguments become shared
    :class:`~repro.net.chain.DutConfig` fields (``cache_director``,
    ``ddio_enabled``, ``watermarks``, ...).
    """
    from repro.faults.plan import FaultClock, resolve_plan
    from repro.net.chain import DutConfig, DutEnvironment
    from repro.net.trace import CampusTraceGenerator

    def run(engine: str, dataplane: str):
        config = DutConfig(
            engine=engine, dataplane=dataplane, **config_kwargs
        )
        resolved = resolve_plan(plan)
        faults = FaultClock(resolved) if resolved is not None else None
        env = DutEnvironment(config, chain_factory=chain_factory, faults=faults)
        packets = CampusTraceGenerator(seed=trace_seed).generate(
            n_packets, rate_pps=rate_pps
        )
        queues = [p.packet_id % env.nic.n_queues for p in packets]
        return env.service_cycles(packets, queues), env

    scalar_cycles, scalar_env = run(scalar_engine, "scalar")
    batched_cycles, batched_env = run(batched_engine, "batched")

    observables = [
        ("per_packet_cycles", scalar_cycles, batched_cycles),
        ("nic_stats", scalar_env.nic.stats, batched_env.nic.stats),
        ("ddio_stats", scalar_env.ddio.stats, batched_env.ddio.stats),
        (
            "mempool",
            (scalar_env.mempool.available, scalar_env.mempool.alloc_failures),
            (
                batched_env.mempool.available,
                batched_env.mempool.alloc_failures,
            ),
        ),
        (
            "fcs_discards",
            scalar_env.pmd.fcs_discards,
            batched_env.pmd.fcs_discards,
        ),
        (
            "descriptor_slots",
            scalar_env.nic._descriptor_slot,
            batched_env.nic._descriptor_slot,
        ),
        (
            "chain_counters",
            _chain_counters(scalar_env),
            _chain_counters(batched_env),
        ),
        (
            "fault_counters",
            scalar_env.faults.stats.to_dict()
            if scalar_env.faults is not None
            else None,
            batched_env.faults.stats.to_dict()
            if batched_env.faults is not None
            else None,
        ),
        (
            "state_fingerprint",
            state_fingerprint(scalar_env.hierarchy),
            state_fingerprint(batched_env.hierarchy),
        ),
    ]
    report = DataplaneDiffReport(n_packets=n_packets, equal=True)
    for name, scalar_value, batched_value in observables:
        if scalar_value != batched_value:
            report.equal = False
            report.mismatches.append(name)
    if not report.equal:
        first = report.mismatches[0]
        if first == "per_packet_cycles":
            for i, (s, b) in enumerate(zip(scalar_cycles, batched_cycles)):
                if s != b:
                    report.detail = (
                        f"packet {i}: scalar cycles {s} != batched {b}"
                    )
                    break
        else:
            report.detail = f"dataplanes diverge in: {report.mismatches}"
    return report


def run_fleet_differential(**cell_kwargs) -> DataplaneDiffReport:
    """Run one fleet cell scalar and batched; compare full payloads.

    Keyword arguments are forwarded to
    :func:`~repro.fleet.cluster.run_fleet_cell` (minus ``dataplane``,
    which this sets per side).  The comparison covers the entire
    persisted cell payload — latency summaries, goodput, per-server
    stats, kill events and fault counters — the strongest observable
    equality the fleet path exposes.
    """
    from repro.fleet.cluster import run_fleet_cell

    scalar = run_fleet_cell(dataplane="scalar", **cell_kwargs).to_dict()
    batched = run_fleet_cell(dataplane="batched", **cell_kwargs).to_dict()
    requests = int(scalar["requests"])
    report = DataplaneDiffReport(n_packets=requests, equal=True)
    for key in scalar:
        if scalar[key] != batched[key]:
            report.equal = False
            report.mismatches.append(key)
    if not report.equal:
        report.detail = f"fleet payloads diverge in: {report.mismatches}"
    return report
