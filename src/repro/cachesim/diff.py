"""Differential testing of the fast batch engine against the reference.

The fast engine (:mod:`repro.cachesim.engine`) promises *bit-identical*
outcomes to the reference per-access path — same cycles, same servicing
level, same slice, same eviction and write-back decisions, and the same
final cache state.  This module makes that promise checkable: it replays
one randomized trace through two fresh hierarchies, one driven by
``access_line`` and one by ``access_batch``, optionally injecting "rare"
events (clflush, DDIO DMA, CAT reconfiguration) between chunks, and
compares both the per-access outcome streams and deep fingerprints of
the final state.

The same helpers back ``tests/test_engine_differential.py`` and the
Hypothesis property tests, so a shrunk counterexample from either can be
replayed here verbatim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cachesim.ddio import DdioEngine
from repro.cachesim.hierarchy import CacheHierarchy
from repro.mem.address import CACHE_LINE

#: Maps ``AccessResult.level`` strings onto the engine's level codes.
LEVEL_CODES: Dict[str, int] = {"l1": 0, "l2": 1, "llc": 2, "dram": 3}


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------


@dataclass
class Trace:
    """One randomized access trace (line-aligned addresses)."""

    addresses: List[int]
    writes: List[bool]
    cores: List[int]

    def __len__(self) -> int:
        return len(self.addresses)

    def chunks(self, chunk_size: int) -> List[Tuple[List[int], List[bool], List[int]]]:
        """Split into ``chunk_size``-long pieces (last one may be short)."""
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        out = []
        for start in range(0, len(self.addresses), chunk_size):
            stop = start + chunk_size
            out.append(
                (
                    self.addresses[start:stop],
                    self.writes[start:stop],
                    self.cores[start:stop],
                )
            )
        return out


def random_trace(
    rng: random.Random,
    n_accesses: int,
    n_cores: int,
    hot_lines: int = 64,
    hot_fraction: float = 0.5,
    warm_span: int = 1 << 24,
    cold_span: int = 1 << 30,
    write_fraction: float = 0.3,
) -> Trace:
    """Build a mixed locality trace: hot reuse, warm region, cold misses.

    The mix deliberately exercises every hierarchy level: the hot set
    lives in L1/L2, the warm region churns the LLC, and the cold span
    streams through DRAM (forcing evictions, back-invalidations and
    dirty write-backs when combined with stores).
    """
    hot = [rng.randrange(0, warm_span) & ~(CACHE_LINE - 1) for _ in range(hot_lines)]
    addresses: List[int] = []
    writes: List[bool] = []
    cores: List[int] = []
    for _ in range(n_accesses):
        r = rng.random()
        if r < hot_fraction:
            address = rng.choice(hot)
        elif r < (1 + hot_fraction) / 2:
            address = rng.randrange(0, warm_span) & ~(CACHE_LINE - 1)
        else:
            address = rng.randrange(0, cold_span) & ~(CACHE_LINE - 1)
        addresses.append(address)
        writes.append(rng.random() < write_fraction)
        cores.append(rng.randrange(n_cores))
    return Trace(addresses, writes, cores)


# ----------------------------------------------------------------------
# State fingerprinting
# ----------------------------------------------------------------------


def state_fingerprint(hierarchy: CacheHierarchy) -> dict:
    """Deep, order-independent digest of all mutable simulator state.

    Covers the aggregate statistics, every per-slice uncore counter,
    the contents (line, dirty) of every L1/L2 set and every LLC set.
    Two hierarchies with equal fingerprints are observably identical to
    any future access sequence except for replacement-order state,
    which the per-access outcome comparison covers instead.
    """
    fp: dict = {"stats": dict(hierarchy.stats.__dict__)}
    fp["counters"] = [
        dict(slice_counter.counts)
        for slice_counter in hierarchy.llc.counters.slices
    ]
    for name, caches in (("l1", hierarchy.l1s), ("l2", hierarchy.l2s)):
        fp[name] = [
            sorted(cache._sets[i].items())
            for cache in caches
            for i in range(len(cache._sets))
        ]
    fp["llc"] = [
        [
            sorted(
                (tag, bool(slc._dirty[set_i][way]))
                for way, tag in enumerate(ways)
                if tag is not None
            )
            for set_i, ways in enumerate(slc._tags)
        ]
        for slc in hierarchy.llc.slices
    ]
    return fp


# ----------------------------------------------------------------------
# Rare-event injection
# ----------------------------------------------------------------------


def make_rare_events(
    rng: random.Random,
    trace: Trace,
    n_cores: int,
    n_ways: int,
) -> List[Callable[[CacheHierarchy], None]]:
    """Build one randomized rare-event closure per chunk boundary.

    Each closure runs *identically* on both hierarchies, driving the
    code paths the batch engine deliberately leaves on the reference
    implementation: clflush, DDIO DMA traffic, and CAT reconfiguration.
    """
    lines = trace.addresses

    def clflush_event(address: int, size: int):
        def run(h: CacheHierarchy) -> None:
            h.clflush(address, size)

        return run

    def ddio_event(address: int, size: int, is_write: bool):
        def run(h: CacheHierarchy) -> None:
            engine = DdioEngine(h)
            if is_write:
                engine.dma_write(address, size)
            else:
                engine.dma_read(address, size)

        return run

    def cat_event(way_mask: int, assignments: List[int]):
        def run(h: CacheHierarchy) -> None:
            cat = h.llc.cat
            cat.define_clos(1, way_mask)
            for core, clos in enumerate(assignments):
                cat.assign_core(core, clos)

        return run

    def cat_reset_event():
        def run(h: CacheHierarchy) -> None:
            h.llc.cat.reset()

        return run

    events: List[Callable[[CacheHierarchy], None]] = []
    kinds = ["clflush", "ddio_write", "ddio_read", "cat", "cat_reset", "none"]
    for _ in range(max(0, len(lines) - 1)):
        kind = rng.choice(kinds)
        address = rng.choice(lines)
        if kind == "clflush":
            events.append(clflush_event(address, rng.choice([1, CACHE_LINE, 256])))
        elif kind == "ddio_write":
            events.append(ddio_event(address, rng.choice([64, 128, 1500]), True))
        elif kind == "ddio_read":
            events.append(ddio_event(address, rng.choice([64, 128]), False))
        elif kind == "cat":
            low_half = (1 << max(1, n_ways // 2)) - 1
            assignments = [rng.randrange(2) for _ in range(n_cores)]
            events.append(cat_event(low_half, assignments))
        elif kind == "cat_reset":
            events.append(cat_reset_event())
        else:
            events.append(lambda h: None)
    return events


# ----------------------------------------------------------------------
# Replay + comparison
# ----------------------------------------------------------------------


@dataclass
class DiffReport:
    """Outcome of one differential replay."""

    n_accesses: int
    equal: bool
    first_divergence: Optional[int] = None
    detail: str = ""
    reference_outcomes: List[Tuple[int, int, int]] = field(default_factory=list)
    fast_outcomes: List[Tuple[int, int, int]] = field(default_factory=list)


def _reference_outcomes(
    hierarchy: CacheHierarchy,
    addresses: Sequence[int],
    writes: Sequence[bool],
    cores: Sequence[int],
) -> List[Tuple[int, int, int]]:
    out = []
    mask = ~(CACHE_LINE - 1)
    for address, write, core in zip(addresses, writes, cores):
        result = hierarchy.access_line(core, address & mask, write)
        slice_index = result.slice_index if result.slice_index is not None else -1
        out.append((result.cycles, LEVEL_CODES[result.level], slice_index))
    return out


def _fast_outcomes(
    hierarchy: CacheHierarchy,
    addresses: Sequence[int],
    writes: Sequence[bool],
    cores: Sequence[int],
) -> List[Tuple[int, int, int]]:
    batch = hierarchy.access_batch(addresses, writes, cores, engine="fast")
    return list(
        zip(
            batch.cycles.tolist(),
            batch.levels.tolist(),
            batch.slices.tolist(),
        )
    )


def run_differential(
    build: Callable[[], CacheHierarchy],
    trace: Trace,
    chunk_size: int = 1024,
    rare_events: Optional[Sequence[Callable[[CacheHierarchy], None]]] = None,
    keep_outcomes: bool = False,
) -> DiffReport:
    """Replay *trace* through reference and fast engines and compare.

    Args:
        build: zero-argument factory producing a fresh hierarchy (it is
            called twice; both instances must be identically
            configured).
        trace: the access trace to replay.
        chunk_size: accesses per ``access_batch`` call on the fast
            side (the reference side always goes line by line).
        rare_events: optional per-chunk-boundary closures executed on
            both hierarchies between chunks.
        keep_outcomes: retain the full outcome streams in the report
            (useful when printing a divergence).

    Returns:
        A :class:`DiffReport`; ``equal`` is True only if every
        per-access outcome matches AND the final state fingerprints
        (including uncore counters) are identical.
    """
    reference = build()
    fast = build()
    # Install the fast engine for real on the fast hierarchy so rare
    # events dispatch exactly as production call sites would (in
    # particular DdioEngine's flattened DMA spans).
    fast.set_engine("fast")
    ref_out: List[Tuple[int, int, int]] = []
    fast_out: List[Tuple[int, int, int]] = []
    chunks = trace.chunks(chunk_size)
    for index, (addresses, writes, cores) in enumerate(chunks):
        ref_out.extend(_reference_outcomes(reference, addresses, writes, cores))
        fast_out.extend(_fast_outcomes(fast, addresses, writes, cores))
        if rare_events is not None and index < len(chunks) - 1:
            event = rare_events[index % len(rare_events)]
            event(reference)
            event(fast)
    report = DiffReport(n_accesses=len(trace), equal=True)
    if keep_outcomes:
        report.reference_outcomes = ref_out
        report.fast_outcomes = fast_out
    for i, (r, f) in enumerate(zip(ref_out, fast_out)):
        if r != f:
            report.equal = False
            report.first_divergence = i
            report.detail = (
                f"access {i}: reference (cycles, level, slice)={r} "
                f"!= fast {f} for address "
                f"{trace.addresses[i]:#x} write={trace.writes[i]} "
                f"core={trace.cores[i]}"
            )
            return report
    ref_fp = state_fingerprint(reference)
    fast_fp = state_fingerprint(fast)
    if ref_fp != fast_fp:
        report.equal = False
        diverging = [k for k in ref_fp if ref_fp[k] != fast_fp[k]]
        report.detail = f"state fingerprints diverge in: {diverging}"
    return report
