"""NUCA interconnect latency models.

Accessing an LLC slice costs the base LLC pipeline latency plus a
distance term that depends on which core asks and which slice answers.
The paper measures this distance term empirically (Fig. 5a for the
Haswell ring, Fig. 16 for the Skylake mesh) rather than deriving it
from the die floorplan, and so do we: the models here are *parametric
latency matrices* calibrated to reproduce the measured structure.

* :class:`RingInterconnect` — Haswell-style bidirectional ring.  The
  measured pattern is bimodal (even slices cheap from even cores, §2.2):
  same-parity slices sit on the requesting core's side of the ring and
  cost ``hop_cycles`` per stop, opposite-parity slices additionally pay
  a ring-crossing penalty.
* :class:`MeshInterconnect` — Manhattan-distance mesh for arbitrary
  core/slice coordinates (Skylake-style).
* :class:`TableInterconnect` — explicit per-(core, slice) latency
  matrix, used to encode measured Skylake data (Fig. 16 / Table 4).
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, Tuple


class Interconnect(Protocol):
    """Distance-latency provider between cores and LLC slices."""

    n_cores: int
    n_slices: int

    def latency(self, core: int, slice_index: int) -> int:
        """Extra cycles to reach *slice_index* from *core* (>= 0)."""


def preferred_slices(interconnect: Interconnect, core: int) -> List[int]:
    """Return slice indices sorted from cheapest to most expensive.

    Ties break toward lower slice indices, making the result
    deterministic; the first element is the core's *primary* slice in
    the paper's Table 4 terminology.
    """
    return sorted(
        range(interconnect.n_slices),
        key=lambda s: (interconnect.latency(core, s), s),
    )


class RingInterconnect:
    """Bidirectional ring with a parity-crossing penalty (Haswell).

    Cores and slices are co-located at ring stops (core *i* shares a
    stop with slice *i*).  Stops of equal parity lie on the same
    physical side of the ring; reaching the other side pays
    ``cross_penalty`` cycles.  Within a side, cost is ``hop_cycles``
    per hop of the 4-stop sub-ring.

    With the defaults and 8 stops this yields, from core 0:
    slices 0/2/4/6 at +0/+4/+8/+4 cycles and slices 1/3/5/7 at
    +14/+18/+22/+18 — the bimodal, ~20-cycle-spread structure of
    Fig. 5a.
    """

    def __init__(
        self,
        n_stops: int = 8,
        hop_cycles: int = 4,
        cross_penalty: int = 14,
    ) -> None:
        if n_stops <= 0 or n_stops % 2:
            raise ValueError(f"n_stops must be positive and even, got {n_stops}")
        if hop_cycles < 0 or cross_penalty < 0:
            raise ValueError("latencies must be non-negative")
        self.n_cores = n_stops
        self.n_slices = n_stops
        self.hop_cycles = hop_cycles
        self.cross_penalty = cross_penalty
        self._half = n_stops // 2

    def latency(self, core: int, slice_index: int) -> int:
        """Extra cycles from *core* to *slice_index*."""
        self._check(core, slice_index)
        position_a = core // 2
        position_b = slice_index // 2
        distance = abs(position_a - position_b)
        distance = min(distance, self._half - distance)
        cost = self.hop_cycles * distance
        if (core ^ slice_index) & 1:
            cost += self.cross_penalty
        return cost

    def _check(self, core: int, slice_index: int) -> None:
        if not 0 <= core < self.n_cores:
            raise IndexError(f"core {core} out of range 0..{self.n_cores - 1}")
        if not 0 <= slice_index < self.n_slices:
            raise IndexError(
                f"slice {slice_index} out of range 0..{self.n_slices - 1}"
            )

    def __repr__(self) -> str:
        return (
            f"RingInterconnect(n_stops={self.n_cores}, "
            f"hop_cycles={self.hop_cycles}, cross_penalty={self.cross_penalty})"
        )


class MeshInterconnect:
    """Manhattan-distance mesh between explicit coordinates.

    Args:
        core_coords: ``(x, y)`` per core index.
        slice_coords: ``(x, y)`` per slice index.
        hop_cycles: cycles per mesh hop (horizontal and vertical hops
            cost the same; Skylake's vertical hops are in reality
            slightly cheaper, which :class:`TableInterconnect` can
            capture when calibrating against measurements).
    """

    def __init__(
        self,
        core_coords: Sequence[Tuple[int, int]],
        slice_coords: Sequence[Tuple[int, int]],
        hop_cycles: int = 2,
    ) -> None:
        if not core_coords or not slice_coords:
            raise ValueError("coordinates must be non-empty")
        if hop_cycles < 0:
            raise ValueError("hop_cycles must be non-negative")
        self._cores = list(core_coords)
        self._slices = list(slice_coords)
        self.n_cores = len(self._cores)
        self.n_slices = len(self._slices)
        self.hop_cycles = hop_cycles

    def latency(self, core: int, slice_index: int) -> int:
        """Extra cycles from *core* to *slice_index*."""
        cx, cy = self._cores[core]
        sx, sy = self._slices[slice_index]
        return self.hop_cycles * (abs(cx - sx) + abs(cy - sy))

    def __repr__(self) -> str:
        return (
            f"MeshInterconnect(n_cores={self.n_cores}, "
            f"n_slices={self.n_slices}, hop_cycles={self.hop_cycles})"
        )


class TableInterconnect:
    """Explicit per-(core, slice) extra-latency matrix.

    Used to encode empirically measured NUCA matrices — exactly what
    the paper does for its Skylake part, where the hash and floorplan
    are unknown but the latencies are measurable via polling.
    """

    def __init__(self, matrix: Sequence[Sequence[int]]) -> None:
        if not matrix or not matrix[0]:
            raise ValueError("matrix must be non-empty")
        width = len(matrix[0])
        for row in matrix:
            if len(row) != width:
                raise ValueError("matrix rows must have equal length")
            for value in row:
                if value < 0:
                    raise ValueError("latencies must be non-negative")
        self._matrix: List[List[int]] = [list(row) for row in matrix]
        self.n_cores = len(self._matrix)
        self.n_slices = width

    def latency(self, core: int, slice_index: int) -> int:
        """Extra cycles from *core* to *slice_index*."""
        return self._matrix[core][slice_index]

    @classmethod
    def from_preferences(
        cls,
        n_cores: int,
        n_slices: int,
        primary: Dict[int, int],
        secondary: Dict[int, Sequence[int]],
        secondary_extra: int = 4,
        far_base: int = 10,
        far_spread: int = 20,
    ) -> "TableInterconnect":
        """Build a matrix realising a primary/secondary preference table.

        Every core's primary slice costs +0, its secondary slices
        ``secondary_extra``, and all remaining slices a deterministic
        value in ``[far_base, far_base + far_spread)`` derived from the
        (core, slice) pair — mimicking the scatter of measured far
        latencies without disturbing the preference order.
        """
        if far_base <= secondary_extra:
            raise ValueError("far_base must exceed secondary_extra")
        matrix: List[List[int]] = []
        for core in range(n_cores):
            row: List[int] = []
            secondaries = set(secondary.get(core, ()))
            for slice_index in range(n_slices):
                if slice_index == primary.get(core):
                    row.append(0)
                elif slice_index in secondaries:
                    row.append(secondary_extra)
                else:
                    jitter = (7 * core + 5 * slice_index + 3) % max(1, far_spread)
                    row.append(far_base + (jitter & ~1))
            matrix.append(row)
        return cls(matrix)

    def __repr__(self) -> str:
        return f"TableInterconnect(n_cores={self.n_cores}, n_slices={self.n_slices})"
