"""Cache Allocation Technology (CAT) — LLC way partitioning.

Intel CAT assigns each logical processor a *class of service* (CLOS);
each CLOS owns a contiguous bitmask of LLC ways, and fills triggered by
a core may only claim ways inside its CLOS mask.  The paper (§7) uses
CAT as the baseline cache-isolation mechanism that slice-aware
allocation is compared against.

The controller validates masks the way real hardware does: non-empty
and contiguous (the SDM requires contiguous capacity masks).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def _is_contiguous(mask: int) -> bool:
    """Return whether the set bits of *mask* form one contiguous run."""
    if mask == 0:
        return False
    shifted = mask >> (mask & -mask).bit_length() - 1
    return (shifted & (shifted + 1)) == 0


class CatController:
    """Way-mask bookkeeping for one socket's LLC.

    Args:
        n_ways: LLC associativity (masks are ``n_ways`` bits wide).
        n_cores: number of cores that can be associated with a CLOS.

    By default every core belongs to CLOS 0, which owns all ways —
    i.e. CAT disabled.
    """

    def __init__(self, n_ways: int, n_cores: int) -> None:
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        self.n_ways = n_ways
        self.n_cores = n_cores
        self._full_mask = (1 << n_ways) - 1
        self._clos_masks: Dict[int, int] = {0: self._full_mask}
        self._core_clos: List[int] = [0] * n_cores
        self._ways_cache: Dict[int, Tuple[int, ...]] = {}
        #: Monotonic configuration version; bumped on every CLOS or
        #: core-association change so cached mask lookups (e.g. the
        #: fast engine's per-core way tables) can invalidate cheaply.
        self.generation = 0

    def define_clos(self, clos: int, way_mask: int) -> None:
        """Define or redefine a class of service.

        Raises:
            ValueError: if the mask is empty, non-contiguous, or wider
                than the cache (mirroring a #GP on the real MSR write).
        """
        if clos < 0:
            raise ValueError(f"clos must be non-negative, got {clos}")
        if way_mask & ~self._full_mask:
            raise ValueError(
                f"way mask {way_mask:#x} exceeds {self.n_ways} ways"
            )
        if not _is_contiguous(way_mask):
            raise ValueError(
                f"way mask {way_mask:#x} must be non-empty and contiguous"
            )
        self._clos_masks[clos] = way_mask
        self._ways_cache.clear()
        self.generation += 1

    def assign_core(self, core: int, clos: int) -> None:
        """Associate *core* with a previously defined CLOS."""
        if not 0 <= core < self.n_cores:
            raise IndexError(f"core {core} out of range 0..{self.n_cores - 1}")
        if clos not in self._clos_masks:
            raise KeyError(f"CLOS {clos} has not been defined")
        self._core_clos[core] = clos
        self.generation += 1

    def clos_of(self, core: int) -> int:
        """Return the CLOS currently associated with *core*."""
        return self._core_clos[core]

    def mask_of(self, core: int) -> int:
        """Return the way mask governing fills by *core*."""
        return self._clos_masks[self._core_clos[core]]

    def allowed_ways(self, core: int) -> Tuple[int, ...]:
        """Return the way indices *core* may fill into (cached)."""
        clos = self._core_clos[core]
        ways = self._ways_cache.get(clos)
        if ways is None:
            mask = self._clos_masks[clos]
            ways = tuple(w for w in range(self.n_ways) if mask & (1 << w))
            self._ways_cache[clos] = ways
        return ways

    def is_enabled(self) -> bool:
        """Return whether any core is restricted below the full mask."""
        return any(
            self._clos_masks[self._core_clos[c]] != self._full_mask
            for c in range(self.n_cores)
        )

    def reset(self) -> None:
        """Return to the power-on state: one CLOS owning every way."""
        self._clos_masks = {0: self._full_mask}
        self._core_clos = [0] * self.n_cores
        self._ways_cache.clear()
        self.generation += 1
