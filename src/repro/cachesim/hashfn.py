"""Intel LLC Complex Addressing hash functions.

The slice a physical address maps to is ``h(PA)`` for an undocumented
hash ``h``.  For CPUs with ``2**n`` cores, Maurice et al. (RAID '15)
showed — and the paper verified for its Xeon E5-2667 v3 (Fig. 4) —
that each output bit of ``h`` is the XOR (parity) of a fixed subset of
physical address bits.  :class:`ComplexAddressingHash` implements that
family; :data:`HASWELL_MASKS_8_SLICE` is the published 8-slice function.

Skylake-SP parts have a non-power-of-two slice count (the paper's Xeon
Gold 6134 exposes 18 slices for 8 cores) and their hash has not been
published; :class:`ModularSliceHash` is our documented substitution — a
deterministic, uniform, line-granularity mixer reduced modulo the slice
count.  It preserves the properties the paper relies on: stable mapping,
64 B granularity, and near-uniform distribution across slices.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple

from repro.mem.address import CACHE_LINE_BITS, parity


def _mask_from_bits(bits: Sequence[int]) -> int:
    """Build an integer mask with the given bit positions set."""
    mask = 0
    for position in bits:
        if position < 0:
            raise ValueError(f"bit positions must be non-negative, got {position}")
        mask |= 1 << position
    return mask


#: Address bits feeding each slice-select output bit, as reverse
#: engineered by Maurice et al. and confirmed by the paper (Fig. 4).
#: ``o0`` applies to all >=2-slice parts, ``o0..o1`` to 4-slice parts,
#: ``o0..o2`` to 8-slice parts such as the Xeon E5-2667 v3.
O0_BITS: Tuple[int, ...] = (6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33)
O1_BITS: Tuple[int, ...] = (7, 11, 13, 15, 17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33, 34)
O2_BITS: Tuple[int, ...] = (8, 12, 16, 18, 19, 22, 23, 25, 26, 27, 30, 31)

HASWELL_MASKS_2_SLICE: Tuple[int, ...] = (_mask_from_bits(O0_BITS),)
HASWELL_MASKS_4_SLICE: Tuple[int, ...] = (
    _mask_from_bits(O0_BITS),
    _mask_from_bits(O1_BITS),
)
HASWELL_MASKS_8_SLICE: Tuple[int, ...] = (
    _mask_from_bits(O0_BITS),
    _mask_from_bits(O1_BITS),
    _mask_from_bits(O2_BITS),
)


class SliceHash(Protocol):
    """Anything that maps a physical address to an LLC slice index."""

    n_slices: int

    def slice_of(self, phys_address: int) -> int:
        """Return the slice index for *phys_address*."""


class ComplexAddressingHash:
    """XOR-of-address-bits slice hash for ``2**k``-slice CPUs.

    Args:
        masks: one mask per output bit; output bit *i* is the parity of
            ``phys_address & masks[i]``.  ``masks[0]`` is the LSB of the
            slice index.
    """

    def __init__(self, masks: Sequence[int]) -> None:
        if not masks:
            raise ValueError("at least one mask is required")
        self.masks: Tuple[int, ...] = tuple(masks)
        self.n_slices = 1 << len(self.masks)

    def slice_of(self, phys_address: int) -> int:
        """Return the slice index of the line containing *phys_address*."""
        index = 0
        for position, mask in enumerate(self.masks):
            index |= parity(phys_address & mask) << position
        return index

    def slice_of_array(self, phys_addresses) -> "numpy.ndarray":
        """Vectorised :meth:`slice_of` over a numpy array of addresses.

        Used by allocator scans classifying millions of lines; bitwise
        parity is computed with the xor-fold trick per output bit.
        """
        import numpy as np

        addresses = np.asarray(phys_addresses, dtype=np.uint64)
        out = np.zeros(addresses.shape, dtype=np.uint8)
        for position, mask in enumerate(self.masks):
            masked = addresses & np.uint64(mask)
            for shift in (32, 16, 8, 4, 2, 1):
                masked ^= masked >> np.uint64(shift)
            out |= ((masked & np.uint64(1)) << np.uint64(position)).astype(np.uint8)
        return out

    def output_bit(self, phys_address: int, position: int) -> int:
        """Return one output bit of the hash (used by the RE tooling)."""
        return parity(phys_address & self.masks[position])

    def uses_bit(self, address_bit: int) -> bool:
        """Return whether any output consumes the given address bit."""
        probe = 1 << address_bit
        return any(mask & probe for mask in self.masks)

    def __repr__(self) -> str:
        masks = ", ".join(f"{mask:#x}" for mask in self.masks)
        return f"ComplexAddressingHash([{masks}])"


class ModularSliceHash:
    """Block-balanced line-granularity hash for any slice count.

    Substitution for the unpublished Skylake-SP hash (DESIGN.md §2).
    Every aligned block of ``n_slices`` consecutive lines is assigned a
    pseudorandom *permutation* of the slice indices (an affine map
    ``a*i + b mod n`` with per-block coefficients drawn from a
    SplitMix64 mix).  This preserves the two properties the paper's
    techniques rely on, both of which the published XOR hash provably
    has:

    * adjacent lines map to different slices (so dynamic headroom can
      always reach any slice within ``n_slices`` lines), and
    * slice-filtered allocations are *balanced*: exactly one line per
      slice per block, so slice-local arrays load cache sets evenly
      instead of with Poisson variance.
    """

    _MASK64 = (1 << 64) - 1

    def __init__(self, n_slices: int, seed: int = 0x9E3779B97F4A7C15) -> None:
        if n_slices <= 0:
            raise ValueError(f"n_slices must be positive, got {n_slices}")
        self.n_slices = n_slices
        self.seed = seed
        self._coprimes = [
            a for a in range(1, max(2, n_slices)) if _gcd(a, n_slices) == 1
        ] or [1]

    def _mix(self, block: int) -> int:
        z = (block + self.seed) & self._MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK64
        return (z ^ (z >> 31)) & self._MASK64

    def slice_of(self, phys_address: int) -> int:
        """Return the slice index of the line containing *phys_address*."""
        line = phys_address >> CACHE_LINE_BITS
        block, index = divmod(line, self.n_slices)
        r = self._mix(block)
        coprimes = self._coprimes
        a = coprimes[r % len(coprimes)]
        b = (r >> 16) % self.n_slices
        return (a * index + b) % self.n_slices

    def slice_of_array(self, phys_addresses) -> "numpy.ndarray":
        """Vectorised :meth:`slice_of` over a numpy array of addresses."""
        import numpy as np

        addresses = np.asarray(phys_addresses, dtype=np.uint64)
        lines = addresses >> np.uint64(CACHE_LINE_BITS)
        n = np.uint64(self.n_slices)
        blocks = lines // n
        indices = lines % n
        mask64 = np.uint64(0xFFFFFFFFFFFFFFFF)
        with np.errstate(over="ignore"):
            z = (blocks + np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF)) & mask64
            z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & mask64
            z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & mask64
            z ^= z >> np.uint64(31)
        coprimes = np.array(self._coprimes, dtype=np.uint64)
        a = coprimes[(z % np.uint64(len(coprimes))).astype(np.int64)]
        b = (z >> np.uint64(16)) % n
        return ((a * indices + b) % n).astype(np.uint8)

    def __repr__(self) -> str:
        return f"ModularSliceHash(n_slices={self.n_slices}, seed={self.seed:#x})"


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def haswell_complex_hash(n_slices: int = 8) -> ComplexAddressingHash:
    """Return the published Complex Addressing hash for 2/4/8 slices."""
    table = {
        2: HASWELL_MASKS_2_SLICE,
        4: HASWELL_MASKS_4_SLICE,
        8: HASWELL_MASKS_8_SLICE,
    }
    if n_slices not in table:
        raise ValueError(
            f"published XOR masks exist only for 2, 4 or 8 slices, got {n_slices}"
        )
    return ComplexAddressingHash(table[n_slices])
