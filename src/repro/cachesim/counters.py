"""Uncore performance counters (CBo / CHA).

Each LLC slice on Haswell carries a *C-Box* (CBo) monitoring unit; the
Xeon Scalable family renames it CHA.  The paper's reverse-engineering
methodology (§2.1) needs exactly one capability from them: counting
lookups per slice, so that polling one address many times reveals which
slice it maps to.  We model a small event set per slice plus a
snapshot/delta API mirroring how real perf counters are sampled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Event names understood by :class:`SliceCounters`.
EVENT_LOOKUPS = "llc_lookups"
EVENT_HITS = "llc_hits"
EVENT_MISSES = "llc_misses"
EVENT_FILLS = "llc_fills"
EVENT_EVICTIONS = "llc_evictions"
EVENT_WRITEBACKS = "llc_writebacks"
EVENT_DDIO_FILLS = "ddio_fills"
EVENT_DDIO_READS = "ddio_reads"

ALL_EVENTS: Tuple[str, ...] = (
    EVENT_LOOKUPS,
    EVENT_HITS,
    EVENT_MISSES,
    EVENT_FILLS,
    EVENT_EVICTIONS,
    EVENT_WRITEBACKS,
    EVENT_DDIO_FILLS,
    EVENT_DDIO_READS,
)


@dataclass
class SliceCounters:
    """Event counters for one LLC slice (one CBo/CHA)."""

    slice_index: int
    counts: Dict[str, int] = field(default_factory=lambda: {e: 0 for e in ALL_EVENTS})

    def count(self, event: str, amount: int = 1) -> None:
        """Increment *event* by *amount*."""
        if event not in self.counts:
            raise KeyError(f"unknown uncore event {event!r}")
        self.counts[event] += amount

    def read(self, event: str) -> int:
        """Return the current value of *event*."""
        if event not in self.counts:
            raise KeyError(f"unknown uncore event {event!r}")
        return self.counts[event]

    def reset(self) -> None:
        """Zero all events (as writing the perf-counter MSRs would)."""
        for event in self.counts:
            self.counts[event] = 0


class UncoreCounters:
    """All per-slice counters of one socket, with snapshot/delta reads.

    The polling methodology samples counters, performs accesses, then
    samples again and attributes the delta; :meth:`snapshot` /
    :meth:`delta` provide that pattern.
    """

    def __init__(self, n_slices: int) -> None:
        if n_slices <= 0:
            raise ValueError(f"n_slices must be positive, got {n_slices}")
        self.slices: List[SliceCounters] = [SliceCounters(i) for i in range(n_slices)]

    @property
    def n_slices(self) -> int:
        """Number of monitored slices."""
        return len(self.slices)

    def count(self, slice_index: int, event: str, amount: int = 1) -> None:
        """Increment *event* on slice *slice_index*."""
        self.slices[slice_index].count(event, amount)

    def read(self, slice_index: int, event: str) -> int:
        """Return the value of *event* on slice *slice_index*."""
        return self.slices[slice_index].read(event)

    def read_all(self, event: str) -> List[int]:
        """Return the value of *event* on every slice, by slice index."""
        return [s.read(event) for s in self.slices]

    def snapshot(self, event: str) -> Tuple[int, ...]:
        """Capture the current per-slice values of *event*."""
        return tuple(self.read_all(event))

    def delta(self, event: str, since: Tuple[int, ...]) -> List[int]:
        """Per-slice increase of *event* since a :meth:`snapshot`."""
        if len(since) != self.n_slices:
            raise ValueError(
                f"snapshot has {len(since)} slices, counters have {self.n_slices}"
            )
        return [now - before for now, before in zip(self.read_all(event), since)]

    def busiest_slice(self, event: str, since: Tuple[int, ...]) -> int:
        """Return the slice whose *event* grew most since the snapshot.

        This is the heart of the polling technique: after hammering one
        address, the busiest lookup counter identifies its slice.
        """
        deltas = self.delta(event, since)
        return max(range(len(deltas)), key=deltas.__getitem__)

    def reset(self) -> None:
        """Zero every counter on every slice."""
        for slice_counters in self.slices:
            slice_counters.reset()
