"""Machine models for the paper's two testbed CPUs.

* :data:`HASWELL_E5_2667V3` — Intel Xeon E5-2667 v3: 8 cores @
  3.2 GHz, 8 × 2.5 MB LLC slices (20 ways, 2048 sets — Table 1),
  inclusive LLC, ring interconnect, published Complex Addressing hash.
* :data:`SKYLAKE_GOLD_6134` — Intel Xeon Gold 6134: 8 cores @
  3.2 GHz, 18 × 1.375 MB LLC slices (11 ways), 1 MB L2, non-inclusive
  victim LLC, mesh interconnect (§6).  The Skylake hash is unpublished,
  so the model uses :class:`~repro.cachesim.hashfn.ModularSliceHash`
  and a measured-style latency table that realises the paper's Table 4
  core→slice preferences.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.cachesim.cat import CatController
from repro.cachesim.hashfn import ModularSliceHash, SliceHash, haswell_complex_hash
from repro.cachesim.hierarchy import CacheHierarchy, LatencySpec
from repro.cachesim.interconnect import (
    Interconnect,
    RingInterconnect,
    TableInterconnect,
)
from repro.cachesim.llc import SlicedLLC

#: Paper Table 4 — primary preferable slice per core on the Gold 6134.
SKYLAKE_PRIMARY_SLICES: Dict[int, int] = {
    0: 0, 1: 4, 2: 8, 3: 12, 4: 10, 5: 14, 6: 3, 7: 15,
}

#: Paper Table 4 — secondary preferable slices per core.
SKYLAKE_SECONDARY_SLICES: Dict[int, Tuple[int, ...]] = {
    0: (2, 6), 1: (1,), 2: (11,), 3: (13,), 4: (7, 9), 5: (16,), 6: (5,), 7: (17,),
}


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a simulated CPU socket."""

    name: str
    n_cores: int
    n_slices: int
    freq_ghz: float
    l1_sets: int
    l1_ways: int
    l2_sets: int
    l2_ways: int
    llc_sets: int
    llc_ways: int
    llc_base_latency: int
    inclusive: bool
    ddio_ways: int
    latency: LatencySpec
    hash_factory: Callable[[], SliceHash]
    interconnect_factory: Callable[[], Interconnect]

    @property
    def l1_bytes(self) -> int:
        """L1D capacity per core."""
        return self.l1_sets * self.l1_ways * 64

    @property
    def l2_bytes(self) -> int:
        """L2 capacity per core."""
        return self.l2_sets * self.l2_ways * 64

    @property
    def llc_slice_bytes(self) -> int:
        """Capacity of one LLC slice."""
        return self.llc_sets * self.llc_ways * 64

    @property
    def llc_bytes(self) -> int:
        """Total LLC capacity."""
        return self.llc_slice_bytes * self.n_slices

    @property
    def freq_hz(self) -> float:
        """Core frequency in Hz."""
        return self.freq_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this machine's clock."""
        return cycles / self.freq_hz

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles / self.freq_ghz


def _skylake_interconnect() -> TableInterconnect:
    return TableInterconnect.from_preferences(
        n_cores=8,
        n_slices=18,
        primary=SKYLAKE_PRIMARY_SLICES,
        secondary={c: list(s) for c, s in SKYLAKE_SECONDARY_SLICES.items()},
        secondary_extra=4,
        far_base=10,
        far_spread=22,
    )


HASWELL_E5_2667V3 = MachineSpec(
    name="Intel Xeon E5-2667 v3 (Haswell)",
    n_cores=8,
    n_slices=8,
    freq_ghz=3.2,
    l1_sets=64,
    l1_ways=8,       # 32 kB (Table 1)
    l2_sets=512,
    l2_ways=8,       # 256 kB (Table 1)
    llc_sets=2048,
    llc_ways=20,     # 2.5 MB per slice (Table 1)
    llc_base_latency=34,
    inclusive=True,
    ddio_ways=2,
    latency=LatencySpec(l1_hit=4, l2_hit=11, dram=190),
    hash_factory=lambda: haswell_complex_hash(8),
    interconnect_factory=lambda: RingInterconnect(n_stops=8, hop_cycles=4, cross_penalty=14),
)

SKYLAKE_GOLD_6134 = MachineSpec(
    name="Intel Xeon Gold 6134 (Skylake-SP)",
    n_cores=8,
    n_slices=18,
    freq_ghz=3.2,
    l1_sets=64,
    l1_ways=8,        # 32 kB
    l2_sets=1024,
    l2_ways=16,       # 1 MB (quadrupled vs Haswell, §6)
    llc_sets=2048,
    llc_ways=11,      # 1.375 MB per slice (§6)
    llc_base_latency=44,
    inclusive=False,  # non-inclusive victim LLC (§6)
    ddio_ways=2,
    latency=LatencySpec(l1_hit=4, l2_hit=14, dram=190),
    hash_factory=lambda: ModularSliceHash(18),
    interconnect_factory=_skylake_interconnect,
)


def build_hierarchy(
    spec: MachineSpec,
    policy: str = "lru",
    ddio_ways: Optional[int] = None,
    cat: Optional[CatController] = None,
    latency: Optional[LatencySpec] = None,
    prefetchers: Optional[Sequence[object]] = None,
    seed: int = 0,
    sanitize: Optional[bool] = None,
) -> CacheHierarchy:
    """Instantiate a :class:`CacheHierarchy` from a machine spec.

    Args:
        spec: which machine to build.
        policy: LLC replacement policy name.
        ddio_ways: override the number of DDIO ways (default: spec's).
        cat: optional pre-configured CAT controller.
        latency: override the latency model.
        prefetchers: optional per-core prefetchers.
        seed: seed for stochastic replacement policies.
        sanitize: CacheSanitizer switch (``None`` = follow
            ``RF_SANITIZE``; see :mod:`repro.analysis.sanitizer`).
    """
    llc = SlicedLLC(
        slice_hash=spec.hash_factory(),
        interconnect=spec.interconnect_factory(),
        n_sets=spec.llc_sets,
        n_ways=spec.llc_ways,
        base_latency=spec.llc_base_latency,
        ddio_ways=spec.ddio_ways if ddio_ways is None else ddio_ways,
        policy=policy,
        cat=cat,
        seed=seed,
    )
    return CacheHierarchy(
        n_cores=spec.n_cores,
        llc=llc,
        l1_sets=spec.l1_sets,
        l1_ways=spec.l1_ways,
        l2_sets=spec.l2_sets,
        l2_ways=spec.l2_ways,
        latency=latency if latency is not None else spec.latency,
        inclusive=spec.inclusive,
        prefetchers=list(prefetchers) if prefetchers is not None else None,
        sanitize=sanitize,
    )
