"""Replacement policies for way-organised cache sets.

Policies operate on way indices within one set and support *way masks*
(needed for CAT and DDIO): victim selection can be restricted to an
allowed subset of ways.  All policies implement
:class:`ReplacementPolicy`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Protocol, Sequence


class ReplacementPolicy(Protocol):
    """Per-set replacement state machine."""

    def touch(self, way: int) -> None:
        """Record a hit on *way*."""

    def victim(self, allowed_ways: Sequence[int]) -> int:
        """Choose a victim among *allowed_ways* (all currently valid)."""

    def reset(self, way: int) -> None:
        """Record that *way* was (re)filled."""


class LruPolicy:
    """True least-recently-used order over the ways of one set."""

    def __init__(self, n_ways: int) -> None:
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        self.n_ways = n_ways
        # _stamp[w] is a monotonically increasing last-use time.
        self._clock = 0
        self._stamp: List[int] = [-1] * n_ways

    def touch(self, way: int) -> None:
        self._clock += 1
        self._stamp[way] = self._clock

    def victim(self, allowed_ways: Sequence[int]) -> int:
        if not allowed_ways:
            raise ValueError("allowed_ways must be non-empty")
        stamp = self._stamp
        best = allowed_ways[0]
        best_stamp = stamp[best]
        for way in allowed_ways[1:]:
            if stamp[way] < best_stamp:
                best = way
                best_stamp = stamp[way]
        return best

    def reset(self, way: int) -> None:
        self.touch(way)


class TreePlruPolicy:
    """Tree pseudo-LRU, as implemented by real Intel L1/L2 caches.

    The tree is over ``n_ways`` leaves (``n_ways`` must be a power of
    two).  Way masks are honoured by walking the tree but clamping the
    descent to the allowed subtree when the preferred side contains no
    allowed way.
    """

    def __init__(self, n_ways: int) -> None:
        if n_ways <= 0 or n_ways & (n_ways - 1):
            raise ValueError(f"n_ways must be a positive power of two, got {n_ways}")
        self.n_ways = n_ways
        self._bits: List[int] = [0] * max(1, n_ways - 1)

    def touch(self, way: int) -> None:
        # Walk from root to the leaf, setting each bit to point *away*
        # from the touched way.
        node = 0
        low, high = 0, self.n_ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self._bits[node] = 1  # protect left, point right
                node = 2 * node + 1
                high = mid
            else:
                self._bits[node] = 0  # protect right, point left
                node = 2 * node + 2
                low = mid
        del node

    def victim(self, allowed_ways: Sequence[int]) -> int:
        if not allowed_ways:
            raise ValueError("allowed_ways must be non-empty")
        allowed = set(allowed_ways)
        node = 0
        low, high = 0, self.n_ways
        while high - low > 1:
            mid = (low + high) // 2
            left_has = any(low <= way < mid for way in allowed)
            right_has = any(mid <= way < high for way in allowed)
            go_left = self._bits[node] == 0
            if go_left and not left_has:
                go_left = False
            elif not go_left and not right_has:
                go_left = True
            if go_left:
                node = 2 * node + 1
                high = mid
            else:
                node = 2 * node + 2
                low = mid
        if low not in allowed:
            # The walk can only end outside the mask if the mask was
            # inconsistent with the tree clamping above.
            return min(allowed)
        return low

    def reset(self, way: int) -> None:
        self.touch(way)


class RandomPolicy:
    """Uniformly random victim selection (deterministic via seed)."""

    def __init__(self, n_ways: int, seed: int = 0) -> None:
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        self.n_ways = n_ways
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:  # random policy keeps no state
        return None

    def victim(self, allowed_ways: Sequence[int]) -> int:
        if not allowed_ways:
            raise ValueError("allowed_ways must be non-empty")
        return self._rng.choice(list(allowed_ways))

    def reset(self, way: int) -> None:
        return None


class SrripPolicy:
    """Static re-reference interval prediction (SRRIP, ISCA '10).

    Modern Intel LLCs do not run true LRU; they use RRIP-family
    policies that resist scanning/thrashing traffic — relevant here
    because DDIO packet streams and Zipf-tail one-hit wonders are
    exactly such traffic.  Each way carries a 2-bit re-reference
    prediction value (RRPV): hits promote to 0, fills insert at
    ``2**bits - 2``, and victims are the first way at the maximum
    RRPV (aging every way when none is there).
    """

    def __init__(self, n_ways: int, bits: int = 2) -> None:
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self.n_ways = n_ways
        self.max_rrpv = (1 << bits) - 1
        self.insert_rrpv = self.max_rrpv - 1
        self._rrpv: List[int] = [self.max_rrpv] * n_ways

    def touch(self, way: int) -> None:
        self._rrpv[way] = 0

    def victim(self, allowed_ways: Sequence[int]) -> int:
        if not allowed_ways:
            raise ValueError("allowed_ways must be non-empty")
        rrpv = self._rrpv
        while True:
            for way in allowed_ways:
                if rrpv[way] >= self.max_rrpv:
                    return way
            for way in allowed_ways:
                rrpv[way] += 1

    def reset(self, way: int) -> None:
        self._rrpv[way] = self.insert_rrpv


class BrripPolicy(SrripPolicy):
    """Bimodal RRIP: most fills insert at the maximum RRPV (evict-soon),
    a small fraction at ``max - 1`` — the thrash-resistant half of
    DRRIP.  One-hit-wonder streams (packet payloads, Zipf tails) wash
    out of the cache almost immediately."""

    def __init__(self, n_ways: int, bits: int = 2, long_fraction: float = 1 / 32, seed: int = 0) -> None:
        super().__init__(n_ways, bits)
        if not 0 < long_fraction <= 1:
            raise ValueError("long_fraction must be in (0, 1]")
        self.long_fraction = long_fraction
        self._rng = random.Random(seed)

    def reset(self, way: int) -> None:
        if self._rng.random() < self.long_fraction:
            self._rrpv[way] = self.insert_rrpv
        else:
            self._rrpv[way] = self.max_rrpv


def make_policy(name: str, n_ways: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a replacement policy by name
    (``lru``/``plru``/``random``/``srrip``/``brrip``)."""
    if name == "lru":
        return LruPolicy(n_ways)
    if name == "plru":
        return TreePlruPolicy(n_ways)
    if name == "random":
        return RandomPolicy(n_ways, seed=seed)
    if name == "srrip":
        return SrripPolicy(n_ways)
    if name == "brrip":
        return BrripPolicy(n_ways, seed=seed)
    raise ValueError(f"unknown replacement policy {name!r}")
