"""The full cache hierarchy: per-core L1/L2, sliced LLC, DRAM.

This is the cycle-accounting engine every experiment runs on.  An
access walks L1 → L2 → LLC slice → DRAM exactly as in Fig. 2 of the
paper and returns the number of cycles the *issuing core* stalls.

Timing model (all knobs in :class:`LatencySpec`):

* Loads cost the latency of the level that services them; LLC hits add
  the NUCA interconnect distance — the effect the whole paper is about.
* Stores retire through the store buffer (write-back, write-allocate):
  a store costs the constant commit latency plus an optional
  ``rfo_fraction`` of the fetch latency (0 by default — the paper's
  Fig. 5b shows single writes are flat regardless of slice).  Slice
  distance surfaces for *sustained* writes via the write-back drain:
  dirty L2 victims are written to their LLC slice and a configurable
  fraction of that NUCA latency is charged to the access that forced
  the eviction (reproducing Fig. 6b).
* Dirty LLC victims charge a DRAM write-back drain cost.

Inclusivity: Haswell's LLC is inclusive (LLC evictions back-invalidate
private caches); Skylake's is a non-inclusive victim cache (DRAM fills
bypass the LLC, which is populated by L2 evictions instead) — §6.

Coherence: private caches are modelled per core without a full MESI
protocol; the experiments touch each line from a single core at a
time, and the one true cross-agent writer — the NIC's DMA — explicitly
invalidates private copies via :meth:`CacheHierarchy.invalidate_private`
(see :mod:`repro.cachesim.ddio`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.sanitizer import CacheSanitizer, resolve_sanitizer
from repro.cachesim.cache import DictCache
from repro.cachesim.llc import SlicedLLC
from repro.mem.address import CACHE_LINE, line_address


@dataclass
class LatencySpec:
    """Cycle costs of the memory hierarchy (defaults: Haswell @ 3.2 GHz).

    Attributes:
        l1_hit: load-to-use latency of an L1 hit.
        l2_hit: latency of an L2 hit.
        dram: latency of a DRAM access (~60 ns at 3.2 GHz).
        store_commit: cycles a store occupies the core when the store
            buffer absorbs it.
        rfo_fraction: fraction of the fetch latency charged to a store
            miss (0.0 = store buffer hides the read-for-ownership).
        wb_l1_visible: cycles charged when a dirty L1 victim drains to
            L2.
        wb_llc_fraction: fraction of the (base + NUCA) LLC latency
            charged when a dirty L2 victim drains to its slice.
        wb_dram_visible: cycles charged when a dirty LLC victim drains
            to DRAM; kept well below the DRAM latency because eviction
            writes are buffered and mostly hidden from the core.
    """

    l1_hit: int = 4
    l2_hit: int = 11
    dram: int = 190
    store_commit: int = 4
    rfo_fraction: float = 0.0
    wb_l1_visible: int = 1
    wb_llc_fraction: float = 0.5
    wb_dram_visible: int = 12


@dataclass
class HierarchyStats:
    """Aggregate hit/miss counters for the whole hierarchy."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    dram_accesses: int = 0
    dram_writebacks: int = 0
    reads: int = 0
    writes: int = 0
    cycles: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single line access."""

    cycles: int
    level: str  # "l1" | "l2" | "llc" | "dram"
    slice_index: Optional[int] = None


class CacheHierarchy:
    """Per-core L1/L2 private caches over a shared sliced LLC.

    Args:
        n_cores: number of cores on the socket.
        llc: the shared sliced LLC.
        l1_sets/l1_ways: geometry of each core's L1D.
        l2_sets/l2_ways: geometry of each core's (private) L2.
        latency: cycle-cost model.
        inclusive: ``True`` for Haswell (inclusive LLC), ``False`` for
            Skylake (non-inclusive victim LLC).
        prefetchers: optional per-core L2 prefetchers (see
            :mod:`repro.cachesim.prefetch`).
        sanitize: CacheSanitizer switch — ``True`` builds a private
            sanitizer, ``False`` forces it off, ``None`` (default)
            joins the process-global one when ``RF_SANITIZE=1``.
        sanitizer: explicit sanitizer instance (wins over
            ``sanitize``), for sharing shadow state with mempools.
    """

    def __init__(
        self,
        n_cores: int,
        llc: SlicedLLC,
        l1_sets: int = 64,
        l1_ways: int = 8,
        l2_sets: int = 512,
        l2_ways: int = 8,
        latency: Optional[LatencySpec] = None,
        inclusive: bool = True,
        prefetchers: Optional[List[object]] = None,
        sanitize: Optional[bool] = None,
        sanitizer: Optional[CacheSanitizer] = None,
    ) -> None:
        if n_cores <= 0:
            raise ValueError(f"n_cores must be positive, got {n_cores}")
        if n_cores > llc.interconnect.n_cores:
            raise ValueError(
                f"{n_cores} cores exceed the interconnect's "
                f"{llc.interconnect.n_cores}"
            )
        self.n_cores = n_cores
        self.llc = llc
        self.latency = latency if latency is not None else LatencySpec()
        self.inclusive = inclusive
        self.l1s: List[DictCache] = [
            DictCache(l1_sets, l1_ways, name=f"l1-core{c}") for c in range(n_cores)
        ]
        self.l2s: List[DictCache] = [
            DictCache(l2_sets, l2_ways, name=f"l2-core{c}") for c in range(n_cores)
        ]
        self.prefetchers = prefetchers if prefetchers is not None else [None] * n_cores
        if len(self.prefetchers) != n_cores:
            raise ValueError("need one prefetcher slot per core")
        self.stats = HierarchyStats()
        # Cores whose private caches may hold lines; invalidations only
        # need to visit these (single-core workloads skip 7/8 of the
        # private-cache probes).
        self._active_cores: set = set()
        #: Which access engine serves ``read``/``write``/``access_batch``:
        #: ``"reference"`` (this module's per-access path) or ``"fast"``
        #: (:mod:`repro.cachesim.engine`).  Switch via :meth:`set_engine`.
        self.engine_name = "reference"
        self._fast_engine = None
        #: Optional runtime invariant checker (see
        #: :mod:`repro.analysis.sanitizer`); shared with the LLC so
        #: masked fills are verified at fill time.
        self.sanitizer = resolve_sanitizer(sanitize, sanitizer)
        if self.sanitizer is not None:
            llc.sanitizer = self.sanitizer

    # ------------------------------------------------------------------
    # Demand accesses
    # ------------------------------------------------------------------

    def access_line(self, core: int, line: int, write: bool = False) -> AccessResult:
        """Access one cache line; returns cycles and servicing level."""
        stats = self.stats
        lat = self.latency
        self._active_cores.add(core)
        if write:
            stats.writes += 1
        else:
            stats.reads += 1

        if self.l1s[core].lookup(line, write=write):
            stats.l1_hits += 1
            cycles = lat.store_commit if write else lat.l1_hit
            stats.cycles += cycles
            return AccessResult(cycles, "l1")
        stats.l1_misses += 1

        if self.l2s[core].lookup(line, write=False):
            stats.l2_hits += 1
            if write:
                cycles = lat.store_commit + int(lat.rfo_fraction * lat.l2_hit)
            else:
                cycles = lat.l2_hit
            cycles += self._fill_l1(core, line, dirty=write)
            stats.cycles += cycles
            return AccessResult(cycles, "l2")
        stats.l2_misses += 1

        hit, slice_index = self.llc.lookup(line, write=False)
        if hit:
            stats.llc_hits += 1
            load_latency = self.llc.access_latency(core, slice_index)
            if write:
                cycles = lat.store_commit + int(lat.rfo_fraction * load_latency)
            else:
                cycles = load_latency
            cycles += self._fill_l2(core, line, dirty=False)
            cycles += self._fill_l1(core, line, dirty=write)
            cycles += self._run_prefetcher(core, line)
            stats.cycles += cycles
            return AccessResult(cycles, "llc", slice_index)
        stats.llc_misses += 1

        stats.dram_accesses += 1
        if write:
            cycles = lat.store_commit + int(lat.rfo_fraction * lat.dram)
        else:
            cycles = lat.dram
        if self.inclusive:
            cycles += self._fill_llc(core, line, dirty=False)
        cycles += self._fill_l2(core, line, dirty=False)
        cycles += self._fill_l1(core, line, dirty=write)
        cycles += self._run_prefetcher(core, line)
        stats.cycles += cycles
        return AccessResult(cycles, "dram", slice_index)

    def fast_engine(self):
        """Return (building lazily) this hierarchy's :class:`FastEngine`."""
        if self._fast_engine is None:
            from repro.cachesim.engine import FastEngine

            self._fast_engine = FastEngine(self)
        return self._fast_engine

    def set_engine(self, name: str) -> None:
        """Select the access engine: ``"reference"`` or ``"fast"``.

        With ``"fast"``, :meth:`read` and :meth:`write` are rebound to
        the flattened engine (identical outcomes, several times
        faster); ``"reference"`` restores this module's per-access
        implementations.  NIC DMA also switches to the engine's
        flattened span path while ``"fast"`` is selected; everything
        else (``clflush``, CAT, ``warm``) always runs the reference
        code — both engines share one cache state, so they interleave
        freely.
        """
        if name == "fast":
            engine = self.fast_engine()
            engine.refresh()
            self.read = engine.read  # type: ignore[method-assign]
            self.write = engine.write  # type: ignore[method-assign]
        elif name == "reference":
            self.__dict__.pop("read", None)
            self.__dict__.pop("write", None)
        else:
            raise ValueError(f"unknown engine {name!r}")
        self.engine_name = name

    def access_batch(
        self,
        addresses,
        kinds=None,
        core=0,
        engine: Optional[str] = None,
    ):
        """Resolve a vector of line accesses; returns a ``BatchResult``.

        Args:
            addresses: byte addresses, one access each.
            kinds: write flags — ``None`` (all loads), a scalar, or a
                per-access sequence (truthy = store).
            core: issuing core — a scalar, or one entry per access for
                interleaved multi-core streams.
            engine: override the engine for this call (defaults to
                :attr:`engine_name`).

        Both engines produce identical results (machine-checked by the
        differential suite); ``"fast"`` is the vectorised hot path,
        ``"reference"`` loops :meth:`access_line`.
        """
        engine = engine if engine is not None else self.engine_name
        if engine == "fast":
            return self.fast_engine().access_batch(addresses, kinds, core)
        if engine != "reference":
            raise ValueError(f"unknown engine {engine!r}")
        from repro.cachesim.engine import BatchResult, LEVEL_NAMES

        n = len(addresses)
        if kinds is None:
            writes = [False] * n
        elif isinstance(kinds, (bool, int)):
            writes = [bool(kinds)] * n
        else:
            writes = [bool(k) for k in kinds]
            if len(writes) != n:
                raise ValueError(f"kinds has {len(writes)} entries for {n} addresses")
        if isinstance(core, int):
            cores = [core] * n
        else:
            cores = [int(c) for c in core]
            if len(cores) != n:
                raise ValueError(f"core has {len(cores)} entries for {n} addresses")
        if self.sanitizer is not None:
            self.sanitizer.tick(self, n)
        import numpy as np

        cycles = np.empty(n, dtype=np.int64)
        levels = np.empty(n, dtype=np.uint8)
        slices = np.empty(n, dtype=np.int16)
        for i in range(n):
            result = self.access_line(
                cores[i], int(addresses[i]) & ~(CACHE_LINE - 1), write=writes[i]
            )
            cycles[i] = result.cycles
            levels[i] = LEVEL_NAMES.index(result.level)
            slices[i] = -1 if result.slice_index is None else result.slice_index
        return BatchResult(cycles=cycles, levels=levels, slices=slices)

    def read(self, core: int, address: int, size: int = CACHE_LINE) -> int:
        """Read ``[address, address+size)``; returns total stall cycles."""
        return self._span(core, address, size, write=False)

    def write(self, core: int, address: int, size: int = CACHE_LINE) -> int:
        """Write ``[address, address+size)``; returns total stall cycles."""
        return self._span(core, address, size, write=True)

    def _span(self, core: int, address: int, size: int, write: bool) -> int:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        first = line_address(address)
        last = line_address(address + size - 1)
        if self.sanitizer is not None:
            self.sanitizer.tick(self, (last - first) // CACHE_LINE + 1)
        cycles = 0
        for line in range(first, last + CACHE_LINE, CACHE_LINE):
            cycles += self.access_line(core, line, write=write).cycles
        return cycles

    # ------------------------------------------------------------------
    # Fill / write-back plumbing
    # ------------------------------------------------------------------

    def _fill_l1(self, core: int, line: int, dirty: bool) -> int:
        """Install a line in L1; returns visible drain cycles."""
        victim = self.l1s[core].insert(line, dirty=dirty)
        if victim is None or not victim[1]:
            return 0
        # Dirty L1 victim drains into L2.
        extra = self.latency.wb_l1_visible
        l2_victim = self.l2s[core].insert(victim[0], dirty=True)
        return extra + self._drain_l2_victim(core, l2_victim)

    def _fill_l2(self, core: int, line: int, dirty: bool) -> int:
        """Install a line in L2; returns visible drain cycles."""
        victim = self.l2s[core].insert(line, dirty=dirty)
        return self._drain_l2_victim(core, victim)

    def _drain_l2_victim(self, core: int, victim: Optional[Tuple[int, bool]]) -> int:
        """Handle an L2 eviction (write-back and/or victim-cache fill)."""
        if victim is None:
            return 0
        vline, vdirty = victim
        lat = self.latency
        if self.inclusive:
            if not vdirty:
                return 0
            # Inclusive: the LLC already tracks the line; update it in
            # place (or refill if it raced out) and charge the drain.
            slice_index = self.llc.hash.slice_of(vline)
            slice_cache = self.llc.slices[slice_index]
            if not slice_cache.lookup(vline, write=True):
                self._fill_llc(core, vline, dirty=True)
            return int(lat.wb_llc_fraction * self.llc.access_latency(core, slice_index))
        # Non-inclusive victim LLC: every L2 eviction is inserted.
        slice_index = self.llc.hash.slice_of(vline)
        extra = 0
        if vdirty:
            extra += int(lat.wb_llc_fraction * self.llc.access_latency(core, slice_index))
        llc_victim = self.llc.fill(vline, core=core, dirty=vdirty)
        if llc_victim is not None and llc_victim[1]:
            self.stats.dram_writebacks += 1
            extra += lat.wb_dram_visible
        return extra

    def _fill_llc(self, core: int, line: int, dirty: bool, io: bool = False) -> int:
        """Install a line in the LLC; returns visible drain cycles."""
        victim = self.llc.fill(line, core=core, dirty=dirty, io=io)
        if victim is None:
            return 0
        vline, vdirty = victim
        if self.inclusive:
            # Inclusive LLC: evicting a line evicts it everywhere.
            private_dirty = self.invalidate_private(vline)
            vdirty = vdirty or private_dirty
        if vdirty:
            self.stats.dram_writebacks += 1
            return self.latency.wb_dram_visible
        return 0

    def _run_prefetcher(self, core: int, line: int) -> int:
        """Feed the core's prefetcher after a demand L2 miss."""
        prefetcher = self.prefetchers[core]
        if prefetcher is None:
            return 0
        for target in prefetcher.observe(line):
            self.prefetch_line(core, target)
        return 0

    # ------------------------------------------------------------------
    # Non-demand operations
    # ------------------------------------------------------------------

    def prefetch_line(self, core: int, line: int) -> None:
        """Bring a line into the core's L2 without charging the core."""
        self._active_cores.add(core)
        if self.l2s[core].contains(line):
            return
        hit, _ = self.llc.lookup(line, write=False)
        if not hit:
            self.stats.dram_accesses += 1
            if self.inclusive:
                self._fill_llc(core, line, dirty=False)
        self._fill_l2(core, line, dirty=False)

    def warm(self, core: int, address: int, size: int = CACHE_LINE) -> None:
        """Touch a buffer without recording stats (setup helper)."""
        saved = self.stats
        self.stats = HierarchyStats()
        try:
            self._span(core, address, size, write=False)
        finally:
            self.stats = saved

    def clflush(self, address: int, size: int = CACHE_LINE) -> None:
        """Flush ``[address, address+size)`` from the entire hierarchy."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        first = line_address(address)
        last = line_address(address + size - 1)
        for line in range(first, last + CACHE_LINE, CACHE_LINE):
            self.invalidate_private(line)
            self.llc.invalidate(line)

    def invalidate_private(self, line: int) -> bool:
        """Drop a line from every core's L1/L2; ``True`` if any copy was dirty."""
        dirty = False
        for core in self._active_cores:
            d1 = self.l1s[core].invalidate(line)
            d2 = self.l2s[core].invalidate(line)
            dirty = dirty or bool(d1) or bool(d2)
        return dirty

    def dma_fill_line(self, line: int) -> None:
        """Install an I/O-written line via DDIO (used by the NIC model).

        DDIO write allocations land in the LLC's DDIO ways, never in
        private caches; any stale private copies are invalidated.
        """
        self.invalidate_private(line)
        self._fill_llc(core=None, line=line, dirty=True, io=True)

    def locate(self, line: int) -> str:
        """Return where a line currently lives: ``l1``/``l2``/``llc``/``dram``.

        Private caches are searched across all cores (diagnostic aid).
        """
        for core in range(self.n_cores):
            if self.l1s[core].contains(line):
                return "l1"
        for core in range(self.n_cores):
            if self.l2s[core].contains(line):
                return "l2"
        if self.llc.contains(line):
            return "llc"
        return "dram"

    def drop_all(self) -> None:
        """Empty every cache (fresh-machine state between experiments)."""
        for cache in self.l1s:
            cache.flush()
        for cache in self.l2s:
            cache.flush()
        self.llc.flush()

    def check_invariants(self) -> None:
        """Assert structural invariants of the hierarchy state.

        Used by the property-based tests as a model checker after
        arbitrary operation sequences:

        * no cache holds more lines than its capacity, per set;
        * every line is in the slice its address hashes to;
        * on an inclusive LLC, every line in any private cache is also
          present in the LLC (the defining inclusion property).

        Raises:
            AssertionError: on any violation.
        """
        for caches in (self.l1s, self.l2s):
            for cache in caches:
                assert cache.occupancy() <= cache.capacity_lines, cache
        for slice_index, slice_cache in enumerate(self.llc.slices):
            assert slice_cache.occupancy() <= slice_cache.capacity_lines
            for line in slice_cache.lines():
                assert self.llc.slice_of(line) == slice_index, (
                    f"line {line:#x} cached in slice {slice_index} but "
                    f"hashes to {self.llc.slice_of(line)}"
                )
        if self.inclusive:
            for core in range(self.n_cores):
                for line in self.l1s[core].lines():
                    assert self.llc.contains(line), (
                        f"inclusion violated: {line:#x} in L1[{core}] "
                        "but not in LLC"
                    )
                for line in self.l2s[core].lines():
                    assert self.llc.contains(line), (
                        f"inclusion violated: {line:#x} in L2[{core}] "
                        "but not in LLC"
                    )

    def __repr__(self) -> str:
        return (
            f"CacheHierarchy(n_cores={self.n_cores}, inclusive={self.inclusive}, "
            f"llc={self.llc!r})"
        )
