"""Vectorized batch-access engine for the cache hierarchy.

:class:`FastEngine` is a drop-in accelerator for
:class:`~repro.cachesim.hierarchy.CacheHierarchy`.  It executes the
*exact* reference access algorithm — same hits, same victims, same
cycle accounting, same uncore counter updates — but flattened into one
closure that manipulates the hierarchy's own data structures directly,
with everything loop-invariant hoisted out:

* the NUCA latency, write-back and RFO charges are precomputed into
  per-``(core, slice)`` tables (the reference path recomputes
  ``base + interconnect.latency(core, slice)`` on every LLC touch);
* slice indices for a whole batch are computed in one vectorised
  numpy pass over the address vector (``SliceHash.slice_of_array``)
  instead of per-access Python parity loops;
* the per-level cache probes are inlined dict/list operations rather
  than five layers of method calls, and LRU replacement is inlined
  when every LLC slice runs the default ``lru`` policy.

Because the engine mutates the *same* ``DictCache``/``WayCache``/
counter state the reference path uses, rare events that happen
*between* batches — ``clflush``, CAT mask changes, ``drop_all`` —
simply run through the reference implementations and interleave
correctly.  There is no shadow state to synchronise.  NIC DMA traffic
is *not* rare in the forwarding experiments, so it gets its own
flattened path (:meth:`FastEngine.dma_write_span` /
:meth:`~FastEngine.dma_read_span`, dispatched by
:class:`~repro.cachesim.ddio.DdioEngine` whenever the hierarchy has
``engine_name == "fast"``), including a private-cache residency
superset that skips the per-core invalidation snoop for payload lines
no core ever pulled into an L1/L2.  Within a batch the engine
covers every event the reference demand path can produce (cascaded
evictions, inclusive back-invalidations, write-back drains,
prefetcher activations); anything else falls back to the reference
methods by construction.

Equivalence is machine-checked by the differential harness
(:mod:`repro.cachesim.diff` and ``tests/test_engine_differential.py``)
which replays identical randomized traces through both engines and
asserts identical per-access outcomes, aggregate statistics, uncore
counters and final cache contents.

Caveats (checked or documented):

* The engine snapshots the :class:`LatencySpec` values, the CAT
  generation and the LLC geometry; :meth:`FastEngine.refresh` (called
  by ``access_batch`` and ``CacheHierarchy.set_engine``) rebuilds the
  tables when they changed.  Mutating ``hierarchy.latency`` between
  *scalar* fast calls without re-installing the engine is not
  supported.
* Replacement policies other than ``lru`` are driven through their
  normal ``touch``/``victim``/``reset`` methods — correct for every
  policy, just without the inlined fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import repeat as _repeat
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cachesim.counters import (
    EVENT_DDIO_FILLS,
    EVENT_DDIO_READS,
    EVENT_EVICTIONS,
    EVENT_FILLS,
    EVENT_HITS,
    EVENT_LOOKUPS,
    EVENT_MISSES,
    EVENT_WRITEBACKS,
)
from repro.mem.address import CACHE_LINE

#: Level codes used by :class:`BatchResult` (index == depth).
LEVEL_L1, LEVEL_L2, LEVEL_LLC, LEVEL_DRAM = 0, 1, 2, 3

#: Op codes for :meth:`FastEngine.run_op_stream` — a recorded dataplane
#: op stream interleaves demand accesses with NIC DMA in arrival order.
OP_READ, OP_WRITE, OP_DMA_WRITE, OP_DMA_READ = 0, 1, 2, 3

#: Code → name, matching :class:`~repro.cachesim.hierarchy.AccessResult`.
LEVEL_NAMES: Tuple[str, ...] = ("l1", "l2", "llc", "dram")

_LINE_MASK = ~(CACHE_LINE - 1)


@dataclass(frozen=True)
class BatchResult:
    """Per-access outcomes of one :meth:`FastEngine.access_batch` call.

    Attributes:
        cycles: stall cycles charged to the issuing core, per access.
        levels: servicing level codes (:data:`LEVEL_L1` … ``LEVEL_DRAM``).
        slices: LLC slice index for LLC/DRAM outcomes, ``-1`` for
            private-cache hits (mirroring ``AccessResult.slice_index``).
    """

    cycles: np.ndarray
    levels: np.ndarray
    slices: np.ndarray

    @property
    def total_cycles(self) -> int:
        """Sum of all per-access cycle costs."""
        return int(self.cycles.sum())

    def level_names(self) -> List[str]:
        """Decode :attr:`levels` into the reference level strings."""
        return [LEVEL_NAMES[code] for code in self.levels]


def _as_bool_list(kinds, n: int) -> List[bool]:
    """Normalise the *kinds* argument into one bool per access."""
    if kinds is None:
        return [False] * n
    if isinstance(kinds, (bool, int)) and not isinstance(kinds, np.ndarray):
        return [bool(kinds)] * n
    out = [bool(k) for k in kinds]
    if len(out) != n:
        raise ValueError(f"kinds has {len(out)} entries for {n} addresses")
    return out


def _as_core_list(core, n: int) -> Optional[List[int]]:
    """Return a per-access core list, or ``None`` for a scalar core."""
    if isinstance(core, (int, np.integer)):
        return None
    out = [int(c) for c in core]
    if len(out) != n:
        raise ValueError(f"core has {len(out)} entries for {n} addresses")
    return out


class FastEngine:
    """Flattened accessor over a hierarchy's shared cache state.

    Args:
        hierarchy: the hierarchy to accelerate.  The engine keeps no
            cache contents of its own — every probe and fill mutates
            the hierarchy's structures in place.
    """

    def __init__(self, hierarchy) -> None:
        self.hierarchy = hierarchy
        self._key: Optional[tuple] = None
        self._access = None
        self._rebuild()

    # ------------------------------------------------------------------
    # Table building / staleness
    # ------------------------------------------------------------------

    def _snapshot_key(self) -> tuple:
        h = self.hierarchy
        lat = h.latency
        return (
            id(h.llc),
            id(h.llc.hash),
            id(h.llc.interconnect),
            h.llc.base_latency,
            h.n_cores,
            h.inclusive,
            lat.l1_hit,
            lat.l2_hit,
            lat.dram,
            lat.store_commit,
            lat.rfo_fraction,
            lat.wb_l1_visible,
            lat.wb_llc_fraction,
            lat.wb_dram_visible,
        )

    def refresh(self) -> None:
        """Rebuild the precomputed tables if the hierarchy changed."""
        if self._snapshot_key() != self._key:
            self._rebuild()

    def _rebuild(self) -> None:
        h = self.hierarchy
        llc = h.llc
        lat = h.latency
        n_cores = h.n_cores
        n_slices = llc.n_slices

        # --- precomputed latency tables -------------------------------
        load_lat = [
            [llc.access_latency(c, s) for s in range(n_slices)]
            for c in range(n_cores)
        ]
        wb_frac = [
            [int(lat.wb_llc_fraction * load_lat[c][s]) for s in range(n_slices)]
            for c in range(n_cores)
        ]
        rfo_llc = [
            [int(lat.rfo_fraction * load_lat[c][s]) for s in range(n_slices)]
            for c in range(n_cores)
        ]
        rfo_l2 = int(lat.rfo_fraction * lat.l2_hit)
        rfo_dram = int(lat.rfo_fraction * lat.dram)
        l1_hit_lat = lat.l1_hit
        l2_hit_lat = lat.l2_hit
        dram_lat = lat.dram
        store_commit = lat.store_commit
        wb_l1_visible = lat.wb_l1_visible
        wb_dram_visible = lat.wb_dram_visible
        inclusive = h.inclusive

        # --- bindings into the shared state ---------------------------
        l1_sets = [c._sets for c in h.l1s]
        l2_sets = [c._sets for c in h.l2s]
        l1_mask = h.l1s[0]._set_mask
        l2_mask = h.l2s[0]._set_mask
        l1_ways = h.l1s[0].n_ways
        l2_ways = h.l2s[0].n_ways
        llc_where = [s._where for s in llc.slices]
        llc_tags = [s._tags for s in llc.slices]
        llc_dirty = [s._dirty for s in llc.slices]
        llc_pols = [s._policies for s in llc.slices]
        llc_mask = llc.slices[0]._set_mask
        all_ways = llc.slices[0]._all_ways
        counts = [sc.counts for sc in llc.counters.slices]
        active_cores = h._active_cores
        prefetchers = h.prefetchers
        run_prefetcher = h._run_prefetcher
        hash_slice_of = llc.hash.slice_of
        lru_fast = all(s.policy_name == "lru" for s in llc.slices)
        # CAT mask cache, invalidated via the controller's generation.
        cat_cache: list = [None, -1, [None] * n_cores]
        # line -> slice memo: the mapping is a pure function of the
        # hash (cleared on rebuild, size-capped so huge working sets
        # cannot balloon it).  Write-back drains and the scalar path
        # hit it instead of recomputing the parity hash per line.
        slice_memo: dict = {}
        slice_memo_get = slice_memo.get

        def slice_lookup(line):
            s = slice_memo_get(line)
            if s is None:
                s = hash_slice_of(line)
                if len(slice_memo) >= (1 << 20):
                    slice_memo.clear()
                slice_memo[line] = s
            return s

        EV_LOOKUPS, EV_HITS, EV_MISSES = EVENT_LOOKUPS, EVENT_HITS, EVENT_MISSES
        EV_FILLS, EV_EVICT, EV_WB = EVENT_FILLS, EVENT_EVICTIONS, EVENT_WRITEBACKS

        def cat_allowed(core):
            cat = llc.cat
            if cat is not cat_cache[0] or cat.generation != cat_cache[1]:
                cat_cache[0] = cat
                cat_cache[1] = cat.generation
                enabled = cat.is_enabled()
                cat_cache[2] = [
                    cat.allowed_ways(c) if enabled else None
                    for c in range(n_cores)
                ]
            return cat_cache[2][core]

        n_llc_ways = llc.n_ways

        def llc_fill(line, core, dirty, slc):
            # SlicedLLC.fill + WayCache.insert, inlined (demand fills
            # only — DDIO fills stay on the reference path).
            cnt = counts[slc]
            cat = llc.cat
            if cat is cat_cache[0] and cat.generation == cat_cache[1]:
                allowed = cat_cache[2][core]
            else:
                allowed = cat_allowed(core)
            cnt[EV_FILLS] += 1
            set_i = (line >> 6) & llc_mask
            where = llc_where[slc][set_i]
            pol = llc_pols[slc][set_i]
            existing = where.get(line)
            if existing is not None:
                if lru_fast:
                    pol._clock += 1
                    pol._stamp[existing] = pol._clock
                else:
                    pol.touch(existing)
                if dirty:
                    llc_dirty[slc][set_i][existing] = True
                return None
            tags = llc_tags[slc][set_i]
            dirt = llc_dirty[slc][set_i]
            if allowed is None:
                ways = all_ways
                # len(where) counts the valid ways, so a shorter dict
                # guarantees an invalid way exists; .index finds the
                # lowest one — the same way the reference scan picks.
                if len(where) < n_llc_ways:
                    w = tags.index(None)
                    tags[w] = line
                    dirt[w] = dirty
                    where[line] = w
                    if lru_fast:
                        pol._clock += 1
                        pol._stamp[w] = pol._clock
                    else:
                        pol.reset(w)
                    return None
            else:
                ways = allowed
                for w in ways:
                    if tags[w] is None:
                        tags[w] = line
                        dirt[w] = dirty
                        where[line] = w
                        if lru_fast:
                            pol._clock += 1
                            pol._stamp[w] = pol._clock
                        else:
                            pol.reset(w)
                        return None
            if lru_fast:
                # min() keeps the first of equal stamps, matching the
                # reference LruPolicy's strict-less-than scan.
                vw = min(ways, key=pol._stamp.__getitem__)
            else:
                vw = pol.victim(ways)
            vtag = tags[vw]
            vdirty = dirt[vw]
            del where[vtag]
            tags[vw] = line
            dirt[vw] = dirty
            where[line] = vw
            if lru_fast:
                pol._clock += 1
                pol._stamp[vw] = pol._clock
            else:
                pol.reset(vw)
            cnt[EV_EVICT] += 1
            if vdirty:
                cnt[EV_WB] += 1
            return (vtag, vdirty)

        # Over-approximate map of lines resident in any private cache to
        # a bitmask of the cores that may hold them.  A line absent from
        # it provably needs no invalidation sweep (LLC back-invalidation,
        # DMA-write snooping); a line present is swept only on the cores
        # in its mask instead of every active core.  The map lives on
        # the hierarchy and only ever *grows* between rescans; it stays
        # a per-line superset because every private-cache insert funnels
        # through code that ORs the filling core in: the engine's own
        # fill helpers below, and the reference `_fill_l1`/`_fill_l2`
        # (hooked once, the first time an engine is built, so
        # `access_line`, `prefetch_line` and `warm` are covered too).
        # `clflush`/DMA/`drop_all` only remove lines, which cannot break
        # a superset.  When it outgrows the private caches' true
        # capacity it is rebuilt from the real set dicts (cheap: bounded
        # by actual occupancy).
        resident = getattr(h, "_resident_superset", None)
        first_hook = resident is None
        if first_hook:
            resident = {}
            h._resident_superset = resident
        resident_get = resident.get

        def resident_add(line, core):
            resident[line] = resident_get(line, 0) | (1 << core)

        if first_hook:
            ref_fill_l1 = type(h)._fill_l1
            ref_fill_l2 = type(h)._fill_l2

            def _fill_l1_hooked(core, line, dirty):
                resident[line] = resident_get(line, 0) | (1 << core)
                return ref_fill_l1(h, core, line, dirty)

            def _fill_l2_hooked(core, line, dirty):
                resident[line] = resident_get(line, 0) | (1 << core)
                return ref_fill_l2(h, core, line, dirty)

            h._fill_l1 = _fill_l1_hooked
            h._fill_l2 = _fill_l2_hooked

        resident_cap = 1024 + 4 * n_cores * (
            (l1_mask + 1) * l1_ways + (l2_mask + 1) * l2_ways
        )

        def rescan_resident():
            resident.clear()
            for c, per_core in enumerate(l1_sets):
                bit = 1 << c
                for s in per_core:
                    for ln in s:
                        resident[ln] = resident_get(ln, 0) | bit
            for c, per_core in enumerate(l2_sets):
                bit = 1 << c
                for s in per_core:
                    for ln in s:
                        resident[ln] = resident_get(ln, 0) | bit

        rescan_resident()

        def fill_llc(core, line, dirty, slc, stats):
            # CacheHierarchy._fill_llc for demand (non-I/O) fills.
            victim = llc_fill(line, core, dirty, slc)
            if victim is None:
                return 0
            vline, vdirty = victim
            if inclusive:
                m = resident_get(vline)
                if m is not None:
                    shift = (vline >> 6)
                    s1i = shift & l1_mask
                    s2i = shift & l2_mask
                    while m:
                        b = m & -m
                        m -= b
                        c = b.bit_length() - 1
                        d1 = l1_sets[c][s1i].pop(vline, None)
                        d2 = l2_sets[c][s2i].pop(vline, None)
                        if d1 or d2:
                            vdirty = True
                    del resident[vline]
            if vdirty:
                stats.dram_writebacks += 1
                return wb_dram_visible
            return 0

        def drain_l2_victim(core, vline, vdirty, stats):
            # CacheHierarchy._drain_l2_victim.
            if inclusive:
                if not vdirty:
                    return 0
                vslc = slice_lookup(vline)
                set_i = (vline >> 6) & llc_mask
                way = llc_where[vslc][set_i].get(vline)
                if way is not None:
                    pol = llc_pols[vslc][set_i]
                    if lru_fast:
                        pol._clock += 1
                        pol._stamp[way] = pol._clock
                    else:
                        pol.touch(way)
                    llc_dirty[vslc][set_i][way] = True
                else:
                    fill_llc(core, vline, True, vslc, stats)
                return wb_frac[core][vslc]
            vslc = slice_lookup(vline)
            extra = wb_frac[core][vslc] if vdirty else 0
            victim = llc_fill(vline, core, vdirty, vslc)
            if victim is not None and victim[1]:
                stats.dram_writebacks += 1
                extra += wb_dram_visible
            return extra

        def fill_l2(core, line, dirty, stats, slc=-1):
            # CacheHierarchy._fill_l2 (DictCache.insert inlined).  When
            # the caller already knows the line's slice it seeds the
            # memo, so a later dirty eviction of this line drains
            # without recomputing the hash.
            s2 = l2_sets[core][(line >> 6) & l2_mask]
            prev = s2.pop(line, None)
            if prev is not None:
                s2[line] = prev or dirty
                return 0
            resident_add(line, core)
            if slc >= 0:
                if len(slice_memo) >= (1 << 20):
                    slice_memo.clear()
                slice_memo[line] = slc
            if len(s2) >= l2_ways:
                vline = next(iter(s2))
                vdirty = s2.pop(vline)
                s2[line] = dirty
                return drain_l2_victim(core, vline, vdirty, stats)
            s2[line] = dirty
            return 0

        def drain_l1_dirty(core, vline, stats):
            # Dirty L1 victim drains into L2 (the wb_l1_visible charge
            # is added by the caller).
            s2 = l2_sets[core][(vline >> 6) & l2_mask]
            prev2 = s2.pop(vline, None)
            if prev2 is not None:
                s2[vline] = True
                return 0
            resident_add(vline, core)
            if len(s2) >= l2_ways:
                v2line = next(iter(s2))
                v2dirty = s2.pop(v2line)
                s2[vline] = True
                return drain_l2_victim(core, v2line, v2dirty, stats)
            s2[vline] = True
            return 0

        def fill_l1(core, line, dirty, stats):
            # CacheHierarchy._fill_l1 (DictCache.insert inlined).
            s1 = l1_sets[core][(line >> 6) & l1_mask]
            prev = s1.pop(line, None)
            if prev is not None:
                s1[line] = prev or dirty
                return 0
            resident_add(line, core)
            if len(s1) >= l1_ways:
                vline = next(iter(s1))
                vdirty = s1.pop(vline)
                s1[line] = dirty
                if not vdirty:
                    return 0
                return wb_l1_visible + drain_l1_dirty(core, vline, stats)
            s1[line] = dirty
            return 0

        def access(core, line, write, slc, stats):
            # CacheHierarchy.access_line, flattened.  *slc* is the
            # precomputed slice index for *line*, or -1 to compute it
            # lazily (only reached on an L2 miss).
            active_cores.add(core)
            if write:
                stats.writes += 1
            else:
                stats.reads += 1
            shift = line >> 6
            s1 = l1_sets[core][shift & l1_mask]
            d = s1.pop(line, None)
            if d is not None:
                s1[line] = d or write
                stats.l1_hits += 1
                c = store_commit if write else l1_hit_lat
                stats.cycles += c
                return c, LEVEL_L1, -1
            stats.l1_misses += 1
            s2 = l2_sets[core][shift & l2_mask]
            d = s2.pop(line, None)
            if d is not None:
                s2[line] = d
                stats.l2_hits += 1
                c = (store_commit + rfo_l2) if write else l2_hit_lat
                c += fill_l1(core, line, write, stats)
                stats.cycles += c
                return c, LEVEL_L2, -1
            stats.l2_misses += 1
            if slc < 0:
                slc = slice_lookup(line)
            cnt = counts[slc]
            cnt[EV_LOOKUPS] += 1
            set_i = shift & llc_mask
            way = llc_where[slc][set_i].get(line)
            if way is not None:
                cnt[EV_HITS] += 1
                stats.llc_hits += 1
                pol = llc_pols[slc][set_i]
                if lru_fast:
                    pol._clock += 1
                    pol._stamp[way] = pol._clock
                else:
                    pol.touch(way)
                if write:
                    c = store_commit + rfo_llc[core][slc]
                else:
                    c = load_lat[core][slc]
                c += fill_l2(core, line, False, stats, slc)
                c += fill_l1(core, line, write, stats)
                if prefetchers[core] is not None:
                    run_prefetcher(core, line)
                stats.cycles += c
                return c, LEVEL_LLC, slc
            cnt[EV_MISSES] += 1
            stats.llc_misses += 1
            stats.dram_accesses += 1
            c = (store_commit + rfo_dram) if write else dram_lat
            if inclusive:
                c += fill_llc(core, line, False, slc, stats)
            c += fill_l2(core, line, False, stats, slc)
            c += fill_l1(core, line, write, stats)
            if prefetchers[core] is not None:
                run_prefetcher(core, line)
            stats.cycles += c
            return c, LEVEL_DRAM, slc

        def run_batch(lines, writes, slcs, cores, the_core, stats):
            # The batch loop with the `access` body inlined: no
            # per-access closure call, tuple allocation or stats
            # attribute updates.  Aggregate HierarchyStats fields are
            # derived from the per-access level/cycle vectors at the
            # end — identical totals by construction; only
            # dram_writebacks (not derivable from the outcome vectors)
            # is counted by the fill helpers on the real stats object.
            n = len(lines)
            if cores is None:
                active_cores.add(the_core)
                core_iter = _repeat(the_core, n)
            else:
                # Pre-adding issuing cores is result-equivalent to the
                # reference's incremental adds: a not-yet-used core's
                # private caches are empty, so back-invalidation
                # sweeps visiting it early are no-ops.
                active_cores.update(cores)
                core_iter = cores
            # Keep the residency superset tight: once it has outgrown
            # the private caches' capacity by 4x, rebuild it from the
            # true contents so the back-invalidation skip keeps firing.
            if len(resident) > resident_cap:
                rescan_resident()
            cycles_out: list = []
            levels_out: list = []
            ca = cycles_out.append
            la = levels_out.append
            for core, line, write, slc in zip(core_iter, lines, writes, slcs):
                shift = line >> 6
                s1 = l1_sets[core][shift & l1_mask]
                d = s1.pop(line, None)
                if d is not None:
                    s1[line] = d or write
                    ca(store_commit if write else l1_hit_lat)
                    la(0)
                    continue
                s2 = l2_sets[core][shift & l2_mask]
                d = s2.pop(line, None)
                if d is not None:
                    s2[line] = d
                    c = (store_commit + rfo_l2) if write else l2_hit_lat
                    lv = 1
                else:
                    cnt = counts[slc]
                    cnt[EV_LOOKUPS] += 1
                    set_i = shift & llc_mask
                    way = llc_where[slc][set_i].get(line)
                    if way is not None:
                        cnt[EV_HITS] += 1
                        pol = llc_pols[slc][set_i]
                        if lru_fast:
                            pol._clock += 1
                            pol._stamp[way] = pol._clock
                        else:
                            pol.touch(way)
                        if write:
                            c = store_commit + rfo_llc[core][slc]
                        else:
                            c = load_lat[core][slc]
                        lv = 2
                    else:
                        cnt[EV_MISSES] += 1
                        c = (store_commit + rfo_dram) if write else dram_lat
                        if inclusive:
                            c += fill_llc(core, line, False, slc, stats)
                        lv = 3
                    c += fill_l2(core, line, False, stats, slc)
                # fill_l1, inlined: the probe above just missed, so
                # the line cannot be resident and the insert never
                # refreshes.
                resident_add(line, core)
                if len(s1) >= l1_ways:
                    vline = next(iter(s1))
                    vdirty = s1.pop(vline)
                    s1[line] = write
                    if vdirty:
                        c += wb_l1_visible + drain_l1_dirty(
                            core, vline, stats
                        )
                else:
                    s1[line] = write
                if lv > 1 and prefetchers[core] is not None:
                    run_prefetcher(core, line)
                ca(c)
                la(lv)
            cycles_arr = np.array(cycles_out, dtype=np.int64)
            levels_arr = np.array(levels_out, dtype=np.uint8)
            per_level = np.bincount(levels_arr, minlength=4)
            n_l1, n_l2, n_llc, n_dram = (int(v) for v in per_level)
            n_writes = sum(writes)
            stats.reads += n - n_writes
            stats.writes += n_writes
            stats.l1_hits += n_l1
            stats.l1_misses += n - n_l1
            stats.l2_hits += n_l2
            stats.l2_misses += n_llc + n_dram
            stats.llc_hits += n_llc
            stats.llc_misses += n_dram
            stats.dram_accesses += n_dram
            stats.cycles += int(cycles_arr.sum())
            return cycles_arr, levels_arr

        ddio_ways = llc.ddio_way_tuple
        # The common two-way DDIO config gets a branch-free victim
        # pick in the span loop (same first-free / first-of-equal-LRU
        # order as the general scan).
        two_ddio = len(ddio_ways) == 2
        dw0, dw1 = (ddio_ways if two_ddio else (0, 0))
        EV_DDIO_F, EV_DDIO_R = EVENT_DDIO_FILLS, EVENT_DDIO_READS

        # line -> (slc, set_i, where, pol, stamp, tags_outer,
        # dirty_outer) memo for the replay paths.  The per-set
        # ``_where`` dicts, policy objects and LRU stamp lists are
        # stable for the model's lifetime (drains clear them in
        # place), but the per-set tag/dirty lists are *replaced* on
        # drain — so the memo holds the outer per-slice lists and
        # indexes them per use.  Size-capped like slice_memo.
        set_memo: dict = {}
        set_memo_get = set_memo.get

        def set_lookup(line):
            slc = slice_memo_get(line)
            if slc is None:
                slc = slice_lookup(line)
            set_i = (line >> 6) & llc_mask
            pol = llc_pols[slc][set_i]
            info = (
                slc,
                set_i,
                llc_where[slc][set_i],
                pol,
                getattr(pol, "_stamp", None),
                llc_tags[slc],
                llc_dirty[slc],
            )
            if len(set_memo) >= (1 << 20):
                set_memo.clear()
            set_memo[line] = info
            return info

        # (first, last) span -> (rows, slc_pairs, probes): DMA spans
        # repeat heavily (the same mbuf payload lines, the rotating
        # descriptor ring), so the per-line address and set resolution
        # is computed once per distinct span.  ``rows`` are
        # ``(line, *set_lookup(line))`` tuples; ``slc_pairs`` aggregates
        # the span's fixed line->slice distribution so per-line counter
        # increments collapse to one add per slice; ``probes`` pairs
        # each line with its set's ``_where`` dict for the read path.
        span_infos: dict = {}
        span_infos_get = span_infos.get

        def span_info_rows(first, last):
            rows = tuple(
                (line,) + (set_memo_get(line) or set_lookup(line))
                for line in range(first, last + CACHE_LINE, CACHE_LINE)
            )
            per_slc: dict = {}
            for row in rows:
                slc = row[1]
                per_slc[slc] = per_slc.get(slc, 0) + 1
            entry = (
                rows,
                tuple(per_slc.items()),
                tuple((row[0], row[3]) for row in rows),
            )
            if len(span_infos) >= (1 << 18):
                span_infos.clear()
            span_infos[(first, last)] = entry
            return entry

        def dma_fill_span(first, last, stats):
            # DdioEngine.dma_write with DDIO enabled, flattened:
            # per line, CacheHierarchy.dma_fill_line == invalidate_
            # private + _fill_llc(core=None, dirty=True, io=True).
            # The residency map skips the (usually fruitless)
            # private-cache snoop for payload lines no core ever read,
            # and sweeps only the cores in a resident line's mask.
            if len(resident) > resident_cap:
                rescan_resident()
            if first == last:
                # Single-line spans (completion descriptors) rotate
                # through the whole ring, so caching one span entry
                # per slot would build 1000s of single-use entries;
                # the per-line memo alone serves them.
                info = set_memo_get(first)
                if info is None:
                    info = set_lookup(first)
                rows = ((first,) + info,)
                cnt = counts[info[0]]
                cnt[EV_DDIO_F] += 1
                cnt[EV_FILLS] += 1
            else:
                entry = span_infos_get((first, last))
                if entry is None:
                    entry = span_info_rows(first, last)
                rows = entry[0]
                for slc, v in entry[1]:
                    cnt = counts[slc]
                    cnt[EV_DDIO_F] += v
                    cnt[EV_FILLS] += v
            for line, slc, set_i, where, pol, stamp, tags_o, dirt_o in rows:
                m = resident_get(line)
                if m is not None:
                    shift = line >> 6
                    s1i = shift & l1_mask
                    s2i = shift & l2_mask
                    while m:
                        b = m & -m
                        m -= b
                        c = b.bit_length() - 1
                        l1_sets[c][s1i].pop(line, None)
                        l2_sets[c][s2i].pop(line, None)
                    del resident[line]
                existing = where.get(line)
                if existing is not None:
                    if lru_fast:
                        pol._clock += 1
                        stamp[existing] = pol._clock
                    else:
                        pol.touch(existing)
                    dirt_o[set_i][existing] = True
                    continue
                tags = tags_o[set_i]
                dirt = dirt_o[set_i]
                if two_ddio and lru_fast:
                    if tags[dw0] is None:
                        vw = dw0
                        vtag = None
                        vdirty = False
                    elif tags[dw1] is None:
                        vw = dw1
                        vtag = None
                        vdirty = False
                    else:
                        vw = dw0 if stamp[dw0] <= stamp[dw1] else dw1
                        vtag = tags[vw]
                        vdirty = dirt[vw]
                        del where[vtag]
                else:
                    vw = -1
                    for w in ddio_ways:
                        if tags[w] is None:
                            vw = w
                            break
                    if vw < 0:
                        if lru_fast:
                            vw = min(ddio_ways, key=stamp.__getitem__)
                        else:
                            vw = pol.victim(ddio_ways)
                        vtag = tags[vw]
                        vdirty = dirt[vw]
                        del where[vtag]
                    else:
                        vtag = None
                        vdirty = False
                tags[vw] = line
                dirt[vw] = True
                where[line] = vw
                if lru_fast:
                    pol._clock += 1
                    stamp[vw] = pol._clock
                else:
                    pol.reset(vw)
                if vtag is None:
                    continue
                # Evictions are rare on steady-state spans (lines are
                # usually re-touches), so their counters stay inline.
                cnt = counts[slc]
                cnt[EV_EVICT] += 1
                if vdirty:
                    cnt[EV_WB] += 1
                if inclusive:
                    vm = resident_get(vtag)
                    if vm is not None:
                        vshift = vtag >> 6
                        vs1 = vshift & l1_mask
                        vs2 = vshift & l2_mask
                        while vm:
                            b = vm & -vm
                            vm -= b
                            c = b.bit_length() - 1
                            d1 = l1_sets[c][vs1].pop(vtag, None)
                            d2 = l2_sets[c][vs2].pop(vtag, None)
                            if d1 or d2:
                                vdirty = True
                        del resident[vtag]
                if vdirty:
                    stats.dram_writebacks += 1
            return len(rows)

        def dma_read_span(first, last):
            # DdioEngine.dma_read, flattened: count the lookup and
            # probe without touching replacement state (reads never
            # allocate).  Returns (lines, hits).
            if first == last:
                # Same single-line shortcut as dma_fill_span: ring
                # descriptors rotate, so keep them out of span_infos.
                info = set_memo_get(first)
                if info is None:
                    info = set_lookup(first)
                counts[info[0]][EV_DDIO_R] += 1
                return 1, (1 if first in info[2] else 0)
            entry = span_infos_get((first, last))
            if entry is None:
                entry = span_info_rows(first, last)
            rows, slc_pairs, probes = entry
            for slc, v in slc_pairs:
                counts[slc][EV_DDIO_R] += v
            hits = 0
            for line, where in probes:
                if line in where:
                    hits += 1
            return len(rows), hits

        def run_ops(ops, stats, ddios, multi):
            # Replay a recorded dataplane op stream (demand spans and
            # DMA spans interleaved in arrival order).  Each demand op
            # runs the flattened `access` body per line, inlined like
            # `run_batch` with aggregate HierarchyStats applied at the
            # end — identical outcomes to the reference calls the
            # recorder displaced — and each DMA op runs the flattened
            # span path while keeping the owning DdioEngine's stats
            # exact.  *ops* is a list of ``(kind, first, last, aux)``
            # tuples; ``aux`` is the issuing core for demand ops and
            # the DdioEngine index for DMA ops.
            if len(resident) > resident_cap:
                rescan_resident()
            single = None if multi else ddios[0]
            if single is not None:
                # One engine owns every DMA op: hoist its dispatch
                # state out of the loop (``enabled`` cannot change
                # mid-replay — no user code runs between ops).
                s_enabled = single.enabled
                s_stats = single.stats
            n_reads = n_writes = n_l1 = n_l2 = n_llc = n_dram = 0
            total_c = 0
            out_list: list = []
            out_append = out_list.append
            for k, line, last, aux in ops:
                if k <= OP_WRITE:
                    write = k == OP_WRITE
                    core = aux
                    active_cores.add(core)
                    c = 0
                    while True:
                        shift = line >> 6
                        s1 = l1_sets[core][shift & l1_mask]
                        d = s1.pop(line, None)
                        if d is not None:
                            s1[line] = d or write
                            c += store_commit if write else l1_hit_lat
                            n_l1 += 1
                        else:
                            s2 = l2_sets[core][shift & l2_mask]
                            d = s2.pop(line, None)
                            if d is not None:
                                s2[line] = d
                                cc = (
                                    (store_commit + rfo_l2)
                                    if write
                                    else l2_hit_lat
                                )
                                n_l2 += 1
                                lv = 1
                            else:
                                info = set_memo_get(line)
                                if info is None:
                                    info = set_lookup(line)
                                slc = info[0]
                                cnt = counts[slc]
                                cnt[EV_LOOKUPS] += 1
                                way = info[2].get(line)
                                if way is not None:
                                    cnt[EV_HITS] += 1
                                    n_llc += 1
                                    pol = info[3]
                                    if lru_fast:
                                        pol._clock += 1
                                        pol._stamp[way] = pol._clock
                                    else:
                                        pol.touch(way)
                                    if write:
                                        cc = store_commit + rfo_llc[core][slc]
                                    else:
                                        cc = load_lat[core][slc]
                                else:
                                    cnt[EV_MISSES] += 1
                                    n_dram += 1
                                    cc = (
                                        (store_commit + rfo_dram)
                                        if write
                                        else dram_lat
                                    )
                                    if inclusive:
                                        cc += fill_llc(
                                            core, line, False, slc, stats
                                        )
                                # fill_l2, inlined: the L2 probe above
                                # just missed, so the insert never
                                # refreshes; seeding slice_memo keeps
                                # a later dirty drain of this line from
                                # recomputing the hash.  The residency
                                # add must precede the victim drain —
                                # its LLC fill could evict this very
                                # line, and the back-invalidation sweep
                                # must see it as resident.
                                resident_add(line, core)
                                if len(slice_memo) >= (1 << 20):
                                    slice_memo.clear()
                                slice_memo[line] = slc
                                if len(s2) >= l2_ways:
                                    v2line = next(iter(s2))
                                    v2dirty = s2.pop(v2line)
                                    s2[line] = False
                                    cc += drain_l2_victim(
                                        core, v2line, v2dirty, stats
                                    )
                                else:
                                    s2[line] = False
                                lv = 2
                            # fill_l1, inlined (see run_batch): the L1
                            # probe above just missed, so the insert
                            # never refreshes.
                            resident_add(line, core)
                            if len(s1) >= l1_ways:
                                vline = next(iter(s1))
                                vdirty = s1.pop(vline)
                                s1[line] = write
                                if vdirty:
                                    cc += wb_l1_visible + drain_l1_dirty(
                                        core, vline, stats
                                    )
                            else:
                                s1[line] = write
                            if lv > 1 and prefetchers[core] is not None:
                                run_prefetcher(core, line)
                            c += cc
                        if write:
                            n_writes += 1
                        else:
                            n_reads += 1
                        if line >= last:
                            break
                        line += CACHE_LINE
                    out_append(c)
                    total_c += c
                elif k == OP_DMA_WRITE:
                    out_append(0)
                    if single is not None:
                        if s_enabled:
                            s_stats.write_lines += dma_fill_span(
                                line, last, stats
                            )
                        else:
                            # Disabled DDIO stays on the reference
                            # per-line invalidate path (it is not a
                            # hot configuration).
                            single.dma_write(line, last - line + CACHE_LINE)
                    else:
                        ddio = ddios[aux]
                        if ddio.enabled:
                            ddio.stats.write_lines += dma_fill_span(
                                line, last, stats
                            )
                        else:
                            ddio.dma_write(line, last - line + CACHE_LINE)
                else:
                    out_append(0)
                    lines, hits = dma_read_span(line, last)
                    dstats = s_stats if single is not None else ddios[aux].stats
                    dstats.read_lines += lines
                    dstats.read_hits += hits
                    dstats.read_misses += lines - hits
            n_demand = n_reads + n_writes
            stats.reads += n_reads
            stats.writes += n_writes
            stats.l1_hits += n_l1
            stats.l1_misses += n_demand - n_l1
            stats.l2_hits += n_l2
            stats.l2_misses += n_llc + n_dram
            stats.llc_hits += n_llc
            stats.llc_misses += n_dram
            stats.dram_accesses += n_dram
            stats.cycles += total_c
            return np.array(out_list, dtype=np.int64)

        self._access = access
        self._run_batch = run_batch
        self._run_ops = run_ops
        self._dma_fill_span = dma_fill_span
        self._dma_read_span = dma_read_span
        self._slice_memo = slice_memo
        self._slice_of_array = getattr(llc.hash, "slice_of_array", None)
        self._hash_slice_of = hash_slice_of
        self._key = self._snapshot_key()

    # ------------------------------------------------------------------
    # Batch API
    # ------------------------------------------------------------------

    def access_batch(
        self,
        addresses: Union[Sequence[int], np.ndarray],
        kinds=None,
        core: Union[int, Sequence[int]] = 0,
    ) -> BatchResult:
        """Resolve a whole vector of line accesses.

        Args:
            addresses: byte addresses (any offset within a line); each
                entry is one access to the line containing it.
            kinds: per-access write flags — ``None`` (all loads), one
                scalar, or a sequence (``True``/1 = store).
            core: issuing core — a scalar, or one core per access
                (interleaved multi-core streams).

        Returns:
            A :class:`BatchResult` with per-access cycles, levels and
            slice indices, exactly matching what sequential
            ``access_line`` calls would have produced.
        """
        self.refresh()
        n = len(addresses)
        san = self.hierarchy.sanitizer
        if san is not None and n:
            san.tick(self.hierarchy, n)
        if n == 0:
            empty_i64 = np.zeros(0, dtype=np.int64)
            return BatchResult(
                cycles=empty_i64,
                levels=np.zeros(0, dtype=np.uint8),
                slices=np.zeros(0, dtype=np.int16),
            )
        addr_arr = np.asarray(addresses, dtype=np.uint64)
        lines_arr = addr_arr & np.uint64(_LINE_MASK & 0xFFFFFFFFFFFFFFFF)
        if self._slice_of_array is not None:
            slcs_arr = np.asarray(self._slice_of_array(lines_arr), dtype=np.int16)
        else:
            scalar_hash = self._hash_slice_of
            slcs_arr = np.array(
                [scalar_hash(int(a)) for a in lines_arr.tolist()], dtype=np.int16
            )
        lines = lines_arr.tolist()
        writes = _as_bool_list(kinds, n)
        cores = _as_core_list(core, n)
        the_core = int(core) if cores is None else 0
        cycles_arr, levels_arr = self._run_batch(
            lines, writes, slcs_arr.tolist(), cores, the_core, self.hierarchy.stats
        )
        # Slice indices only apply to accesses that reached the LLC;
        # private-cache hits report -1, recovered here vectorised
        # instead of appending per access inside the hot loop.
        slices_arr = np.where(levels_arr >= LEVEL_LLC, slcs_arr, np.int16(-1))
        return BatchResult(cycles=cycles_arr, levels=levels_arr, slices=slices_arr)

    def run_op_stream(
        self,
        ops: Sequence[Tuple[int, int, int, int]],
        ddios: Sequence[object],
        multi_ddio: bool = False,
    ) -> np.ndarray:
        """Replay a recorded dataplane op stream; returns per-op cycles.

        *ops* is a list of ``(kind, first_line, last_line, aux)``
        tuples: op codes are :data:`OP_READ` … :data:`OP_DMA_READ`,
        the span covers ``[first_line, last_line]`` inclusive, and
        ``aux`` is the issuing core for demand ops or the index into
        *ddios* for DMA ops (only consulted when ``multi_ddio`` is
        set, e.g. one engine per fleet tenant).  Ops execute strictly
        in order, so a stream recorded from the scalar dataplane
        replays with bit-identical cache outcomes and exact
        ``DdioStats``.  Demand ops return their stall cycles; DMA ops
        contribute 0, mirroring the scalar path where ``DdioEngine``
        calls are not charged to any packet.

        The caller must ensure no :class:`CacheSanitizer` is installed:
        deferred replay cannot reproduce the sanitizer's check/tick
        interleaving (the batched dataplane falls back to the scalar
        loop in that case).
        """
        self.refresh()
        return self._run_ops(ops, self.hierarchy.stats, ddios, multi_ddio)

    # ------------------------------------------------------------------
    # Fast scalar API (installed over CacheHierarchy.read/write)
    # ------------------------------------------------------------------

    def read(self, core: int, address: int, size: int = CACHE_LINE) -> int:
        """Fast-path replacement for :meth:`CacheHierarchy.read`."""
        return self._span(core, address, size, False)

    def write(self, core: int, address: int, size: int = CACHE_LINE) -> int:
        """Fast-path replacement for :meth:`CacheHierarchy.write`."""
        return self._span(core, address, size, True)

    def _span(self, core: int, address: int, size: int, write: bool) -> int:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        first = address & _LINE_MASK
        last = (address + size - 1) & _LINE_MASK
        san = self.hierarchy.sanitizer
        if san is not None:
            san.tick(self.hierarchy, (last - first) // CACHE_LINE + 1)
        stats = self.hierarchy.stats
        access = self._access
        if first == last:
            return access(core, first, write, -1, stats)[0]
        cycles = 0
        for line in range(first, last + CACHE_LINE, CACHE_LINE):
            cycles += access(core, line, write, -1, stats)[0]
        return cycles

    # ------------------------------------------------------------------
    # Fast DMA API (used by DdioEngine when the fast engine is active)
    # ------------------------------------------------------------------

    def dma_write_span(self, address: int, size: int) -> int:
        """Flattened :meth:`DdioEngine.dma_write` (DDIO enabled).

        Returns the number of lines written, with outcomes identical to
        per-line :meth:`CacheHierarchy.dma_fill_line` calls.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.refresh()
        first = address & _LINE_MASK
        last = (address + size - 1) & _LINE_MASK
        return self._dma_fill_span(first, last, self.hierarchy.stats)

    def dma_read_span(self, address: int, size: int) -> Tuple[int, int]:
        """Flattened :meth:`DdioEngine.dma_read`; returns ``(lines, hits)``."""
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.refresh()
        first = address & _LINE_MASK
        last = (address + size - 1) & _LINE_MASK
        return self._dma_read_span(first, last)
