"""Intel Data Direct I/O (DDIO).

DDIO lets PCIe devices (NICs) DMA directly into the LLC instead of
DRAM.  Two properties matter for the paper:

* *Write allocations are confined to a small number of LLC ways*
  (2 of 20 on the testbed — the "10 % limit" of §5), so heavy I/O can
  only pollute that fraction of each slice; and
* the *slice* an I/O write lands in is still chosen by Complex
  Addressing from the buffer's physical address — which is exactly the
  hook CacheDirector exploits: pick the buffer address, pick the slice.

:class:`DdioEngine` is the device-side interface: the NIC calls
:meth:`dma_write` when receiving a packet into host memory and
:meth:`dma_read` when fetching a packet for transmission.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.counters import EVENT_DDIO_READS
from repro.cachesim.hierarchy import CacheHierarchy
from repro.mem.address import CACHE_LINE, line_address


@dataclass
class DdioStats:
    """Aggregate I/O statistics of one DDIO engine."""

    write_lines: int = 0
    read_lines: int = 0
    read_hits: int = 0
    read_misses: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.write_lines = 0
        self.read_lines = 0
        self.read_hits = 0
        self.read_misses = 0


class DdioEngine:
    """DMA engine writing into (and reading from) the LLC.

    Args:
        hierarchy: the cache hierarchy whose LLC receives I/O.
        enabled: with DDIO disabled, DMA writes invalidate cached
            copies and go to DRAM (pre-DDIO behaviour), making the
            benefit measurable.
    """

    def __init__(self, hierarchy: CacheHierarchy, enabled: bool = True) -> None:
        self.hierarchy = hierarchy
        self.enabled = enabled
        self.stats = DdioStats()

    def dma_write(self, address: int, size: int) -> int:
        """DMA *size* bytes at *address* into the host; returns lines touched.

        With DDIO enabled each line is allocated into the DDIO ways of
        its LLC slice (evicting as needed); otherwise the line ends up
        only in DRAM and every cached copy is invalidated.
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        hierarchy = self.hierarchy
        san = hierarchy.sanitizer
        if san is not None:
            # Checked before any line lands: an overrun must be caught
            # pre-corruption, with the offending span in hand.
            san.check_dma_span(address, size, write=True)
            san.tick(hierarchy, (size + CACHE_LINE - 1) // CACHE_LINE)
        if self.enabled and hierarchy.engine_name == "fast":
            # Flattened per-span path: identical outcomes, one closure
            # call per packet instead of three method calls per line
            # (machine-checked by the differential harness).
            lines = hierarchy.fast_engine().dma_write_span(address, size)
            self.stats.write_lines += lines
            return lines
        first = line_address(address)
        last = line_address(address + size - 1)
        lines = 0
        for line in range(first, last + CACHE_LINE, CACHE_LINE):
            if self.enabled:
                hierarchy.dma_fill_line(line)
            else:
                hierarchy.invalidate_private(line)
                hierarchy.llc.invalidate(line)
            lines += 1
        self.stats.write_lines += lines
        return lines

    def dma_read(self, address: int, size: int) -> int:
        """DMA *size* bytes out of the host (TX path); returns lines touched.

        Reads are served from the LLC when the line is resident (DDIO
        reads do not allocate on miss — they read DRAM directly).
        """
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        san = self.hierarchy.sanitizer
        if san is not None:
            san.check_dma_span(address, size, write=False)
        if self.hierarchy.engine_name == "fast":
            lines, hits = self.hierarchy.fast_engine().dma_read_span(address, size)
            self.stats.read_lines += lines
            self.stats.read_hits += hits
            self.stats.read_misses += lines - hits
            return lines
        first = line_address(address)
        last = line_address(address + size - 1)
        lines = 0
        llc = self.hierarchy.llc
        for line in range(first, last + CACHE_LINE, CACHE_LINE):
            slice_index = llc.hash.slice_of(line)
            llc.counters.count(slice_index, EVENT_DDIO_READS)
            if llc.slices[slice_index].contains(line):
                self.stats.read_hits += 1
            else:
                self.stats.read_misses += 1
            lines += 1
        self.stats.read_lines += lines
        return lines
