"""The sliced Last Level Cache.

One :class:`WayCache` per slice, a :class:`SliceHash` mapping physical
lines to slices, an :class:`Interconnect` giving per-(core, slice)
NUCA latency, per-slice uncore counters, and the way-mask plumbing for
CAT (core fills) and DDIO (I/O fills).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cachesim.cache import Eviction, WayCache
from repro.cachesim.cat import CatController
from repro.cachesim.counters import (
    EVENT_DDIO_FILLS,
    EVENT_EVICTIONS,
    EVENT_FILLS,
    EVENT_HITS,
    EVENT_LOOKUPS,
    EVENT_MISSES,
    EVENT_WRITEBACKS,
    UncoreCounters,
)
from repro.cachesim.hashfn import SliceHash
from repro.cachesim.interconnect import Interconnect


class SlicedLLC:
    """A multi-slice LLC with Complex Addressing and NUCA latency.

    Args:
        slice_hash: maps physical line addresses to slice indices.
        interconnect: per-(core, slice) extra latency.
        n_sets: sets per slice.
        n_ways: ways per slice.
        base_latency: slice-pipeline latency in cycles, before the
            interconnect distance is added.
        ddio_ways: number of (topmost) ways DDIO fills may claim;
            Intel's default is 2 of the LLC's ways (§5, footnote on the
            10 % DDIO limit).
        policy: replacement policy for the slices.
        cat: optional CAT controller restricting core fills.
    """

    def __init__(
        self,
        slice_hash: SliceHash,
        interconnect: Interconnect,
        n_sets: int,
        n_ways: int,
        base_latency: int = 34,
        ddio_ways: int = 2,
        policy: str = "lru",
        cat: Optional[CatController] = None,
        seed: int = 0,
    ) -> None:
        if slice_hash.n_slices != interconnect.n_slices:
            raise ValueError(
                f"hash has {slice_hash.n_slices} slices but interconnect "
                f"has {interconnect.n_slices}"
            )
        if not 0 <= ddio_ways <= n_ways:
            raise ValueError(f"ddio_ways must be in 0..{n_ways}, got {ddio_ways}")
        self.hash = slice_hash
        self.interconnect = interconnect
        self.n_slices = slice_hash.n_slices
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.base_latency = base_latency
        self.ddio_way_tuple: Tuple[int, ...] = tuple(
            range(n_ways - ddio_ways, n_ways)
        )
        self.cat = cat if cat is not None else CatController(n_ways, interconnect.n_cores)
        self.counters = UncoreCounters(self.n_slices)
        #: Optional CacheSanitizer verifying masked fills (attached by
        #: the owning hierarchy when sanitizing is on).
        self.sanitizer = None
        self.slices: List[WayCache] = [
            WayCache(n_sets, n_ways, policy=policy, name=f"llc-slice-{i}", seed=seed + i)
            for i in range(self.n_slices)
        ]

    @property
    def slice_capacity_bytes(self) -> int:
        """Capacity of a single slice in bytes."""
        return self.slices[0].capacity_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total LLC capacity in bytes."""
        return self.slice_capacity_bytes * self.n_slices

    def slice_of(self, line_address: int) -> int:
        """Return the slice index the line maps to."""
        return self.hash.slice_of(line_address)

    def access_latency(self, core: int, slice_index: int) -> int:
        """Cycles for *core* to load from *slice_index* on an LLC hit."""
        return self.base_latency + self.interconnect.latency(core, slice_index)

    def lookup(self, line_address: int, write: bool = False) -> Tuple[bool, int]:
        """Probe the LLC; returns ``(hit, slice_index)`` and counts events."""
        slice_index = self.hash.slice_of(line_address)
        counters = self.counters.slices[slice_index]
        counters.count(EVENT_LOOKUPS)
        hit = self.slices[slice_index].lookup(line_address, write=write)
        counters.count(EVENT_HITS if hit else EVENT_MISSES)
        return hit, slice_index

    def contains(self, line_address: int) -> bool:
        """Probe without touching replacement state or counters."""
        return self.slices[self.hash.slice_of(line_address)].contains(line_address)

    def fill(
        self,
        line_address: int,
        core: Optional[int] = None,
        dirty: bool = False,
        io: bool = False,
    ) -> Optional[Eviction]:
        """Install a line, honouring CAT (core fills) or DDIO (I/O fills).

        Args:
            line_address: line to install.
            core: filling core (selects the CAT way mask); ignored for
                I/O fills.
            dirty: install in modified state.
            io: the fill comes from a DMA write (DDIO): restricted to
                the DDIO ways.

        Returns:
            The eviction the fill forced, if any.
        """
        slice_index = self.hash.slice_of(line_address)
        counters = self.counters.slices[slice_index]
        if io:
            allowed: Optional[Sequence[int]] = self.ddio_way_tuple
            counters.count(EVENT_DDIO_FILLS)
        elif core is not None and self.cat.is_enabled():
            allowed = self.cat.allowed_ways(core)
        else:
            allowed = None
        counters.count(EVENT_FILLS)
        slice_cache = self.slices[slice_index]
        # Refresh-in-place never migrates ways, so only a *new* insert
        # is held to the way mask by the sanitizer below.
        was_resident = (
            self.sanitizer is not None
            and allowed is not None
            and slice_cache.contains(line_address)
        )
        victim = slice_cache.insert(
            line_address, dirty=dirty, allowed_ways=allowed
        )
        if self.sanitizer is not None and allowed is not None and not was_resident:
            self.sanitizer.check_fill_way(
                self,
                slice_index,
                line_address,
                slice_cache.way_of(line_address),
                tuple(allowed),
                io,
            )
        if victim is not None:
            counters.count(EVENT_EVICTIONS)
            if victim[1]:
                counters.count(EVENT_WRITEBACKS)
        return victim

    def invalidate(self, line_address: int) -> Optional[bool]:
        """Drop a line (e.g. on ``clflush``); return its dirty bit."""
        return self.slices[self.hash.slice_of(line_address)].invalidate(line_address)

    def writeback(self, line_address: int, core: Optional[int] = None) -> Tuple[int, Optional[Eviction]]:
        """Receive a dirty line written back from a private cache.

        Returns ``(slice_index, eviction)`` so the caller can charge
        the NUCA write-back cost and propagate any cascade.
        """
        slice_index = self.hash.slice_of(line_address)
        counters = self.counters.slices[slice_index]
        counters.count(EVENT_WRITEBACKS)
        victim = self.fill(line_address, core=core, dirty=True)
        return slice_index, victim

    def flush(self) -> List[Eviction]:
        """Empty every slice, returning all drained lines."""
        drained: List[Eviction] = []
        for slice_cache in self.slices:
            drained.extend(slice_cache.flush())
        return drained

    def occupancy(self) -> int:
        """Total valid lines across all slices."""
        return sum(s.occupancy() for s in self.slices)

    def slice_occupancy(self) -> List[int]:
        """Valid lines per slice, by slice index."""
        return [s.occupancy() for s in self.slices]

    def __repr__(self) -> str:
        return (
            f"SlicedLLC(n_slices={self.n_slices}, n_sets={self.n_sets}, "
            f"n_ways={self.n_ways}, base_latency={self.base_latency})"
        )
