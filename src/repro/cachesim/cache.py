"""Set-associative cache models.

Two implementations share one interface:

* :class:`DictCache` — a fast LRU-only cache used for the per-core L1
  and L2 levels (insertion-ordered dicts give O(1) LRU).
* :class:`WayCache` — a way-indexed cache with pluggable replacement
  and *way-mask* support, used for LLC slices where CAT and DDIO
  restrict which ways a fill may claim.

Both store whole line addresses (the line address doubles as the tag;
the set index is derived from it), track a dirty bit per line, and
report evictions so the hierarchy can propagate write-backs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cachesim.replacement import make_policy
from repro.mem.address import CACHE_LINE_BITS, is_power_of_two

#: An eviction: (line_address, was_dirty).
Eviction = Tuple[int, bool]


class DictCache:
    """LRU set-associative cache backed by insertion-ordered dicts.

    Args:
        n_sets: number of sets (power of two).
        n_ways: associativity.
        name: label used in ``repr`` and error messages.
    """

    def __init__(self, n_sets: int, n_ways: int, name: str = "cache") -> None:
        if not is_power_of_two(n_sets):
            raise ValueError(f"n_sets must be a power of two, got {n_sets}")
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.name = name
        self._set_mask = n_sets - 1
        # Each set maps line_address -> dirty flag; dict order is LRU
        # order (oldest first).
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(n_sets)]

    @property
    def capacity_lines(self) -> int:
        """Total number of lines this cache can hold."""
        return self.n_sets * self.n_ways

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.capacity_lines << CACHE_LINE_BITS

    def set_index(self, line_address: int) -> int:
        """Return the set index for a line address."""
        return (line_address >> CACHE_LINE_BITS) & self._set_mask

    def lookup(self, line_address: int, write: bool = False) -> bool:
        """Probe for a line; on hit, refresh LRU and merge dirty state."""
        cache_set = self._sets[(line_address >> CACHE_LINE_BITS) & self._set_mask]
        dirty = cache_set.pop(line_address, None)
        if dirty is None:
            return False
        cache_set[line_address] = dirty or write
        return True

    def contains(self, line_address: int) -> bool:
        """Probe without touching replacement state."""
        cache_set = self._sets[(line_address >> CACHE_LINE_BITS) & self._set_mask]
        return line_address in cache_set

    def insert(self, line_address: int, dirty: bool = False) -> Optional[Eviction]:
        """Fill a line, returning the eviction it forced (if any).

        Inserting a line that is already present refreshes it and
        merges the dirty bit without evicting anything.
        """
        cache_set = self._sets[(line_address >> CACHE_LINE_BITS) & self._set_mask]
        previous = cache_set.pop(line_address, None)
        if previous is not None:
            cache_set[line_address] = previous or dirty
            return None
        victim: Optional[Eviction] = None
        if len(cache_set) >= self.n_ways:
            victim_address = next(iter(cache_set))
            victim = (victim_address, cache_set.pop(victim_address))
        cache_set[line_address] = dirty
        return victim

    def invalidate(self, line_address: int) -> Optional[bool]:
        """Drop a line; return its dirty bit, or ``None`` if absent."""
        cache_set = self._sets[(line_address >> CACHE_LINE_BITS) & self._set_mask]
        return cache_set.pop(line_address, None)

    def flush(self) -> List[Eviction]:
        """Empty the cache, returning every line with its dirty bit."""
        drained: List[Eviction] = []
        for cache_set in self._sets:
            drained.extend(cache_set.items())
            cache_set.clear()
        return drained

    def occupancy(self) -> int:
        """Return the number of valid lines currently held."""
        return sum(len(cache_set) for cache_set in self._sets)

    def lines(self) -> List[int]:
        """Return every resident line address (unspecified order)."""
        resident: List[int] = []
        for cache_set in self._sets:
            resident.extend(cache_set.keys())
        return resident

    def __repr__(self) -> str:
        return (
            f"DictCache(name={self.name!r}, n_sets={self.n_sets}, "
            f"n_ways={self.n_ways})"
        )


class WayCache:
    """Way-indexed set-associative cache with way-mask support.

    Used for LLC slices: CAT restricts application fills to a subset of
    ways and DDIO restricts I/O fills to (by default) 2 ways, so victim
    selection must understand way identity.

    Args:
        n_sets: number of sets (power of two).
        n_ways: associativity.
        policy: replacement policy name (``lru``, ``plru``, ``random``).
        name: label for diagnostics.
        seed: seed forwarded to stochastic replacement policies.
    """

    def __init__(
        self,
        n_sets: int,
        n_ways: int,
        policy: str = "lru",
        name: str = "cache",
        seed: int = 0,
    ) -> None:
        if not is_power_of_two(n_sets):
            raise ValueError(f"n_sets must be a power of two, got {n_sets}")
        if n_ways <= 0:
            raise ValueError(f"n_ways must be positive, got {n_ways}")
        self.n_sets = n_sets
        self.n_ways = n_ways
        self.name = name
        self.policy_name = policy
        self._set_mask = n_sets - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * n_ways for _ in range(n_sets)
        ]
        self._dirty: List[List[bool]] = [[False] * n_ways for _ in range(n_sets)]
        self._where: List[Dict[int, int]] = [dict() for _ in range(n_sets)]
        self._policies = [make_policy(policy, n_ways, seed=seed + i) for i in range(n_sets)]
        self._all_ways = tuple(range(n_ways))

    @property
    def capacity_lines(self) -> int:
        """Total number of lines this cache can hold."""
        return self.n_sets * self.n_ways

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.capacity_lines << CACHE_LINE_BITS

    def set_index(self, line_address: int) -> int:
        """Return the set index for a line address."""
        return (line_address >> CACHE_LINE_BITS) & self._set_mask

    def lookup(self, line_address: int, write: bool = False) -> bool:
        """Probe for a line; on hit, refresh replacement state."""
        index = (line_address >> CACHE_LINE_BITS) & self._set_mask
        way = self._where[index].get(line_address)
        if way is None:
            return False
        self._policies[index].touch(way)
        if write:
            self._dirty[index][way] = True
        return True

    def contains(self, line_address: int) -> bool:
        """Probe without touching replacement state."""
        index = (line_address >> CACHE_LINE_BITS) & self._set_mask
        return line_address in self._where[index]

    def way_of(self, line_address: int) -> Optional[int]:
        """Return the way holding a line, or ``None``."""
        index = (line_address >> CACHE_LINE_BITS) & self._set_mask
        return self._where[index].get(line_address)

    def insert(
        self,
        line_address: int,
        dirty: bool = False,
        allowed_ways: Optional[Sequence[int]] = None,
    ) -> Optional[Eviction]:
        """Fill a line, optionally restricted to *allowed_ways*.

        Preference order: refresh in place if already resident
        (regardless of way mask — a hit never migrates ways), else an
        invalid allowed way, else evict the policy's victim among the
        allowed ways.
        """
        index = (line_address >> CACHE_LINE_BITS) & self._set_mask
        where = self._where[index]
        existing = where.get(line_address)
        if existing is not None:
            self._policies[index].touch(existing)
            if dirty:
                self._dirty[index][existing] = True
            return None
        ways = self._all_ways if allowed_ways is None else tuple(allowed_ways)
        if not ways:
            raise ValueError("allowed_ways must be non-empty")
        tags = self._tags[index]
        for way in ways:
            if tags[way] is None:
                self._fill(index, way, line_address, dirty)
                return None
        victim_way = self._policies[index].victim(ways)
        victim_tag = tags[victim_way]
        assert victim_tag is not None
        victim_dirty = self._dirty[index][victim_way]
        del where[victim_tag]
        self._fill(index, victim_way, line_address, dirty)
        return (victim_tag, victim_dirty)

    def _fill(self, index: int, way: int, line_address: int, dirty: bool) -> None:
        self._tags[index][way] = line_address
        self._dirty[index][way] = dirty
        self._where[index][line_address] = way
        self._policies[index].reset(way)

    def invalidate(self, line_address: int) -> Optional[bool]:
        """Drop a line; return its dirty bit, or ``None`` if absent."""
        index = (line_address >> CACHE_LINE_BITS) & self._set_mask
        way = self._where[index].pop(line_address, None)
        if way is None:
            return None
        self._tags[index][way] = None
        dirty = self._dirty[index][way]
        self._dirty[index][way] = False
        return dirty

    def flush(self) -> List[Eviction]:
        """Empty the cache, returning every line with its dirty bit."""
        drained: List[Eviction] = []
        for index in range(self.n_sets):
            for line_address, way in self._where[index].items():
                drained.append((line_address, self._dirty[index][way]))
            self._where[index].clear()
            self._tags[index] = [None] * self.n_ways
            self._dirty[index] = [False] * self.n_ways
        return drained

    def occupancy(self) -> int:
        """Return the number of valid lines currently held."""
        return sum(len(where) for where in self._where)

    def lines(self) -> List[int]:
        """Return every resident line address (unspecified order)."""
        resident: List[int] = []
        for where in self._where:
            resident.extend(where.keys())
        return resident

    def set_occupancy(self, index: int) -> int:
        """Return the number of valid lines in one set."""
        return len(self._where[index])

    def __repr__(self) -> str:
        return (
            f"WayCache(name={self.name!r}, n_sets={self.n_sets}, "
            f"n_ways={self.n_ways}, policy={self.policy_name!r})"
        )
