"""Cycle-level Intel cache-hierarchy simulator.

This package is the substrate that stands in for the paper's testbed
hardware (see DESIGN.md §2).  It models:

* set-associative caches with pluggable replacement (:mod:`cache`,
  :mod:`replacement`),
* a sliced LLC addressed by Intel's reverse-engineered Complex
  Addressing hash (:mod:`hashfn`, :mod:`llc`),
* NUCA access latency over a ring (Haswell) or mesh (Skylake)
  interconnect (:mod:`interconnect`),
* per-core L1/L2 plus shared LLC plus DRAM with full cycle accounting
  (:mod:`hierarchy`),
* CBo/CHA-style uncore performance counters (:mod:`counters`),
* Data Direct I/O — NIC DMA into a limited number of LLC ways
  (:mod:`ddio`),
* Cache Allocation Technology way masks (:mod:`cat`),
* L2 hardware prefetchers (:mod:`prefetch`), and
* ready-made machine models for the paper's two CPUs
  (:mod:`machines`).
"""

from repro.cachesim.cache import DictCache, WayCache
from repro.cachesim.cat import CatController
from repro.cachesim.counters import SliceCounters, UncoreCounters
from repro.cachesim.ddio import DdioEngine
from repro.cachesim.hashfn import (
    ComplexAddressingHash,
    ModularSliceHash,
    SliceHash,
    haswell_complex_hash,
)
from repro.cachesim.hierarchy import AccessResult, CacheHierarchy
from repro.cachesim.interconnect import (
    Interconnect,
    MeshInterconnect,
    RingInterconnect,
)
from repro.cachesim.llc import SlicedLLC
from repro.cachesim.machines import (
    HASWELL_E5_2667V3,
    SKYLAKE_GOLD_6134,
    MachineSpec,
    build_hierarchy,
)

__all__ = [
    "AccessResult",
    "CacheHierarchy",
    "CatController",
    "ComplexAddressingHash",
    "DdioEngine",
    "DictCache",
    "HASWELL_E5_2667V3",
    "Interconnect",
    "MachineSpec",
    "MeshInterconnect",
    "ModularSliceHash",
    "RingInterconnect",
    "SKYLAKE_GOLD_6134",
    "SliceCounters",
    "SliceHash",
    "SlicedLLC",
    "UncoreCounters",
    "WayCache",
    "build_hierarchy",
    "haswell_complex_hash",
]
